#include "common/arena.h"

#include <algorithm>

#include "common/check.h"

namespace semitri::common {

void* Arena::AllocBytes(size_t bytes, size_t align) {
  SEMITRI_DCHECK(align != 0 && (align & (align - 1)) == 0)
      << "arena alignment must be a power of two, got " << align;
  if (bytes == 0) bytes = 1;

  // Try the current and any later (already-owned, recycled) blocks.
  while (current_ < blocks_.size()) {
    Block& block = blocks_[current_];
    size_t aligned =
        (offset_ + align - 1) & ~(align - 1);
    if (aligned + bytes <= block.size) {
      offset_ = aligned + bytes;
      used_bytes_ += bytes;
      return block.data.get() + aligned;
    }
    ++current_;
    offset_ = 0;
  }

  // Grow: geometric doubling, large requests get a dedicated block.
  size_t next_size = blocks_.empty()
                         ? kInitialBlockBytes
                         : std::min(blocks_.back().size * 2, kMaxBlockBytes);
  next_size = std::max(next_size, bytes + align);
  Block block;
  block.data = std::make_unique<char[]>(next_size);
  block.size = next_size;
  capacity_bytes_ += next_size;
  ++num_block_allocations_;
  blocks_.push_back(std::move(block));
  current_ = blocks_.size() - 1;
  offset_ = 0;

  // Blocks come from new[] and are aligned to the default new
  // alignment (>= 16), so aligning the offset aligns the pointer for
  // every type the data plane stores (doubles, ids, indices).
  SEMITRI_DCHECK(align <= 16) << "arena supports alignment up to 16";
  offset_ = bytes;
  used_bytes_ += bytes;
  return blocks_[current_].data.get();
}

void Arena::Reset() {
  current_ = 0;
  offset_ = 0;
  used_bytes_ = 0;
}

}  // namespace semitri::common
