#ifndef SEMITRI_COMMON_RNG_H_
#define SEMITRI_COMMON_RNG_H_

// Deterministic random number generation. All stochastic components of the
// library (data generators, GPS noise models) draw from an explicitly
// seeded Rng so that tests and benchmarks are reproducible bit-for-bit.

#include <cstdint>
#include <random>

namespace semitri::common {

class Rng {
 public:
  explicit Rng(uint64_t seed) : engine_(seed) {}

  // Uniform double in [lo, hi).
  double Uniform(double lo, double hi) {
    return std::uniform_real_distribution<double>(lo, hi)(engine_);
  }

  // Uniform integer in [lo, hi] (inclusive).
  int64_t UniformInt(int64_t lo, int64_t hi) {
    return std::uniform_int_distribution<int64_t>(lo, hi)(engine_);
  }

  // Standard normal scaled: mean + stddev * N(0,1).
  double Gaussian(double mean, double stddev) {
    return std::normal_distribution<double>(mean, stddev)(engine_);
  }

  // Exponential with the given mean (= 1/lambda).
  double Exponential(double mean) {
    return std::exponential_distribution<double>(1.0 / mean)(engine_);
  }

  // True with probability p.
  bool Bernoulli(double p) {
    return std::bernoulli_distribution(p)(engine_);
  }

  // Index drawn from a discrete distribution given by (unnormalized) weights.
  template <typename Weights>
  size_t Discrete(const Weights& weights) {
    std::discrete_distribution<size_t> dist(weights.begin(), weights.end());
    return dist(engine_);
  }

  // Derives an independent child stream; used to decorrelate sub-generators
  // (e.g. per-agent noise) without sharing engine state.
  Rng Fork() { return Rng(engine_() ^ 0x9e3779b97f4a7c15ULL); }

  std::mt19937_64& engine() { return engine_; }

 private:
  std::mt19937_64 engine_;
};

}  // namespace semitri::common

#endif  // SEMITRI_COMMON_RNG_H_
