#include "common/retry.h"

#include <algorithm>

#include "common/check.h"

namespace semitri::common {

namespace {

// splitmix64 — cheap stateless mixing for the jitter hash.
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

RetryPolicy::RetryPolicy(RetryPolicyConfig config, const Clock* clock)
    : config_(config), clock_(clock != nullptr ? clock : Clock::Real()) {
  SEMITRI_CHECK(config_.max_attempts >= 1)
      << "a retry policy needs at least one attempt";
  SEMITRI_CHECK(config_.backoff_multiplier >= 1.0)
      << "backoff must not shrink";
  SEMITRI_CHECK(config_.jitter_fraction >= 0.0) << "negative jitter";
}

bool RetryPolicy::IsRetryable(const Status& status) {
  return status.code() == StatusCode::kUnavailable ||
         status.code() == StatusCode::kResourceExhausted;
}

double RetryPolicy::BackoffSeconds(size_t retry_index, uint64_t stream) const {
  if (retry_index == 0) return 0.0;
  double backoff = config_.initial_backoff_seconds;
  for (size_t i = 1; i < retry_index; ++i) {
    backoff *= config_.backoff_multiplier;
    if (backoff >= config_.max_backoff_seconds) break;
  }
  backoff = std::min(backoff, config_.max_backoff_seconds);
  if (config_.jitter_fraction > 0.0) {
    uint64_t h = Mix64(config_.jitter_seed ^ Mix64(stream) ^
                       Mix64(static_cast<uint64_t>(retry_index)));
    double unit = static_cast<double>(h >> 11) * 0x1.0p-53;  // [0, 1)
    backoff *= 1.0 + config_.jitter_fraction * unit;
  }
  return backoff;
}

RetryPolicy::Outcome RetryPolicy::Run(
    const std::function<Status()>& op, const ExecControl* exec,
    uint64_t stream, const std::function<void()>& on_backoff) const {
  Outcome out;
  for (size_t attempt = 1;; ++attempt) {
    if (exec != nullptr) {
      Status alive = exec->Check("retry");
      if (!alive.ok()) {
        // Deadline expired before this attempt: report that, keeping
        // the attempt count honest (only attempts actually made).
        out.status = alive;
        return out;
      }
    }
    ++out.attempts;
    out.status = op();
    if (out.status.ok()) {
      out.recovered = attempt > 1;
      return out;
    }
    if (attempt >= config_.max_attempts || !IsRetryable(out.status)) {
      return out;
    }
    double backoff = BackoffSeconds(attempt, stream);
    if (exec != nullptr && !exec->deadline.infinite()) {
      double remaining = exec->deadline.remaining_seconds();
      if (remaining <= 0.0) {
        out.status = Status::DeadlineExceeded("retry deadline exceeded");
        return out;
      }
      backoff = std::min(backoff, remaining);
    }
    if (on_backoff) on_backoff();
    clock_->SleepFor(backoff);
    out.slept_seconds += backoff;
  }
}

}  // namespace semitri::common
