#include "common/env.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <system_error>

namespace semitri::common {

namespace {

namespace fs = std::filesystem;

Status Errno(const std::string& what, const std::string& path) {
  return Status::IoError(what + " " + path + ": " + std::strerror(errno));
}

// EINTR-looping full write.
Status WriteAllFd(int fd, const char* data, size_t size,
                  const std::string& path) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("write failed:", path);
    }
    written += static_cast<size_t>(n);
  }
  return Status::OK();
}

class PosixWritableFile final : public WritableFile {
 public:
  PosixWritableFile(int fd, std::string path)
      : fd_(fd), path_(std::move(path)) {}
  ~PosixWritableFile() override {
    if (fd_ >= 0) ::close(fd_);
  }

  Status Append(std::string_view data) override {
    if (fd_ < 0) return Status::IoError("append on closed file " + path_);
    return WriteAllFd(fd_, data.data(), data.size(), path_);
  }

  Status Sync() override {
    if (fd_ < 0) return Status::IoError("sync on closed file " + path_);
    if (::fsync(fd_) != 0) return Errno("fsync failed:", path_);
    return Status::OK();
  }

  Status Truncate(uint64_t size) override {
    if (fd_ < 0) return Status::IoError("truncate on closed file " + path_);
    if (::ftruncate(fd_, static_cast<off_t>(size)) != 0) {
      return Errno("ftruncate failed:", path_);
    }
    if (::fsync(fd_) != 0) return Errno("fsync failed:", path_);
    return Status::OK();
  }

  Status Close() override {
    if (fd_ < 0) return Status::OK();
    int fd = fd_;
    fd_ = -1;
    if (::close(fd) != 0) return Errno("close failed:", path_);
    return Status::OK();
  }

 private:
  int fd_;
  std::string path_;
};

class PosixEnv final : public Env {
 public:
  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override {
    int flags = O_WRONLY | O_CREAT |
                (mode == WriteMode::kTruncate ? O_TRUNC : O_APPEND);
    int fd = ::open(path.c_str(), flags, 0644);
    if (fd < 0) return Errno("cannot open for write:", path);
    return std::unique_ptr<WritableFile>(new PosixWritableFile(fd, path));
  }

  Status ReadFileToString(const std::string& path, std::string* out) override {
    out->clear();
    int fd = ::open(path.c_str(), O_RDONLY);
    if (fd < 0) {
      if (errno == ENOENT) return Status::NotFound("no such file: " + path);
      return Errno("cannot open for read:", path);
    }
    char buf[1 << 16];
    while (true) {
      ssize_t n = ::read(fd, buf, sizeof(buf));
      if (n < 0) {
        if (errno == EINTR) continue;
        Status st = Errno("read failed:", path);
        ::close(fd);
        return st;
      }
      if (n == 0) break;
      out->append(buf, static_cast<size_t>(n));
    }
    ::close(fd);
    return Status::OK();
  }

  Status WriteStringToFile(const std::string& path, std::string_view data,
                           bool sync) override {
    auto file = NewWritableFile(path, WriteMode::kTruncate);
    if (!file.ok()) return file.status();
    SEMITRI_RETURN_IF_ERROR((*file)->Append(data));
    if (sync) SEMITRI_RETURN_IF_ERROR((*file)->Sync());
    return (*file)->Close();
  }

  Status RenameFile(const std::string& from, const std::string& to) override {
    if (::rename(from.c_str(), to.c_str()) != 0) {
      return Errno("rename failed:", from + " -> " + to);
    }
    return Status::OK();
  }

  Status SyncDir(const std::string& dir) override {
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0) return Errno("cannot open dir for sync:", dir);
    Status st;
    if (::fsync(fd) != 0) st = Errno("dir fsync failed:", dir);
    ::close(fd);
    return st;
  }

  Status RemoveFile(const std::string& path) override {
    if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
      return Errno("unlink failed:", path);
    }
    return Status::OK();
  }

  Status CreateDirs(const std::string& dir) override {
    std::error_code ec;
    fs::create_directories(dir, ec);
    if (ec) {
      return Status::IoError("cannot create dir " + dir + ": " + ec.message());
    }
    return Status::OK();
  }

  Status RemoveDirRecursive(const std::string& dir) override {
    std::error_code ec;
    fs::remove_all(dir, ec);
    if (ec) {
      return Status::IoError("cannot remove dir " + dir + ": " + ec.message());
    }
    return Status::OK();
  }

  Result<std::vector<std::string>> ListDir(const std::string& dir) override {
    std::vector<std::string> names;
    std::error_code ec;
    fs::directory_iterator it(dir, ec);
    if (ec) {
      if (ec == std::errc::no_such_file_or_directory) return names;
      return Status::IoError("cannot list dir " + dir + ": " + ec.message());
    }
    for (const auto& entry : it) {
      names.push_back(entry.path().filename().string());
    }
    std::sort(names.begin(), names.end());
    return names;
  }

  bool FileExists(const std::string& path) override {
    std::error_code ec;
    return fs::exists(path, ec);
  }

  bool IsDirectory(const std::string& path) override {
    std::error_code ec;
    return fs::is_directory(path, ec);
  }

  Result<uint64_t> FileSize(const std::string& path) override {
    std::error_code ec;
    uint64_t size = fs::file_size(path, ec);
    if (ec) {
      return Status::IoError("cannot stat " + path + ": " + ec.message());
    }
    return size;
  }

  Status TruncateFile(const std::string& path, uint64_t size) override {
    if (::truncate(path.c_str(), static_cast<off_t>(size)) != 0) {
      return Errno("truncate failed:", path);
    }
    return Status::OK();
  }
};

}  // namespace

Env* Env::Default() {
  static PosixEnv* env = new PosixEnv();  // leaked singleton, never torn down
  return env;
}

}  // namespace semitri::common
