#include "common/fault_fs.h"

#include <utility>

namespace semitri::common {

namespace {

Status InjectedError(FaultKind kind, const char* op, const std::string& path) {
  std::string prefix;
  switch (kind) {
    case FaultKind::kEnospc:
      prefix = "injected ENOSPC (no space left on device)";
      break;
    case FaultKind::kShortWrite:
      prefix = "injected short write";
      break;
    case FaultKind::kFsyncFail:
      prefix = "injected fsync failure (durability unknown)";
      break;
    case FaultKind::kTornRename:
      prefix = "injected torn rename (tmp left behind)";
      break;
    case FaultKind::kEio:
      prefix = "injected EIO (input/output error)";
      break;
  }
  return Status::IoError(prefix + " at env:" + op + " on " + path);
}

}  // namespace

// A WritableFile that consults the owning FaultFs before every
// operation. Named (not anonymous) so FaultFs's friend declaration
// binds; the definition is local to this TU.
class FaultWritableFile final : public WritableFile {
 public:
  FaultWritableFile(FaultFs* fs, std::unique_ptr<WritableFile> base,
                    std::string path)
      : fs_(fs), base_(std::move(base)), path_(std::move(path)) {}

  Status Append(std::string_view data) override {
    if (fs_->dead()) return fs_->DeadStatus(path_);
    FaultAction action = fs_->FireOp("append", path_);
    if (action == FaultAction::kNone) return base_->Append(data);
    FaultKind kind = fs_->KindFor("append");
    if (kind == FaultKind::kShortWrite) {
      // Half the bytes reach the base file before the failure — the
      // caller's framing must treat the suffix as torn. The partial
      // write's own status is irrelevant; we report the injected fault.
      (void)base_->Append(data.substr(0, data.size() / 2));
    }
    if (action == FaultAction::kCrash) {
      fs_->MarkDead();
      return Status::IoError("simulated power cut during append on " + path_);
    }
    return InjectedError(kind, "append", path_);
  }

  Status Sync() override {
    if (fs_->dead()) return fs_->DeadStatus(path_);
    FaultAction action = fs_->FireOp("sync", path_);
    if (action == FaultAction::kNone) return base_->Sync();
    if (action == FaultAction::kCrash) {
      fs_->MarkDead();
      return Status::IoError("simulated power cut during sync on " + path_);
    }
    // A failed fsync leaves the already-appended bytes in the base
    // file (they may well be durable) but reports failure: the
    // fsyncgate ambiguity the poisoned-WAL contract exists for.
    return InjectedError(fs_->KindFor("sync"), "sync", path_);
  }

  Status Truncate(uint64_t size) override {
    if (fs_->dead()) return fs_->DeadStatus(path_);
    FaultAction action = fs_->FireOp("truncate", path_);
    if (action == FaultAction::kNone) return base_->Truncate(size);
    if (action == FaultAction::kCrash) {
      fs_->MarkDead();
      return Status::IoError("simulated power cut during truncate on " +
                             path_);
    }
    return InjectedError(fs_->KindFor("truncate"), "truncate", path_);
  }

  Status Close() override {
    if (fs_->dead()) return fs_->DeadStatus(path_);
    FaultAction action = fs_->FireOp("close", path_);
    if (action == FaultAction::kNone) return base_->Close();
    if (action == FaultAction::kCrash) {
      fs_->MarkDead();
      return Status::IoError("simulated power cut during close on " + path_);
    }
    return InjectedError(fs_->KindFor("close"), "close", path_);
  }

 private:
  FaultFs* const fs_;
  const std::unique_ptr<WritableFile> base_;
  const std::string path_;
};

void FaultFs::SetFaultKind(const std::string& site, FaultKind kind) {
  std::lock_guard<std::mutex> lock(mu_);
  kinds_[site] = kind;
}

void FaultFs::SetPathFilter(std::string substr) {
  std::lock_guard<std::mutex> lock(mu_);
  path_filter_ = std::move(substr);
}

bool FaultFs::dead() const {
  std::lock_guard<std::mutex> lock(mu_);
  return dead_;
}

void FaultFs::MarkDead() {
  std::lock_guard<std::mutex> lock(mu_);
  dead_ = true;
}

Status FaultFs::DeadStatus(const std::string& path) const {
  return Status::IoError("simulated power cut: all I/O dead (op on " + path +
                         ")");
}

FaultAction FaultFs::FireOp(const char* op, const std::string& path) {
  (void)op;  // unused when fault injection is compiled out
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!path_filter_.empty() &&
        path.find(path_filter_) == std::string::npos) {
      return FaultAction::kNone;
    }
  }
  return SEMITRI_FAULT_FIRE("env:" + std::string(op));
}

FaultKind FaultFs::KindFor(const char* op) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = kinds_.find("env:" + std::string(op));
  return it == kinds_.end() ? FaultKind::kEio : it->second;
}

Result<std::unique_ptr<WritableFile>> FaultFs::NewWritableFile(
    const std::string& path, WriteMode mode) {
  if (dead()) return DeadStatus(path);
  FaultAction action = FireOp("open", path);
  if (action == FaultAction::kCrash) {
    MarkDead();
    return Status::IoError("simulated power cut during open on " + path);
  }
  if (action == FaultAction::kFail) {
    return InjectedError(KindFor("open"), "open", path);
  }
  auto base = base_->NewWritableFile(path, mode);
  if (!base.ok()) return base.status();
  return std::unique_ptr<WritableFile>(
      new FaultWritableFile(this, std::move(*base), path));
}

Status FaultFs::ReadFileToString(const std::string& path, std::string* out) {
  if (dead()) return DeadStatus(path);
  FaultAction action = FireOp("read", path);
  if (action == FaultAction::kCrash) {
    MarkDead();
    return Status::IoError("simulated power cut during read on " + path);
  }
  if (action == FaultAction::kFail) {
    return InjectedError(KindFor("read"), "read", path);
  }
  return base_->ReadFileToString(path, out);
}

Status FaultFs::WriteStringToFile(const std::string& path,
                                  std::string_view data, bool sync) {
  // Composed from this Env's own open/append/sync/close so those four
  // sites cover whole-file writes too — no separate "env:write" site.
  auto file = NewWritableFile(path, WriteMode::kTruncate);
  if (!file.ok()) return file.status();
  SEMITRI_RETURN_IF_ERROR((*file)->Append(data));
  if (sync) SEMITRI_RETURN_IF_ERROR((*file)->Sync());
  return (*file)->Close();
}

Status FaultFs::RenameFile(const std::string& from, const std::string& to) {
  if (dead()) return DeadStatus(from);
  FaultAction action = FireOp("rename", from);
  if (action == FaultAction::kCrash) {
    // Power cut before the rename reached the journal: the source is
    // still in place, the destination untouched.
    MarkDead();
    return Status::IoError("simulated power cut during rename of " + from);
  }
  if (action == FaultAction::kFail) {
    // Torn rename and EIO look the same to the caller: nothing moved,
    // the source (a .tmp, typically) is left behind.
    return InjectedError(KindFor("rename"), "rename", from);
  }
  return base_->RenameFile(from, to);
}

Status FaultFs::SyncDir(const std::string& dir) {
  if (dead()) return DeadStatus(dir);
  FaultAction action = FireOp("sync_dir", dir);
  if (action == FaultAction::kCrash) {
    MarkDead();
    return Status::IoError("simulated power cut during dir sync of " + dir);
  }
  if (action == FaultAction::kFail) {
    return InjectedError(KindFor("sync_dir"), "sync_dir", dir);
  }
  return base_->SyncDir(dir);
}

Status FaultFs::RemoveFile(const std::string& path) {
  if (dead()) return DeadStatus(path);
  FaultAction action = FireOp("remove", path);
  if (action == FaultAction::kCrash) {
    MarkDead();
    return Status::IoError("simulated power cut during remove of " + path);
  }
  if (action == FaultAction::kFail) {
    return InjectedError(KindFor("remove"), "remove", path);
  }
  return base_->RemoveFile(path);
}

Status FaultFs::CreateDirs(const std::string& dir) {
  if (dead()) return DeadStatus(dir);
  FaultAction action = FireOp("mkdir", dir);
  if (action == FaultAction::kCrash) {
    MarkDead();
    return Status::IoError("simulated power cut during mkdir of " + dir);
  }
  if (action == FaultAction::kFail) {
    return InjectedError(KindFor("mkdir"), "mkdir", dir);
  }
  return base_->CreateDirs(dir);
}

Status FaultFs::RemoveDirRecursive(const std::string& dir) {
  if (dead()) return DeadStatus(dir);
  FaultAction action = FireOp("rmdir", dir);
  if (action == FaultAction::kCrash) {
    MarkDead();
    return Status::IoError("simulated power cut during rmdir of " + dir);
  }
  if (action == FaultAction::kFail) {
    return InjectedError(KindFor("rmdir"), "rmdir", dir);
  }
  return base_->RemoveDirRecursive(dir);
}

Result<std::vector<std::string>> FaultFs::ListDir(const std::string& dir) {
  if (dead()) return Result<std::vector<std::string>>(DeadStatus(dir));
  FaultAction action = FireOp("list", dir);
  if (action == FaultAction::kCrash) {
    MarkDead();
    return Result<std::vector<std::string>>(
        Status::IoError("simulated power cut during list of " + dir));
  }
  if (action == FaultAction::kFail) {
    return Result<std::vector<std::string>>(
        InjectedError(KindFor("list"), "list", dir));
  }
  return base_->ListDir(dir);
}

bool FaultFs::FileExists(const std::string& path) {
  // bool-returning probes cannot report a fault; a dead filesystem
  // sees nothing.
  if (dead()) return false;
  return base_->FileExists(path);
}

bool FaultFs::IsDirectory(const std::string& path) {
  if (dead()) return false;
  return base_->IsDirectory(path);
}

Result<uint64_t> FaultFs::FileSize(const std::string& path) {
  if (dead()) return Result<uint64_t>(DeadStatus(path));
  FaultAction action = FireOp("size", path);
  if (action == FaultAction::kCrash) {
    MarkDead();
    return Result<uint64_t>(
        Status::IoError("simulated power cut during stat of " + path));
  }
  if (action == FaultAction::kFail) {
    return Result<uint64_t>(InjectedError(KindFor("size"), "size", path));
  }
  return base_->FileSize(path);
}

Status FaultFs::TruncateFile(const std::string& path, uint64_t size) {
  if (dead()) return DeadStatus(path);
  FaultAction action = FireOp("truncate_file", path);
  if (action == FaultAction::kCrash) {
    MarkDead();
    return Status::IoError("simulated power cut during truncate of " + path);
  }
  if (action == FaultAction::kFail) {
    return InjectedError(KindFor("truncate_file"), "truncate_file", path);
  }
  return base_->TruncateFile(path, size);
}

}  // namespace semitri::common
