#ifndef SEMITRI_COMMON_CLOCK_H_
#define SEMITRI_COMMON_CLOCK_H_

// Injectable time source for everything in the library that reads the
// wall clock or sleeps: deadline checks, retry backoff (stage
// FailurePolicy, BatchProcessor), circuit-breaker open/half-open
// transitions, session idle tracking and admission token buckets.
//
// Production code uses Clock::Real() (std::chrono::steady_clock).
// Tests inject a FakeClock so retry/backoff/deadline/eviction behavior
// is exercised deterministically in milliseconds of real time: FakeClock
// never blocks — SleepFor simply advances the fake now — and an optional
// auto-advance makes every NowNanos() call move time forward, which lets
// a test expire a deadline in the middle of a loop without threads.
//
// All methods are const so a `const Clock*` can be shared freely across
// threads; FakeClock keeps its state in atomics.

#include <atomic>
#include <cstdint>

namespace semitri::common {

class Clock {
 public:
  virtual ~Clock() = default;

  // Monotonic nanoseconds since an arbitrary epoch.
  virtual int64_t NowNanos() const = 0;

  // Blocks the calling thread for `seconds` (no-op for <= 0). FakeClock
  // advances instead of blocking.
  virtual void SleepFor(double seconds) const = 0;

  double NowSeconds() const { return static_cast<double>(NowNanos()) * 1e-9; }

  // The process-wide real (steady) clock.
  static const Clock* Real();
};

// Deterministic test clock: time moves only when told to.
class FakeClock final : public Clock {
 public:
  explicit FakeClock(int64_t start_nanos = 0) : now_nanos_(start_nanos) {}

  int64_t NowNanos() const override {
    int64_t step = auto_advance_nanos_.load(std::memory_order_relaxed);
    if (step != 0) return now_nanos_.fetch_add(step) + step;
    return now_nanos_.load(std::memory_order_relaxed);
  }

  void SleepFor(double seconds) const override {
    if (seconds > 0.0) Advance(seconds);
  }

  // Moves the fake time forward.
  void Advance(double seconds) const {
    now_nanos_.fetch_add(static_cast<int64_t>(seconds * 1e9));
  }

  // Every NowNanos() call advances time by `seconds` — deadline checks
  // themselves consume wall time, so a loop with periodic checks runs
  // out of budget deterministically, without threads or real waiting.
  void set_auto_advance(double seconds) {
    auto_advance_nanos_.store(static_cast<int64_t>(seconds * 1e9),
                              std::memory_order_relaxed);
  }

 private:
  mutable std::atomic<int64_t> now_nanos_;
  std::atomic<int64_t> auto_advance_nanos_{0};
};

}  // namespace semitri::common

#endif  // SEMITRI_COMMON_CLOCK_H_
