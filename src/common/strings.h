#ifndef SEMITRI_COMMON_STRINGS_H_
#define SEMITRI_COMMON_STRINGS_H_

// Small string utilities shared across the library: printf-style
// formatting into std::string, splitting/joining, and CSV field escaping.

#include <string>
#include <string_view>
#include <vector>

namespace semitri::common {

// printf-style formatting into a std::string.
std::string StrFormat(const char* fmt, ...)
    __attribute__((format(printf, 1, 2)));

// Splits on a single-character delimiter. Keeps empty fields.
std::vector<std::string> Split(std::string_view text, char delim);

// Joins parts with a separator.
std::string Join(const std::vector<std::string>& parts,
                 std::string_view sep);

// Removes leading/trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

// Escapes a CSV field (quotes when it contains comma/quote/newline).
std::string CsvEscape(std::string_view field);

// Parses one CSV line honoring double-quoted fields.
std::vector<std::string> CsvParseLine(std::string_view line);

// Strict whole-string numeric parsing for untrusted input (CSV rows).
// No exceptions, no locale, no partial consumption: the entire trimmed
// field must parse or the function returns false and leaves *out
// untouched. ParseDouble additionally rejects non-finite values
// ("nan"/"inf") — no schema in this codebase legitimately stores them.
bool ParseDouble(std::string_view text, double* out);
bool ParseInt64(std::string_view text, int64_t* out);
bool ParseSizeT(std::string_view text, size_t* out);

}  // namespace semitri::common

#endif  // SEMITRI_COMMON_STRINGS_H_
