#ifndef SEMITRI_COMMON_THREAD_ANNOTATIONS_H_
#define SEMITRI_COMMON_THREAD_ANNOTATIONS_H_

// Wrappers over Clang's thread-safety attributes so locking contracts
// ("samples_ is guarded by mutex_", "caller must hold mutex_") are
// compiler-enforced on Clang builds (-Wthread-safety, enabled by the
// top-level CMakeLists) and harmless no-ops elsewhere (GCC, MSVC).
//
// Conventions used in this codebase:
//   * Every member touched by more than one thread carries
//     SEMITRI_GUARDED_BY(mutex).
//   * Private helpers called under a lock carry SEMITRI_REQUIRES(mutex)
//     instead of re-locking.
//   * Lock-managing helpers carry SEMITRI_ACQUIRE / SEMITRI_RELEASE.
// See https://clang.llvm.org/docs/ThreadSafetyAnalysis.html.

#if defined(__clang__)
#define SEMITRI_THREAD_ANNOTATION_ATTRIBUTE(x) __attribute__((x))
#else
#define SEMITRI_THREAD_ANNOTATION_ATTRIBUTE(x)
#endif

// Data members: protected by the given capability (usually a mutex).
#define SEMITRI_GUARDED_BY(x) \
  SEMITRI_THREAD_ANNOTATION_ATTRIBUTE(guarded_by(x))

// Pointer members: the pointed-to data is protected by the capability.
#define SEMITRI_PT_GUARDED_BY(x) \
  SEMITRI_THREAD_ANNOTATION_ATTRIBUTE(pt_guarded_by(x))

// Functions: caller must hold the capability (exclusively / shared).
#define SEMITRI_REQUIRES(...) \
  SEMITRI_THREAD_ANNOTATION_ATTRIBUTE(requires_capability(__VA_ARGS__))
#define SEMITRI_REQUIRES_SHARED(...) \
  SEMITRI_THREAD_ANNOTATION_ATTRIBUTE(requires_shared_capability(__VA_ARGS__))

// Functions: acquire / release the capability.
#define SEMITRI_ACQUIRE(...) \
  SEMITRI_THREAD_ANNOTATION_ATTRIBUTE(acquire_capability(__VA_ARGS__))
#define SEMITRI_RELEASE(...) \
  SEMITRI_THREAD_ANNOTATION_ATTRIBUTE(release_capability(__VA_ARGS__))

// Functions: must be called without the capability held.
#define SEMITRI_EXCLUDES(...) \
  SEMITRI_THREAD_ANNOTATION_ATTRIBUTE(locks_excluded(__VA_ARGS__))

// Types: this type is a capability (e.g. custom mutex wrappers).
#define SEMITRI_CAPABILITY(x) \
  SEMITRI_THREAD_ANNOTATION_ATTRIBUTE(capability(x))

// Types: RAII lock holders (acquire in ctor, release in dtor).
#define SEMITRI_SCOPED_CAPABILITY \
  SEMITRI_THREAD_ANNOTATION_ATTRIBUTE(scoped_lockable)

// Escape hatch: disables analysis for one function.
#define SEMITRI_NO_THREAD_SAFETY_ANALYSIS \
  SEMITRI_THREAD_ANNOTATION_ATTRIBUTE(no_thread_safety_analysis)

#endif  // SEMITRI_COMMON_THREAD_ANNOTATIONS_H_
