#ifndef SEMITRI_COMMON_RETRY_H_
#define SEMITRI_COMMON_RETRY_H_

// Reusable retry policy for transient failures: capped exponential
// backoff with deterministic, decorrelated jitter, deadline-aware via
// ExecControl. The shard router uses it so a Feed() that lands on a
// failing-over shard waits out the detection + promotion window instead
// of hard-failing; anything else with an at-least-once contract can
// reuse it.
//
// A RetryPolicy is an immutable value: all per-call state lives on the
// caller's stack inside Run(), so one policy can serve every thread of
// a cluster without locking. Jitter is derived by hashing
// (jitter_seed, stream, attempt) — same seed + same stream replays the
// same backoff sequence (FakeClock-deterministic tests), different
// streams (e.g. different object ids) decorrelate so a thundering herd
// of retries spreads out.
//
// Sleeping happens on the injected Clock: production blocks, FakeClock
// advances, so a retry loop in a single-threaded test moves fake time
// forward — which is exactly what lets a colocated failure detector
// cross its suspicion threshold mid-retry (see shard::ShardCluster).

#include <cstddef>
#include <cstdint>
#include <functional>

#include "common/clock.h"
#include "common/exec_control.h"
#include "common/status.h"

namespace semitri::common {

struct RetryPolicyConfig {
  // Total attempts including the first; 1 = no retries.
  size_t max_attempts = 4;
  // Backoff before retry k (1-based) is
  //   min(initial * multiplier^(k-1), max) * jitter, jitter in
  //   [1, 1 + jitter_fraction).
  double initial_backoff_seconds = 0.05;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 2.0;
  double jitter_fraction = 0.1;
  uint64_t jitter_seed = 42;
};

class RetryPolicy {
 public:
  explicit RetryPolicy(RetryPolicyConfig config = {},
                       const Clock* clock = nullptr);

  // Transient codes worth retrying: Unavailable (shard down, mid
  // failover) and ResourceExhausted (admission pushback that drains).
  static bool IsRetryable(const Status& status);

  // Backoff before retry `retry_index` (1-based), jitter included.
  // Pure function of (config, stream, retry_index).
  double BackoffSeconds(size_t retry_index, uint64_t stream = 0) const;

  struct Outcome {
    Status status;        // the last attempt's status (or DeadlineExceeded)
    size_t attempts = 0;  // attempts actually made (>= 1)
    double slept_seconds = 0.0;
    // True when the final attempt succeeded after at least one retry.
    bool recovered = false;
  };

  // Runs `op` up to max_attempts times, sleeping the jittered backoff
  // on the policy clock between attempts and calling `on_backoff`
  // (when set) just before each sleep — the hook the shard router uses
  // to tick its failure detector while waiting. Stops early when the
  // error is not retryable or `exec` expires; an expired deadline
  // returns DeadlineExceeded without burning the remaining attempts,
  // and a backoff is clamped so it never sleeps past the deadline.
  Outcome Run(const std::function<Status()>& op,
              const ExecControl* exec = nullptr, uint64_t stream = 0,
              const std::function<void()>& on_backoff = nullptr) const;

  const RetryPolicyConfig& config() const { return config_; }
  const Clock* clock() const { return clock_; }

 private:
  RetryPolicyConfig config_;
  const Clock* clock_;  // never null after construction
};

}  // namespace semitri::common

#endif  // SEMITRI_COMMON_RETRY_H_
