#ifndef SEMITRI_COMMON_FAULT_SITES_H_
#define SEMITRI_COMMON_FAULT_SITES_H_

// The checked-in registry of SEMITRI_FAULT_FIRE site names.
//
// Fault sites self-register at runtime (common/fault_injection.h), so
// nothing used to stop a new site from landing without kill-at-site
// recovery coverage. This header closes that loop from both ends:
//
//  - tools/semitri_lint's fault-site-registry check statically
//    extracts every SEMITRI_FAULT_FIRE call in src/ and fails when a
//    site is missing here (or an entry here has gone stale);
//  - tests/recovery_test.cc asserts every *runtime-discovered* site
//    matches an entry here, so registration implies the crash/recover
//    sweep actually exercises it.
//
// `prefix` entries cover families of dynamically-composed names
// ("stage:" + stage name); exact entries must be unique across src/.
//
// Keep the list sorted by name.

#include <cstddef>

namespace semitri::common {

struct FaultSiteInfo {
  const char* name;
  // When true, `name` is a prefix: any runtime site starting with it
  // belongs to this entry (e.g. "stage:" covers "stage:map_match").
  bool prefix;
};

inline constexpr FaultSiteInfo kFaultSites[] = {
    {"admission_reject", false},  // session_manager: refused admissions
    {"detector_probe", false},       // shard: liveness probe observation
    {"env:", true},               // FaultFs: per-op disk faults (env:append…)
    {"failover_promote", false},     // shard: standby promotion
    {"migration_handoff", false},    // shard: packed-session transfer
    {"migration_pack", false},       // shard: source-side session pack
    {"migration_unpack", false},     // shard: destination-side adopt
    {"stage:", true},             // stage graph: per-stage failure
    {"stage_slow:", true},        // stage graph: per-stage stall
    {"store_write_through", false},  // store: durable csv append
    {"wal_append", false},           // wal: frame write
    {"wal_checkpoint", false},       // wal: checkpoint + truncate
    {"wal_ship", false},             // shard: sealed-segment copy to standby
    {"wal_sync", false},             // wal: fsync
    {"world_load", false},           // io: world snapshot read
    {"world_save", false},           // io: world snapshot write
};

inline constexpr size_t kFaultSiteCount =
    sizeof(kFaultSites) / sizeof(kFaultSites[0]);

// True when `site` matches `info` (exact, or prefix for families).
inline bool FaultSiteMatches(const FaultSiteInfo& info, const char* site) {
  const char* a = info.name;
  const char* b = site;
  while (*a != '\0' && *a == *b) {
    ++a;
    ++b;
  }
  return *a == '\0' && (info.prefix || *b == '\0');
}

}  // namespace semitri::common

#endif  // SEMITRI_COMMON_FAULT_SITES_H_
