#include "common/fault_injection.h"

namespace semitri::common {

namespace {

// splitmix64 step — a tiny, seedable, allocation-free generator for the
// per-site probabilistic stream (std::mt19937_64 would work too, but a
// single u64 of state keeps Site trivially copyable).
uint64_t NextRandom(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ull);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

double UnitUniform(uint64_t* state) {
  // 53 random mantissa bits -> [0, 1).
  return static_cast<double>(NextRandom(state) >> 11) * 0x1.0p-53;
}

}  // namespace

FaultInjector& FaultInjector::Global() {
  static FaultInjector* injector = new FaultInjector();
  return *injector;
}

void FaultInjector::Arm(std::string_view site, FaultPolicy policy) {
  std::lock_guard<std::mutex> lock(mutex_);
  Site& s = sites_[std::string(site)];
  s.armed = true;
  s.policy = policy;
  s.armed_hits = 0;
  s.triggered = false;
  s.rng_state = policy.seed;
}

void FaultInjector::Disarm(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) return;
  it->second.armed = false;
  it->second.triggered = false;
}

void FaultInjector::Reset() {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto& [name, site] : sites_) {
    site = Site();
  }
}

FaultAction FaultInjector::Fire(std::string_view site) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  if (it == sites_.end()) {
    it = sites_.emplace(std::string(site), Site()).first;
  }
  Site& s = it->second;
  ++s.hits;
  if (!s.armed) return FaultAction::kNone;
  ++s.armed_hits;

  const FaultPolicy& policy = s.policy;
  bool trigger = false;
  if (policy.trigger_on_hit > 0) {
    if (policy.repeat) {
      trigger = s.armed_hits >= policy.trigger_on_hit;
    } else {
      trigger = !s.triggered && s.armed_hits == policy.trigger_on_hit;
    }
  }
  if (!trigger && policy.probability > 0.0) {
    trigger = UnitUniform(&s.rng_state) < policy.probability;
    if (!policy.repeat && s.triggered) trigger = false;
  }
  if (!trigger) return FaultAction::kNone;
  s.triggered = true;
  return policy.action;
}

uint64_t FaultInjector::HitCount(std::string_view site) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = sites_.find(site);
  return it == sites_.end() ? 0 : it->second.hits;
}

std::vector<std::string> FaultInjector::Sites() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  out.reserve(sites_.size());
  for (const auto& [name, site] : sites_) out.push_back(name);
  return out;
}

}  // namespace semitri::common
