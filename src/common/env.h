#ifndef SEMITRI_COMMON_ENV_H_
#define SEMITRI_COMMON_ENV_H_

// Filesystem abstraction for every durable-path file operation in the
// library (the LevelDB/RocksDB Env idiom). All file I/O in src/ —
// store WAL + checkpoints, shard segment shipping, streaming
// checkpoints, world snapshots, export writers — goes through an Env
// so that disk faults (ENOSPC, EIO, short writes, fsync failures, torn
// renames) can be injected deterministically with the FaultFs
// decorator (common/fault_fs.h) and every caller's error path is
// testable without a real failing disk. tools/semitri_lint's
// raw-filesystem check forbids raw ::open/std::ofstream/::fsync in
// src/ outside common/env*.
//
// Error contract: every fallible operation returns Status (kIoError
// for OS-level failures, kNotFound where the caller may legitimately
// probe for absence). A WritableFile that has reported any Append /
// Sync / Truncate failure makes NO durability promise about prior
// writes: after a failed fsync the kernel may have dropped dirty pages
// (fsyncgate), so callers must treat the file as suspect and recover
// from the log, never retry-and-trust. The WAL writer enforces this by
// poisoning itself (store/wal.h).
//
// Env::Default() returns a process-wide POSIX implementation; pass
// null Env* config pointers to mean "the real filesystem".

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"

namespace semitri::common {

// A sequentially writable file. Not thread-safe; callers serialize.
class WritableFile {
 public:
  virtual ~WritableFile() = default;
  WritableFile() = default;
  WritableFile(const WritableFile&) = delete;
  WritableFile& operator=(const WritableFile&) = delete;

  // Appends bytes at the current end of file.
  [[nodiscard]] virtual Status Append(std::string_view data) = 0;

  // Flushes everything appended so far to stable storage (fsync).
  [[nodiscard]] virtual Status Sync() = 0;

  // Truncates the file to `size` bytes and syncs the truncation
  // (checkpoint compaction empties the WAL this way).
  [[nodiscard]] virtual Status Truncate(uint64_t size) = 0;

  // Closes the descriptor; idempotent. The destructor closes too, but
  // silently — call Close() where the close error matters.
  [[nodiscard]] virtual Status Close() = 0;
};

enum class WriteMode {
  kTruncate,  // create or truncate to empty
  kAppend,    // create if absent, append at end
};

class Env {
 public:
  virtual ~Env() = default;
  Env() = default;
  Env(const Env&) = delete;
  Env& operator=(const Env&) = delete;

  // The process-wide POSIX filesystem.
  static Env* Default();

  [[nodiscard]] virtual Result<std::unique_ptr<WritableFile>>
  NewWritableFile(const std::string& path, WriteMode mode) = 0;

  // Reads the whole file into *out (replacing its contents). NotFound
  // when the file does not exist — callers that treat a missing file
  // as empty (WAL replay) branch on the code.
  [[nodiscard]] virtual Status ReadFileToString(const std::string& path,
                                                std::string* out) = 0;

  // Writes `data` as the entire file contents (truncating), fsyncing
  // before close when `sync` is set.
  [[nodiscard]] virtual Status WriteStringToFile(const std::string& path,
                                                 std::string_view data,
                                                 bool sync) = 0;

  // Atomically renames `from` to `to` (same filesystem).
  [[nodiscard]] virtual Status RenameFile(const std::string& from,
                                          const std::string& to) = 0;

  // fsyncs the directory itself so renames/creates within it are
  // durable.
  [[nodiscard]] virtual Status SyncDir(const std::string& dir) = 0;

  // Removes a file; removing an already-absent path is OK (idempotent
  // cleanup).
  [[nodiscard]] virtual Status RemoveFile(const std::string& path) = 0;

  // mkdir -p; an existing directory is OK.
  [[nodiscard]] virtual Status CreateDirs(const std::string& dir) = 0;

  // rm -rf; an absent path is OK.
  [[nodiscard]] virtual Status RemoveDirRecursive(const std::string& dir) = 0;

  // Names (not paths) of the entries in `dir`, sorted; a missing
  // directory lists as empty.
  [[nodiscard]] virtual Result<std::vector<std::string>> ListDir(
      const std::string& dir) = 0;

  virtual bool FileExists(const std::string& path) = 0;
  virtual bool IsDirectory(const std::string& path) = 0;

  [[nodiscard]] virtual Result<uint64_t> FileSize(const std::string& path) = 0;

  // Truncates a closed file by path and syncs the result (WAL
  // torn-tail trimming).
  [[nodiscard]] virtual Status TruncateFile(const std::string& path,
                                            uint64_t size) = 0;
};

// Config structs carry a nullable Env*; null means the real
// filesystem.
inline Env* ResolveEnv(Env* env) { return env != nullptr ? env : Env::Default(); }

}  // namespace semitri::common

#endif  // SEMITRI_COMMON_ENV_H_
