#ifndef SEMITRI_COMMON_EXEC_CONTROL_H_
#define SEMITRI_COMMON_EXEC_CONTROL_H_

// Deadlines and cooperative cancellation for the annotation pipeline.
//
// A caller that must stay responsive under load (the streaming front
// end, an RPC handler, the watchdog) attaches an ExecControl to the run:
// a wall-clock Deadline, a CancellationToken that any thread may fire,
// and the per-stage budget / check-interval knobs. The stage graph
// checks it between stages, and the expensive inner loops (HMM Viterbi
// sweep, global map-matching candidate scan, spatial-join scans over the
// R*-tree) check it every `check_interval` iterations through an
// ExecCheckpoint, so a pathological trajectory aborts with
// Status::DeadlineExceeded within a bounded amount of extra work instead
// of pinning a thread indefinitely.
//
// Cancellation is cooperative: Cancel() only flips a shared flag; the
// running code notices at its next checkpoint. Everything is
// deterministic under test via an injected FakeClock.

#include <cstdint>
#include <limits>
#include <memory>

#include "common/clock.h"
#include "common/status.h"

namespace semitri::common {

// Shared cancel flag. Copies observe the same flag, so a token handed to
// a worker can be fired from a watchdog or an operator thread.
class CancellationToken {
 public:
  CancellationToken() : state_(std::make_shared<std::atomic<bool>>(false)) {}

  void Cancel() const { state_->store(true, std::memory_order_relaxed); }
  bool cancelled() const {
    return state_->load(std::memory_order_relaxed);
  }

 private:
  std::shared_ptr<std::atomic<bool>> state_;
};

// A point on a Clock's timeline; default-constructed = never expires.
class Deadline {
 public:
  Deadline() = default;

  static Deadline Infinite() { return Deadline(); }

  // Expires `seconds` from now on `clock` (null = the real clock).
  static Deadline After(double seconds, const Clock* clock = nullptr) {
    const Clock* c = clock != nullptr ? clock : Clock::Real();
    Deadline d;
    d.clock_ = c;
    d.nanos_ = c->NowNanos() + static_cast<int64_t>(seconds * 1e9);
    return d;
  }

  bool infinite() const { return nanos_ == kInfiniteNanos; }

  bool expired() const {
    if (infinite()) return false;
    return clock()->NowNanos() >= nanos_;
  }

  // Seconds until expiry (negative once expired, +inf when infinite).
  double remaining_seconds() const {
    if (infinite()) return std::numeric_limits<double>::infinity();
    return static_cast<double>(nanos_ - clock()->NowNanos()) * 1e-9;
  }

  // The earlier of the two deadlines.
  static Deadline Earlier(const Deadline& a, const Deadline& b) {
    if (a.infinite()) return b;
    if (b.infinite()) return a;
    return a.nanos_ <= b.nanos_ ? a : b;
  }

  const Clock* clock() const {
    return clock_ != nullptr ? clock_ : Clock::Real();
  }
  int64_t nanos() const { return nanos_; }

 private:
  static constexpr int64_t kInfiniteNanos =
      std::numeric_limits<int64_t>::max();

  const Clock* clock_ = nullptr;  // null = real clock
  int64_t nanos_ = kInfiniteNanos;
};

// Everything a run needs to stay bounded: the run deadline, the cancel
// flag, and the knobs governing how stages consume them. Plumbed through
// core::AnnotationContext; a null ExecControl* means "unbounded" and
// costs nothing on the hot path.
struct ExecControl {
  Deadline deadline;
  CancellationToken token;
  // Clock used to derive per-stage deadlines and to time stages for the
  // circuit breakers (null = real clock). Should match deadline.clock().
  const Clock* clock = nullptr;
  // Additional per-stage wall budget: each stage runs under
  // min(run deadline, stage start + stage_timeout_seconds). A stage that
  // exhausts only its own budget composes with its FailurePolicy (a
  // skip-and-record stage degrades instead of failing the run); an
  // exhausted *run* deadline always aborts. 0 disables.
  double stage_timeout_seconds = 0.0;
  // Loop iterations between deadline/cancellation consults inside the
  // expensive annotator loops (bounds how late an abort can be noticed).
  size_t check_interval = 256;

  const Clock* effective_clock() const {
    return clock != nullptr ? clock : Clock::Real();
  }

  // OK while the run may continue; DeadlineExceeded once the deadline
  // passed or the token fired. `where` tags the message for diagnosis.
  [[nodiscard]] Status Check(const char* where = nullptr) const {
    if (token.cancelled()) {
      return Status::DeadlineExceeded(
          where != nullptr ? std::string("cancelled in ") + where
                           : std::string("cancelled"));
    }
    if (deadline.expired()) {
      return Status::DeadlineExceeded(
          where != nullptr ? std::string("deadline exceeded in ") + where
                           : std::string("deadline exceeded"));
    }
    return Status::OK();
  }
};

// Amortized checkpoint for hot loops: consults the ExecControl only
// every check_interval-th call, so the common case is one branch and an
// increment. Null exec compiles down to a constant-false branch.
class ExecCheckpoint {
 public:
  explicit ExecCheckpoint(const ExecControl* exec)
      : exec_(exec),
        interval_(exec != nullptr && exec->check_interval > 0
                      ? exec->check_interval
                      : 1) {}

  [[nodiscard]] Status Check(const char* where = nullptr) {
    if (exec_ == nullptr) return Status::OK();
    if (++count_ % interval_ != 0) return Status::OK();
    return exec_->Check(where);
  }

 private:
  const ExecControl* exec_;
  size_t interval_;
  size_t count_ = 0;
};

}  // namespace semitri::common

#endif  // SEMITRI_COMMON_EXEC_CONTROL_H_
