#ifndef SEMITRI_COMMON_STATUS_H_
#define SEMITRI_COMMON_STATUS_H_

// Error handling for the SeMiTri library.
//
// Library code does not throw exceptions; fallible operations return a
// Status, or a Result<T> when they also produce a value (the RocksDB /
// Arrow idiom). A default-constructed Status is OK.

#include <string>
#include <utility>
#include <variant>

#include "common/check.h"

namespace semitri::common {

enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kNotFound,
  kOutOfRange,
  kAlreadyExists,
  kFailedPrecondition,
  kIoError,
  kCorruption,
  kInternal,
  // A deadline expired or the work was cancelled before it finished
  // (cooperative cancellation; see common/exec_control.h).
  kDeadlineExceeded,
  // A resource budget (admission quota, rate limit, buffer cap) is
  // exhausted; the request was refused, not failed — retrying later may
  // succeed.
  kResourceExhausted,
  // A dependency is temporarily refusing work (e.g. an open circuit
  // breaker); callers should degrade or back off rather than retry hot.
  kUnavailable,
};

// Human-readable name of a status code ("Ok", "InvalidArgument", ...).
const char* StatusCodeName(StatusCode code);

// The class-level [[nodiscard]] makes *every* function returning a
// Status by value warn when the result is dropped (GCC/Clang
// -Wunused-result, promoted by SEMITRI_WERROR), even functions that
// forgot the per-declaration attribute. Discarding a Status is only
// legal through an explicit `(void)` cast next to a comment saying why;
// tools/semitri_lint's unchecked-status check enforces the same
// contract on paths the compiler cannot see (macro bodies,
// uninstantiated templates).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  [[nodiscard]] static Status OK() { return Status(); }
  [[nodiscard]] static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  [[nodiscard]] static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  [[nodiscard]] static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  [[nodiscard]] static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  [[nodiscard]] static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  [[nodiscard]] static Status IoError(std::string msg) {
    return Status(StatusCode::kIoError, std::move(msg));
  }
  [[nodiscard]] static Status Corruption(std::string msg) {
    return Status(StatusCode::kCorruption, std::move(msg));
  }
  [[nodiscard]] static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  [[nodiscard]] static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  [[nodiscard]] static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }
  [[nodiscard]] static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "Ok" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

// A value-or-error union. Accessing value() on an error aborts with the
// carried status in all build types; check ok() first. [[nodiscard]]
// for the same reason as Status: dropping a Result loses an error.
template <typename T>
class [[nodiscard]] Result {
 public:
  // Intentionally implicit so functions can `return value;` / `return status;`.
  Result(T value) : data_(std::move(value)) {}
  Result(Status status) : data_(std::move(status)) {
    SEMITRI_CHECK(!std::get<Status>(data_).ok())
        << "Result constructed from OK status carries no value";
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    SEMITRI_CHECK(ok()) << "value() on error Result: " << status().ToString();
    return std::get<T>(data_);
  }
  T& value() & {
    SEMITRI_CHECK(ok()) << "value() on error Result: " << status().ToString();
    return std::get<T>(data_);
  }
  T&& value() && {
    SEMITRI_CHECK(ok()) << "value() on error Result: " << status().ToString();
    return std::get<T>(std::move(data_));
  }

  [[nodiscard]] Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(data_);
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> data_;
};

}  // namespace semitri::common

// Propagates a non-OK Status from an expression.
#define SEMITRI_RETURN_IF_ERROR(expr)            \
  do {                                           \
    ::semitri::common::Status _st = (expr);      \
    if (!_st.ok()) return _st;                   \
  } while (0)

#endif  // SEMITRI_COMMON_STATUS_H_
