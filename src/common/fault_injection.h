#ifndef SEMITRI_COMMON_FAULT_INJECTION_H_
#define SEMITRI_COMMON_FAULT_INJECTION_H_

// Deterministic fault injection for the durability and degradation
// test harnesses.
//
// Production code marks fault *sites* — named points where an I/O or
// stage failure can be simulated — with SEMITRI_FAULT_FIRE("site").
// When the library is built with -DSEMITRI_FAULT_INJECTION=ON the macro
// consults the process-global FaultInjector: tests Arm() a site with a
// policy (fail once, fail on the n-th hit, probabilistic with a fixed
// seed) and the site reacts to the returned action. When the option is
// OFF (the default) the macro expands to the constant kNone, the
// surrounding `if (action != kNone)` handling is dead code, and the
// whole mechanism compiles to nothing — zero cost on every hot path.
//
// Two actions are distinguished:
//   * kFail  — the site reports an injected error Status and the
//     process keeps running (degradation / retry testing);
//   * kCrash — the site simulates the process dying at that point:
//     durable sinks stop persisting (the WAL goes dead, possibly
//     leaving a torn partial record, exactly like a power cut mid
//     write) and the caller treats the returned error as the moment of
//     death. Recovery tests then re-open the on-disk state with
//     SemanticTrajectoryStore::Recover.
//
// Sites self-register on first Fire, so a harness can run once with
// injection enabled-but-unarmed to discover every registered site and
// then iterate a crash over each (tests/recovery_test.cc).
//
// Thread-safe: all injector state is mutex-guarded.

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/thread_annotations.h"

#ifndef SEMITRI_FAULT_INJECTION_ENABLED
#define SEMITRI_FAULT_INJECTION_ENABLED 0
#endif

namespace semitri::common {

enum class FaultAction {
  kNone = 0,  // proceed normally
  kFail,      // return an injected error and keep running
  kCrash,     // simulate process death at this point
};

// When and how an armed site triggers. Hits are counted per site from
// the moment the site first fires (armed or not); the policy is
// evaluated against the per-site hit count observed *after* arming.
struct FaultPolicy {
  FaultAction action = FaultAction::kFail;
  // Trigger on the n-th post-arm hit (1-based). 0 disables the counter
  // trigger (probabilistic-only policies).
  uint64_t trigger_on_hit = 1;
  // Keep triggering on every hit at or past trigger_on_hit instead of
  // exactly once.
  bool repeat = false;
  // Independent per-hit trigger probability in [0, 1], evaluated from a
  // deterministic per-site stream seeded with `seed` — two runs with the
  // same seed and hit sequence inject at the same hits.
  double probability = 0.0;
  uint64_t seed = 0;

  static FaultPolicy FailOnce() { return {FaultAction::kFail, 1, false, 0.0, 0}; }
  static FaultPolicy FailNth(uint64_t n) {
    return {FaultAction::kFail, n, false, 0.0, 0};
  }
  static FaultPolicy FailAlways() {
    return {FaultAction::kFail, 1, true, 0.0, 0};
  }
  static FaultPolicy CrashNth(uint64_t n) {
    return {FaultAction::kCrash, n, false, 0.0, 0};
  }
  static FaultPolicy Probabilistic(double p, uint64_t seed) {
    return {FaultAction::kFail, 0, true, p, seed};
  }
};

class FaultInjector {
 public:
  // The process-global injector every SEMITRI_FAULT_FIRE site consults.
  static FaultInjector& Global();

  // Whether fault sites were compiled in.
  static constexpr bool enabled() { return SEMITRI_FAULT_INJECTION_ENABLED; }

  // Arms `site` with `policy`; replaces any previous policy and restarts
  // the policy's post-arm hit count.
  void Arm(std::string_view site, FaultPolicy policy) SEMITRI_EXCLUDES(mutex_);

  // Removes the policy of one site (hit statistics survive).
  void Disarm(std::string_view site) SEMITRI_EXCLUDES(mutex_);

  // Disarms every site and clears all hit statistics. Registered site
  // names are kept so discovery runs stay valid.
  void Reset() SEMITRI_EXCLUDES(mutex_);

  // Registers `site` (on first call), counts the hit, and evaluates the
  // armed policy, if any. This is what SEMITRI_FAULT_FIRE calls.
  FaultAction Fire(std::string_view site) SEMITRI_EXCLUDES(mutex_);

  // Total hits observed at `site` since the last Reset.
  uint64_t HitCount(std::string_view site) const SEMITRI_EXCLUDES(mutex_);

  // Every site name that ever fired (sorted), armed or not.
  std::vector<std::string> Sites() const SEMITRI_EXCLUDES(mutex_);

 private:
  struct Site {
    uint64_t hits = 0;        // total hits since Reset
    bool armed = false;
    FaultPolicy policy;
    uint64_t armed_hits = 0;  // hits since the policy was armed
    bool triggered = false;   // one-shot policies only trigger once
    uint64_t rng_state = 0;   // per-site deterministic stream
  };

  mutable std::mutex mutex_;
  std::map<std::string, Site, std::less<>> sites_ SEMITRI_GUARDED_BY(mutex_);
};

}  // namespace semitri::common

// Marks a fault site. Yields a common::FaultAction; sites handle kFail /
// kCrash and fall through on kNone. Compiles to the constant kNone (and
// the handling below it to nothing) unless SEMITRI_FAULT_INJECTION=ON.
#if SEMITRI_FAULT_INJECTION_ENABLED
#define SEMITRI_FAULT_FIRE(site) \
  ::semitri::common::FaultInjector::Global().Fire(site)
#else
#define SEMITRI_FAULT_FIRE(site) ::semitri::common::FaultAction::kNone
#endif

#endif  // SEMITRI_COMMON_FAULT_INJECTION_H_
