#ifndef SEMITRI_COMMON_ARENA_H_
#define SEMITRI_COMMON_ARENA_H_

// Bump allocator for per-run kernel scratch.
//
// The annotation data plane allocates all transient per-run arrays
// (candidate CSR rows, distance batches, Viterbi delta/psi, emission
// rows) from one Arena owned by the run's AnnotationScratch. Reset()
// recycles the memory without returning it to the system, so a
// steady-state streaming session performs zero allocations once its
// arena has grown to the working-set high-water mark — the property
// tests/stream_scratch_test.cc asserts via num_block_allocations().
//
// Not thread-safe: one Arena belongs to one run/session at a time,
// exactly like the AnnotationScratch that owns it.

#include <cstddef>
#include <cstdint>
#include <memory>
#include <span>
#include <vector>

namespace semitri::common {

class Arena {
 public:
  // First block size; subsequent blocks double up to kMaxBlockBytes.
  static constexpr size_t kInitialBlockBytes = 64 * 1024;
  static constexpr size_t kMaxBlockBytes = 8 * 1024 * 1024;

  Arena() = default;
  Arena(const Arena&) = delete;
  Arena& operator=(const Arena&) = delete;

  // Uninitialized storage for `count` objects of T (trivial T only —
  // nothing is constructed or destroyed). Alignment of T is honored.
  template <typename T>
  std::span<T> AllocSpan(size_t count) {
    static_assert(std::is_trivially_destructible_v<T>,
                  "Arena storage is never destroyed");
    void* p = AllocBytes(count * sizeof(T), alignof(T));
    return {static_cast<T*>(p), count};
  }

  // Raw aligned allocation; `align` must be a power of two.
  void* AllocBytes(size_t bytes, size_t align);

  // Recycles every block for reuse. Pointers handed out before the
  // Reset are invalidated; capacity (and the block list) is kept, so a
  // warm arena serves the next run without touching the allocator.
  void Reset();

  // --- stats (the zero-steady-state-allocation contract) --------------
  // Number of times a fresh block was fetched from the system
  // allocator. Monotonic: stays flat across Reset()/reuse cycles once
  // the arena reached its high-water capacity.
  size_t num_block_allocations() const { return num_block_allocations_; }
  // Total capacity owned (bytes across all blocks).
  size_t capacity_bytes() const { return capacity_bytes_; }
  // Bytes handed out since the last Reset (excluding alignment waste).
  size_t used_bytes() const { return used_bytes_; }

 private:
  struct Block {
    std::unique_ptr<char[]> data;
    size_t size = 0;
  };

  std::vector<Block> blocks_;
  size_t current_ = 0;    // index of the block being bumped
  size_t offset_ = 0;     // bump offset within blocks_[current_]
  size_t used_bytes_ = 0;
  size_t capacity_bytes_ = 0;
  size_t num_block_allocations_ = 0;
};

}  // namespace semitri::common

#endif  // SEMITRI_COMMON_ARENA_H_
