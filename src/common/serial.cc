#include "common/serial.h"

#include <array>
#include <cstring>

namespace semitri::common {

namespace {

std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

}  // namespace

uint32_t Crc32(std::string_view data, uint32_t seed) {
  static const std::array<uint32_t, 256> table = MakeCrcTable();
  uint32_t c = seed ^ 0xFFFFFFFFu;
  for (char ch : data) {
    c = table[(c ^ static_cast<uint8_t>(ch)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

void StateWriter::PutU32(uint32_t value) {
  for (int i = 0; i < 4; ++i) {
    buffer_.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void StateWriter::PutU64(uint64_t value) {
  for (int i = 0; i < 8; ++i) {
    buffer_.push_back(static_cast<char>((value >> (8 * i)) & 0xFFu));
  }
}

void StateWriter::PutDouble(double value) {
  uint64_t bits = 0;
  static_assert(sizeof(bits) == sizeof(value));
  std::memcpy(&bits, &value, sizeof(bits));
  PutU64(bits);
}

void StateWriter::PutString(std::string_view value) {
  PutU32(static_cast<uint32_t>(value.size()));
  buffer_.append(value.data(), value.size());
}

Status StateReader::Take(size_t n, const char** out) {
  if (data_.size() - pos_ < n) {
    return Status::Corruption("serialized state truncated");
  }
  *out = data_.data() + pos_;
  pos_ += n;
  return Status::OK();
}

Status StateReader::GetU8(uint8_t* out) {
  const char* p = nullptr;
  SEMITRI_RETURN_IF_ERROR(Take(1, &p));
  *out = static_cast<uint8_t>(*p);
  return Status::OK();
}

Status StateReader::GetBool(bool* out) {
  uint8_t v = 0;
  SEMITRI_RETURN_IF_ERROR(GetU8(&v));
  if (v > 1) return Status::Corruption("serialized bool out of range");
  *out = v != 0;
  return Status::OK();
}

Status StateReader::GetU32(uint32_t* out) {
  const char* p = nullptr;
  SEMITRI_RETURN_IF_ERROR(Take(4, &p));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *out = v;
  return Status::OK();
}

Status StateReader::GetU64(uint64_t* out) {
  const char* p = nullptr;
  SEMITRI_RETURN_IF_ERROR(Take(8, &p));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) {
    v |= static_cast<uint64_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  *out = v;
  return Status::OK();
}

Status StateReader::GetI64(int64_t* out) {
  uint64_t v = 0;
  SEMITRI_RETURN_IF_ERROR(GetU64(&v));
  *out = static_cast<int64_t>(v);
  return Status::OK();
}

Status StateReader::GetDouble(double* out) {
  uint64_t bits = 0;
  SEMITRI_RETURN_IF_ERROR(GetU64(&bits));
  std::memcpy(out, &bits, sizeof(bits));
  return Status::OK();
}

Status StateReader::GetString(std::string* out) {
  uint32_t size = 0;
  SEMITRI_RETURN_IF_ERROR(GetU32(&size));
  const char* p = nullptr;
  SEMITRI_RETURN_IF_ERROR(Take(size, &p));
  out->assign(p, size);
  return Status::OK();
}

}  // namespace semitri::common
