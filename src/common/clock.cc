#include "common/clock.h"

#include <chrono>
#include <thread>

namespace semitri::common {

namespace {

class RealClock final : public Clock {
 public:
  int64_t NowNanos() const override {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now().time_since_epoch())
        .count();
  }

  void SleepFor(double seconds) const override {
    if (seconds <= 0.0) return;
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
  }
};

}  // namespace

const Clock* Clock::Real() {
  static const RealClock* clock = new RealClock();
  return clock;
}

}  // namespace semitri::common
