#ifndef SEMITRI_COMMON_CHECK_H_
#define SEMITRI_COMMON_CHECK_H_

// Contract-check macros. Unlike bare assert(), these name the violated
// invariant, carry a streamed context message, and print file:line
// before aborting:
//
//   SEMITRI_CHECK(index < size) << "index " << index << " of " << size;
//   SEMITRI_DCHECK(node->leaf) << "descent must end at a leaf";
//   SEMITRI_CHECK_OK(store->PutEpisodes(id, eps)) << "while persisting";
//
// SEMITRI_CHECK aborts in every build type (violations are logic errors
// whose continued execution would be undefined behavior). SEMITRI_DCHECK
// compiles to nothing under NDEBUG and is for hot-path invariants that
// are too expensive or too internal to verify in release builds. Both
// evaluate their condition at most once; DCHECK does not evaluate it at
// all under NDEBUG (the expression is only type-checked).

#include <cstdlib>
#include <iostream>
#include <sstream>
#include <string>

namespace semitri::common::internal {

// Collects the streamed message; the destructor (end of the enclosing
// full-expression/statement) prints everything and aborts.
class CheckMessage {
 public:
  CheckMessage(const char* file, int line, const char* condition)
      : file_(file), line_(line), condition_(condition) {}

  CheckMessage(const CheckMessage&) = delete;
  CheckMessage& operator=(const CheckMessage&) = delete;

  ~CheckMessage() {
    std::string message = stream_.str();
    std::cerr << file_ << ":" << line_ << ": check failed: " << condition_;
    if (!message.empty()) std::cerr << " — " << message;
    std::cerr << std::endl;
    std::abort();
  }

  std::ostream& stream() { return stream_; }

 private:
  const char* file_;
  int line_;
  const char* condition_;
  std::ostringstream stream_;
};

// Swallows the ostream produced by a CheckMessage chain so both arms of
// the SEMITRI_CHECK ternary have type void. operator& binds looser than
// operator<<, so every streamed argument attaches to the message first.
struct Voidify {
  void operator&(std::ostream&) const {}
};

// Holds the one-time evaluation of a status expression for
// SEMITRI_CHECK_OK. Works with any status-like type exposing ok() and
// ToString().
struct StatusCheckState {
  template <typename StatusLike>
  explicit StatusCheckState(const StatusLike& status)
      : ok(status.ok()), text(ok ? std::string() : status.ToString()) {}
  bool ok;
  std::string text;
};

}  // namespace semitri::common::internal

// Aborts with context when `condition` is false, in all build types.
// Additional context streams in: SEMITRI_CHECK(x > 0) << "x=" << x;
#define SEMITRI_CHECK(condition)                                            \
  (condition)                                                               \
      ? (void)0                                                             \
      : ::semitri::common::internal::Voidify() &                            \
            ::semitri::common::internal::CheckMessage(__FILE__, __LINE__,   \
                                                      #condition)           \
                .stream()

// Debug-only variant: full check without NDEBUG, compiled out (condition
// unevaluated, only type-checked) under NDEBUG.
#ifdef NDEBUG
#define SEMITRI_DCHECK(condition) \
  while (false) SEMITRI_CHECK(condition)
#else
#define SEMITRI_DCHECK(condition) SEMITRI_CHECK(condition)
#endif

// Aborts with the status text when a status-like expression (anything
// with ok() and ToString(), i.e. Status and Result<T>) is not OK.
// Evaluates the expression exactly once; context streams in. The for
// loop runs at most one iteration — its body aborts via CheckMessage.
#define SEMITRI_CHECK_OK(expression)                                        \
  for (::semitri::common::internal::StatusCheckState semitri_check_state{   \
           (expression)};                                                   \
       !semitri_check_state.ok; semitri_check_state.ok = true)              \
  ::semitri::common::internal::CheckMessage(                                \
      __FILE__, __LINE__, "SEMITRI_CHECK_OK(" #expression ")")              \
          .stream()                                                         \
      << semitri_check_state.text << " "

#endif  // SEMITRI_COMMON_CHECK_H_
