#ifndef SEMITRI_COMMON_FAULT_FS_H_
#define SEMITRI_COMMON_FAULT_FS_H_

// FaultFs — a deterministic disk-fault-injecting Env decorator.
//
// Wraps a base Env (usually Env::Default()) and fires a registered
// fault site at every operation, named "env:" + the operation
// ("env:append", "env:sync", "env:rename", ...). WHEN a fault fires is
// decided by the process FaultInjector (arm a site with FailNth /
// FailOnce / FailAlways exactly like the crash sites); WHAT the
// failure looks like is decided by the per-site FaultKind:
//
//   kEio        the operation fails with an EIO-flavored IoError and
//               has no effect (the default).
//   kEnospc     as kEio but ENOSPC-flavored — "disk full".
//   kShortWrite (append only) half the bytes reach the base file,
//               then IoError; models a partial write() under pressure.
//   kFsyncFail  (sync only) the data already reached the base file
//               but the sync reports IoError — the fsyncgate shape:
//               the write may or may not be durable, and the caller
//               must not retry-and-trust.
//   kTornRename (rename only) the source is left in place, the
//               destination untouched, IoError returned — the tmp
//               file survives for orphan-sweep coverage.
//
// A kCrash action from the injector applies the kind's partial effect
// and then marks the whole FaultFs dead: every subsequent operation
// fails, simulating a power cut. The underlying files keep whatever
// bytes reached the base Env — recovery tests reopen them through a
// fresh (non-faulting) Env.
//
// Fault sites fire ONLY in this decorator, never in the production
// PosixEnv, so the hot path stays clean and recovery_test's
// discovered-site closure is unaffected; tests/env_fault_test.cc does
// its own discovery + registry-closure pass over the "env:" family.
//
// The registry entry is the prefix {"env:", true} in
// src/common/fault_sites.h.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "common/env.h"
#include "common/fault_injection.h"
#include "common/thread_annotations.h"

namespace semitri::common {

enum class FaultKind {
  kEio,
  kEnospc,
  kShortWrite,
  kFsyncFail,
  kTornRename,
};

class FaultFs final : public Env {
 public:
  explicit FaultFs(Env* base) : base_(ResolveEnv(base)) {}

  // Chooses what a kFail at `site` ("env:append", ...) looks like; the
  // default for unconfigured sites is kEio.
  void SetFaultKind(const std::string& site, FaultKind kind);

  // When set, only operations whose path contains `substr` fire fault
  // sites; everything else passes straight through (lets one store in
  // a multi-store test take the faults).
  void SetPathFilter(std::string substr);

  // True after an injected kCrash: the simulated machine lost power
  // and every operation fails until the test builds a fresh Env.
  bool dead() const;

  Result<std::unique_ptr<WritableFile>> NewWritableFile(
      const std::string& path, WriteMode mode) override;
  Status ReadFileToString(const std::string& path, std::string* out) override;
  Status WriteStringToFile(const std::string& path, std::string_view data,
                           bool sync) override;
  Status RenameFile(const std::string& from, const std::string& to) override;
  Status SyncDir(const std::string& dir) override;
  Status RemoveFile(const std::string& path) override;
  Status CreateDirs(const std::string& dir) override;
  Status RemoveDirRecursive(const std::string& dir) override;
  Result<std::vector<std::string>> ListDir(const std::string& dir) override;
  bool FileExists(const std::string& path) override;
  bool IsDirectory(const std::string& path) override;
  Result<uint64_t> FileSize(const std::string& path) override;
  Status TruncateFile(const std::string& path, uint64_t size) override;

 private:
  friend class FaultWritableFile;

  // Consults the injector for `op` on `path`; returns the action to
  // apply (kNone when the path filter excludes the operation).
  FaultAction FireOp(const char* op, const std::string& path);
  FaultKind KindFor(const char* op) const;
  void MarkDead();
  [[nodiscard]] Status DeadStatus(const std::string& path) const;

  Env* const base_;
  mutable std::mutex mu_;
  bool dead_ SEMITRI_GUARDED_BY(mu_) = false;
  std::string path_filter_ SEMITRI_GUARDED_BY(mu_);
  std::map<std::string, FaultKind> kinds_ SEMITRI_GUARDED_BY(mu_);
};

}  // namespace semitri::common

#endif  // SEMITRI_COMMON_FAULT_FS_H_
