#include "store/trajectory_query.h"

#include <algorithm>

namespace semitri::store {

TrajectoryQueryEngine::TrajectoryQueryEngine(
    const SemanticTrajectoryStore* store,
    index::SpatialIndexConfig index_config)
    : store_(store),
      trajectory_index_(
          index::MakeSpatialIndex<core::TrajectoryId>(index_config)),
      stop_index_(index::MakeSpatialIndex<size_t>(index_config)) {
  for (core::TrajectoryId id : store->ListTrajectories()) {
    common::Result<core::RawTrajectory> raw = store->GetRawTrajectory(id);
    if (!raw.ok() || raw->empty()) continue;
    trajectory_index_->Insert(raw->Bounds(), id);
    common::Result<std::vector<core::Episode>> episodes =
        store->GetEpisodes(id);
    if (!episodes.ok()) continue;
    for (size_t e = 0; e < episodes->size(); ++e) {
      const core::Episode& ep = (*episodes)[e];
      if (ep.kind != core::EpisodeKind::kStop) continue;
      StopHit hit;
      hit.trajectory_id = id;
      hit.episode_index = e;
      hit.center = ep.center;
      hit.time_in = ep.time_in;
      hit.time_out = ep.time_out;
      stop_index_->Insert(ep.bounds, stops_.size());
      stops_.push_back(hit);
    }
  }
}

std::vector<core::TrajectoryId> TrajectoryQueryEngine::FindTrajectories(
    const geo::BoundingBox& window, core::Timestamp t0,
    core::Timestamp t1) const {
  std::vector<core::TrajectoryId> out;
  for (core::TrajectoryId id : trajectory_index_->Query(window)) {
    common::Result<core::RawTrajectory> raw = store_->GetRawTrajectory(id);
    if (!raw.ok()) continue;
    // Temporal overlap filter, then exact spatial refinement: at least
    // one fix inside the window within the interval.
    if (raw->EndTime() < t0 || raw->StartTime() > t1) continue;
    bool hit = false;
    for (const core::GpsPoint& p : raw->points) {
      if (p.time < t0 || p.time > t1) continue;
      if (window.Contains(p.position)) {
        hit = true;
        break;
      }
    }
    if (hit) out.push_back(id);
  }
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<StopHit> TrajectoryQueryEngine::FindStopsNear(
    const geo::Point& center, double radius) const {
  std::vector<StopHit> out;
  for (size_t index : stop_index_->QueryRadius(center, radius)) {
    const StopHit& hit = stops_[index];
    if (hit.center.DistanceTo(center) <= radius) out.push_back(hit);
  }
  std::sort(out.begin(), out.end(), [](const StopHit& a, const StopHit& b) {
    return a.time_in > b.time_in;
  });
  return out;
}

std::vector<EpisodeHit> TrajectoryQueryEngine::FindEpisodesByAnnotation(
    const std::string& key, const std::string& value,
    const std::optional<std::string>& interpretation,
    std::optional<core::Timestamp> t0,
    std::optional<core::Timestamp> t1) const {
  std::vector<EpisodeHit> out;
  for (core::TrajectoryId id : store_->ListTrajectories()) {
    for (const std::string& name : store_->ListInterpretations(id)) {
      if (interpretation.has_value() && name != *interpretation) continue;
      common::Result<core::StructuredSemanticTrajectory> layer =
          store_->GetInterpretation(id, name);
      if (!layer.ok()) continue;
      for (size_t e = 0; e < layer->episodes.size(); ++e) {
        const core::SemanticEpisode& ep = layer->episodes[e];
        if (ep.FindAnnotation(key) != value) continue;
        if (t0.has_value() && ep.time_out < *t0) continue;
        if (t1.has_value() && ep.time_in > *t1) continue;
        EpisodeHit hit;
        hit.trajectory_id = id;
        hit.interpretation = name;
        hit.episode_index = e;
        hit.episode = ep;
        out.push_back(std::move(hit));
      }
    }
  }
  return out;
}

}  // namespace semitri::store
