#include "store/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <fstream>
#include <sstream>

#include "common/fault_injection.h"
#include "common/serial.h"

namespace semitri::store {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc32

common::Status WriteAll(int fd, const char* data, size_t size) {
  size_t written = 0;
  while (written < size) {
    ssize_t n = ::write(fd, data + written, size - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      return common::Status::IoError(std::string("wal write failed: ") +
                                     std::strerror(errno));
    }
    written += static_cast<size_t>(n);
  }
  return common::Status::OK();
}

std::string Frame(WalRecordType type, std::string_view payload) {
  common::StateWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  std::string body;
  body.reserve(payload.size() + 1);
  body.push_back(static_cast<char>(type));
  body.append(payload.data(), payload.size());
  frame.PutU32(common::Crc32(body));
  std::string out = frame.Release();
  out += body;
  return out;
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

common::Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_WRONLY | O_CREAT | O_APPEND, 0644);
  if (fd < 0) {
    return common::Status::IoError("cannot open wal " + path + ": " +
                                   std::strerror(errno));
  }
  return std::unique_ptr<WalWriter>(new WalWriter(fd));
}

WalWriter::~WalWriter() {
  if (fd_ >= 0) ::close(fd_);
}

common::Status WalWriter::Append(WalRecordType type,
                                 std::string_view payload) {
  if (dead_) {
    return common::Status::IoError("wal writer dead after simulated crash");
  }
  std::string frame = Frame(type, payload);
  common::FaultAction action = SEMITRI_FAULT_FIRE("wal_append");
  if (action == common::FaultAction::kCrash) {
    // Simulated power cut mid-write: half the frame reaches the disk,
    // then the process is gone. Recovery must truncate this torn tail.
    // The partial write's own status is irrelevant — we report the crash.
    (void)WriteAll(fd_, frame.data(), frame.size() / 2);
    dead_ = true;
    return common::Status::IoError("simulated crash during wal append");
  }
  if (action == common::FaultAction::kFail) {
    return common::Status::IoError("injected wal append failure");
  }
  return WriteAll(fd_, frame.data(), frame.size());
}

common::Status WalWriter::Sync() {
  if (dead_) {
    return common::Status::IoError("wal writer dead after simulated crash");
  }
  common::FaultAction action = SEMITRI_FAULT_FIRE("wal_sync");
  if (action == common::FaultAction::kCrash) {
    dead_ = true;
    return common::Status::IoError("simulated crash during wal sync");
  }
  if (action == common::FaultAction::kFail) {
    return common::Status::IoError("injected wal sync failure");
  }
  if (::fsync(fd_) != 0) {
    return common::Status::IoError(std::string("wal fsync failed: ") +
                                   std::strerror(errno));
  }
  return common::Status::OK();
}

common::Status WalWriter::Truncate() {
  if (dead_) {
    return common::Status::IoError("wal writer dead after simulated crash");
  }
  if (::ftruncate(fd_, 0) != 0) {
    return common::Status::IoError(std::string("wal truncate failed: ") +
                                   std::strerror(errno));
  }
  if (::fsync(fd_) != 0) {
    return common::Status::IoError(std::string("wal fsync failed: ") +
                                   std::strerror(errno));
  }
  return common::Status::OK();
}

common::Result<WalReplayStats> ReplayWal(
    const std::string& path,
    const std::function<common::Status(WalRecordType, std::string_view)>&
        apply,
    bool truncate_torn_tail) {
  WalReplayStats stats;
  std::string data;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return stats;  // no log yet — empty
    std::ostringstream buffer;
    buffer << in.rdbuf();
    data = buffer.str();
  }

  size_t pos = 0;
  while (true) {
    if (data.size() - pos < kFrameHeaderBytes) break;  // torn header
    uint32_t length = ReadU32(data.data() + pos);
    uint32_t crc = ReadU32(data.data() + pos + 4);
    size_t body_size = static_cast<size_t>(length) + 1;  // type + payload
    if (data.size() - pos - kFrameHeaderBytes < body_size) break;  // torn body
    std::string_view body(data.data() + pos + kFrameHeaderBytes, body_size);
    if (common::Crc32(body) != crc) break;  // torn or corrupt frame
    WalRecordType type = static_cast<WalRecordType>(
        static_cast<uint8_t>(body.front()));
    SEMITRI_RETURN_IF_ERROR(apply(type, body.substr(1)));
    ++stats.records_applied;
    pos += kFrameHeaderBytes + body_size;
  }

  stats.torn_bytes_truncated = data.size() - pos;
  if (stats.torn_bytes_truncated > 0 && truncate_torn_tail) {
    if (::truncate(path.c_str(), static_cast<off_t>(pos)) != 0) {
      return common::Status::IoError(std::string("cannot truncate torn wal "
                                                 "tail: ") +
                                     std::strerror(errno));
    }
  }
  return stats;
}

}  // namespace semitri::store
