#include "store/wal.h"

#include "common/fault_injection.h"
#include "common/serial.h"

namespace semitri::store {

namespace {

constexpr size_t kFrameHeaderBytes = 8;  // u32 length + u32 crc32

std::string Frame(WalRecordType type, std::string_view payload) {
  common::StateWriter frame;
  frame.PutU32(static_cast<uint32_t>(payload.size()));
  std::string body;
  body.reserve(payload.size() + 1);
  body.push_back(static_cast<char>(type));
  body.append(payload.data(), payload.size());
  frame.PutU32(common::Crc32(body));
  std::string out = frame.Release();
  out += body;
  return out;
}

uint32_t ReadU32(const char* p) {
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) {
    v |= static_cast<uint32_t>(static_cast<uint8_t>(p[i])) << (8 * i);
  }
  return v;
}

}  // namespace

common::Result<std::unique_ptr<WalWriter>> WalWriter::Open(
    const std::string& path, common::Env* env) {
  auto file = common::ResolveEnv(env)->NewWritableFile(
      path, common::WriteMode::kAppend);
  if (!file.ok()) {
    return common::Status::IoError("cannot open wal " + path + ": " +
                                   file.status().message());
  }
  return std::unique_ptr<WalWriter>(new WalWriter(std::move(*file)));
}

common::Status WalWriter::Poison(common::Status st) {
  poisoned_ = true;
  poison_cause_ = st;
  return st;
}

common::Status WalWriter::Append(WalRecordType type,
                                 std::string_view payload) {
  if (dead_) {
    return common::Status::IoError("wal writer dead after simulated crash");
  }
  if (poisoned_) {
    return common::Status::IoError(
        "wal writer poisoned by earlier failure, rotate the log (cause: " +
        poison_cause_.ToString() + ")");
  }
  std::string frame = Frame(type, payload);
  common::FaultAction action = SEMITRI_FAULT_FIRE("wal_append");
  if (action == common::FaultAction::kCrash) {
    // Simulated power cut mid-write: half the frame reaches the disk,
    // then the process is gone. Recovery must truncate this torn tail.
    // The partial write's own status is irrelevant — we report the crash.
    (void)file_->Append(
        std::string_view(frame.data(), frame.size() / 2));
    dead_ = true;
    poisoned_ = true;
    return common::Status::IoError("simulated crash during wal append");
  }
  if (action == common::FaultAction::kFail) {
    return Poison(common::Status::IoError("injected wal append failure"));
  }
  common::Status st = file_->Append(frame);
  if (!st.ok()) return Poison(std::move(st));
  return st;
}

common::Status WalWriter::Sync() {
  if (dead_) {
    return common::Status::IoError("wal writer dead after simulated crash");
  }
  if (poisoned_) {
    return common::Status::IoError(
        "wal writer poisoned by earlier failure, rotate the log (cause: " +
        poison_cause_.ToString() + ")");
  }
  common::FaultAction action = SEMITRI_FAULT_FIRE("wal_sync");
  if (action == common::FaultAction::kCrash) {
    dead_ = true;
    poisoned_ = true;
    return common::Status::IoError("simulated crash during wal sync");
  }
  if (action == common::FaultAction::kFail) {
    return Poison(common::Status::IoError("injected wal sync failure"));
  }
  common::Status st = file_->Sync();
  if (!st.ok()) return Poison(std::move(st));
  return st;
}

common::Status WalWriter::Truncate() {
  if (dead_) {
    return common::Status::IoError("wal writer dead after simulated crash");
  }
  if (poisoned_) {
    return common::Status::IoError(
        "wal writer poisoned by earlier failure, rotate the log (cause: " +
        poison_cause_.ToString() + ")");
  }
  common::Status st = file_->Truncate(0);
  if (!st.ok()) return Poison(std::move(st));
  return st;
}

common::Result<WalReplayStats> ReplayWal(
    const std::string& path,
    const std::function<common::Status(WalRecordType, std::string_view)>&
        apply,
    bool truncate_torn_tail, common::Env* env) {
  common::Env* e = common::ResolveEnv(env);
  WalReplayStats stats;
  std::string data;
  {
    common::Status read = e->ReadFileToString(path, &data);
    if (read.code() == common::StatusCode::kNotFound) {
      return stats;  // no log yet — empty
    }
    if (!read.ok()) return read;
  }

  size_t pos = 0;
  while (true) {
    if (data.size() - pos < kFrameHeaderBytes) break;  // torn header
    uint32_t length = ReadU32(data.data() + pos);
    uint32_t crc = ReadU32(data.data() + pos + 4);
    size_t body_size = static_cast<size_t>(length) + 1;  // type + payload
    if (data.size() - pos - kFrameHeaderBytes < body_size) break;  // torn body
    std::string_view body(data.data() + pos + kFrameHeaderBytes, body_size);
    if (common::Crc32(body) != crc) break;  // torn or corrupt frame
    WalRecordType type = static_cast<WalRecordType>(
        static_cast<uint8_t>(body.front()));
    SEMITRI_RETURN_IF_ERROR(apply(type, body.substr(1)));
    ++stats.records_applied;
    pos += kFrameHeaderBytes + body_size;
  }

  stats.torn_bytes_truncated = data.size() - pos;
  if (stats.torn_bytes_truncated > 0 && truncate_torn_tail) {
    common::Status st = e->TruncateFile(path, pos);
    if (!st.ok()) {
      return common::Status::IoError("cannot truncate torn wal tail: " +
                                     st.message());
    }
  }
  return stats;
}

}  // namespace semitri::store
