#ifndef SEMITRI_STORE_SEMANTIC_TRAJECTORY_STORE_H_
#define SEMITRI_STORE_SEMANTIC_TRAJECTORY_STORE_H_

// The Semantic Trajectory Store (paper §3.3/§5.1): dedicated tables for
// GPS records, trajectories, stop/move episodes, and semantic
// annotations. The paper backs it with PostgreSQL/PostGIS; here the
// tables are in-memory columns with CSV persistence. An optional
// write-through mode appends every Put to CSV files on disk, which
// reproduces the latency profile of Fig. 17 (storing dominates
// computing).
//
// Thread-safe: every table access serializes on an internal mutex, so
// the "store writes are serial" contract is enforced by the store itself
// (and, on Clang builds, by -Wthread-safety over the annotations below)
// rather than by caller discipline.

#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/types.h"

namespace semitri::store {

struct StoreConfig {
  // When nonempty, every Put* call appends to CSV files under this
  // directory (created on demand) in addition to the in-memory tables.
  std::string write_through_dir;
};

class SemanticTrajectoryStore {
 public:
  explicit SemanticTrajectoryStore(StoreConfig config = {});

  // --- writes ---------------------------------------------------------

  // Stores a raw trajectory (GPS-record and trajectory tables).
  // Overwrites an existing trajectory with the same id.
  common::Status PutRawTrajectory(const core::RawTrajectory& trajectory)
      SEMITRI_EXCLUDES(mutex_);

  // Stores the stop/move segmentation of a trajectory.
  common::Status PutEpisodes(core::TrajectoryId id,
                             const std::vector<core::Episode>& episodes)
      SEMITRI_EXCLUDES(mutex_);

  // Stores one layer's interpretation (keyed by its `interpretation`
  // name: "region", "line", "point").
  common::Status PutInterpretation(
      const core::StructuredSemanticTrajectory& trajectory)
      SEMITRI_EXCLUDES(mutex_);

  // --- reads ----------------------------------------------------------

  common::Result<core::RawTrajectory> GetRawTrajectory(
      core::TrajectoryId id) const SEMITRI_EXCLUDES(mutex_);
  common::Result<std::vector<core::Episode>> GetEpisodes(
      core::TrajectoryId id) const SEMITRI_EXCLUDES(mutex_);
  common::Result<core::StructuredSemanticTrajectory> GetInterpretation(
      core::TrajectoryId id, const std::string& interpretation) const
      SEMITRI_EXCLUDES(mutex_);

  std::vector<core::TrajectoryId> ListTrajectories() const
      SEMITRI_EXCLUDES(mutex_);

  // Interpretation names stored for a trajectory ("region", "line", ...).
  std::vector<std::string> ListInterpretations(core::TrajectoryId id) const
      SEMITRI_EXCLUDES(mutex_);

  // Element-wise equality of the in-memory tables (raw trajectories,
  // episodes, interpretations) of two stores. This is how the
  // streaming/offline equivalence contract is checked: a store fed by
  // stream::SessionManager must ContentEquals one fed by the offline
  // pipeline. Locks both stores (in address order; analysis suppressed
  // because the two-instance locking order is inexpressible).
  bool ContentEquals(const SemanticTrajectoryStore& other) const
      SEMITRI_NO_THREAD_SAFETY_ANALYSIS;

  // --- stats ----------------------------------------------------------

  size_t num_trajectories() const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return raw_.size();
  }
  size_t num_gps_records() const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return gps_record_count_;
  }
  size_t num_episodes() const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return episode_count_;
  }
  size_t num_semantic_episodes() const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return semantic_episode_count_;
  }

  // --- persistence ----------------------------------------------------

  // Writes all tables as CSV files (gps.csv, episodes.csv,
  // semantic_episodes.csv) under `dir`.
  common::Status SaveCsv(const std::string& dir) const
      SEMITRI_EXCLUDES(mutex_);

  // Loads tables previously written by SaveCsv, replacing content.
  common::Status LoadCsv(const std::string& dir) SEMITRI_EXCLUDES(mutex_);

 private:
  common::Status AppendWriteThrough(const std::string& file,
                                    const std::string& header,
                                    const std::vector<std::string>& rows)
      SEMITRI_REQUIRES(mutex_);

  StoreConfig config_;
  mutable std::mutex mutex_;
  std::map<core::TrajectoryId, core::RawTrajectory> raw_
      SEMITRI_GUARDED_BY(mutex_);
  std::map<core::TrajectoryId, std::vector<core::Episode>> episodes_
      SEMITRI_GUARDED_BY(mutex_);
  // (trajectory, interpretation) -> structured semantic trajectory
  std::map<std::pair<core::TrajectoryId, std::string>,
           core::StructuredSemanticTrajectory>
      interpretations_ SEMITRI_GUARDED_BY(mutex_);
  size_t gps_record_count_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t episode_count_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t semantic_episode_count_ SEMITRI_GUARDED_BY(mutex_) = 0;
};

}  // namespace semitri::store

#endif  // SEMITRI_STORE_SEMANTIC_TRAJECTORY_STORE_H_
