#ifndef SEMITRI_STORE_SEMANTIC_TRAJECTORY_STORE_H_
#define SEMITRI_STORE_SEMANTIC_TRAJECTORY_STORE_H_

// The Semantic Trajectory Store (paper §3.3/§5.1): dedicated tables for
// GPS records, trajectories, stop/move episodes, and semantic
// annotations. The paper backs it with PostgreSQL/PostGIS; here the
// tables are in-memory columns with CSV persistence. An optional
// write-through mode appends every Put to CSV files on disk, which
// reproduces the latency profile of Fig. 17 (storing dominates
// computing).

#include <map>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/types.h"

namespace semitri::store {

struct StoreConfig {
  // When nonempty, every Put* call appends to CSV files under this
  // directory (created on demand) in addition to the in-memory tables.
  std::string write_through_dir;
};

class SemanticTrajectoryStore {
 public:
  explicit SemanticTrajectoryStore(StoreConfig config = {});

  // --- writes ---------------------------------------------------------

  // Stores a raw trajectory (GPS-record and trajectory tables).
  // Overwrites an existing trajectory with the same id.
  common::Status PutRawTrajectory(const core::RawTrajectory& trajectory);

  // Stores the stop/move segmentation of a trajectory.
  common::Status PutEpisodes(core::TrajectoryId id,
                             const std::vector<core::Episode>& episodes);

  // Stores one layer's interpretation (keyed by its `interpretation`
  // name: "region", "line", "point").
  common::Status PutInterpretation(
      const core::StructuredSemanticTrajectory& trajectory);

  // --- reads ----------------------------------------------------------

  common::Result<core::RawTrajectory> GetRawTrajectory(
      core::TrajectoryId id) const;
  common::Result<std::vector<core::Episode>> GetEpisodes(
      core::TrajectoryId id) const;
  common::Result<core::StructuredSemanticTrajectory> GetInterpretation(
      core::TrajectoryId id, const std::string& interpretation) const;

  std::vector<core::TrajectoryId> ListTrajectories() const;

  // Interpretation names stored for a trajectory ("region", "line", ...).
  std::vector<std::string> ListInterpretations(core::TrajectoryId id) const;

  // --- stats ----------------------------------------------------------

  size_t num_trajectories() const { return raw_.size(); }
  size_t num_gps_records() const { return gps_record_count_; }
  size_t num_episodes() const { return episode_count_; }
  size_t num_semantic_episodes() const { return semantic_episode_count_; }

  // --- persistence ----------------------------------------------------

  // Writes all tables as CSV files (gps.csv, episodes.csv,
  // semantic_episodes.csv) under `dir`.
  common::Status SaveCsv(const std::string& dir) const;

  // Loads tables previously written by SaveCsv, replacing content.
  common::Status LoadCsv(const std::string& dir);

 private:
  common::Status AppendWriteThrough(const std::string& file,
                                    const std::string& header,
                                    const std::vector<std::string>& rows);

  StoreConfig config_;
  std::map<core::TrajectoryId, core::RawTrajectory> raw_;
  std::map<core::TrajectoryId, std::vector<core::Episode>> episodes_;
  // (trajectory, interpretation) -> structured semantic trajectory
  std::map<std::pair<core::TrajectoryId, std::string>,
           core::StructuredSemanticTrajectory>
      interpretations_;
  size_t gps_record_count_ = 0;
  size_t episode_count_ = 0;
  size_t semantic_episode_count_ = 0;
};

}  // namespace semitri::store

#endif  // SEMITRI_STORE_SEMANTIC_TRAJECTORY_STORE_H_
