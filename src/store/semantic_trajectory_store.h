#ifndef SEMITRI_STORE_SEMANTIC_TRAJECTORY_STORE_H_
#define SEMITRI_STORE_SEMANTIC_TRAJECTORY_STORE_H_

// The Semantic Trajectory Store (paper §3.3/§5.1): dedicated tables for
// GPS records, trajectories, stop/move episodes, and semantic
// annotations. The paper backs it with PostgreSQL/PostGIS; here the
// tables are in-memory columns with CSV persistence. An optional
// write-through mode appends every Put to CSV files on disk, which
// reproduces the latency profile of Fig. 17 (storing dominates
// computing).
//
// Crash-safe durable mode: with StoreConfig::durable_dir set, every Put
// is framed into a write-ahead log (store/wal.h) *before* the in-memory
// tables change, Sync() makes the log durable, and Checkpoint()
// atomically compacts it into full-precision CSV tables (a LevelDB-style
// CURRENT pointer flips generations; the log is then emptied). Recover()
// re-opens a directory after a crash: it loads the current checkpoint,
// replays the log, truncates a torn tail, and leaves the in-memory
// tables bit-identical (ContentEquals) to the pre-crash state.
//
// Thread-safe: every table access serializes on an internal mutex, so
// the "store writes are serial" contract is enforced by the store itself
// (and, on Clang builds, by -Wthread-safety over the annotations below)
// rather than by caller discipline.

#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/types.h"
#include "store/wal.h"

namespace semitri::store {

struct StoreConfig {
  // Filesystem to run all file I/O through; null means the real
  // filesystem (common::Env::Default()). Tests inject a
  // common::FaultFs here to exercise ENOSPC/EIO/fsync-failure paths.
  common::Env* env = nullptr;

  // When nonempty, every Put* call appends to CSV files under this
  // directory (created on demand) in addition to the in-memory tables.
  // Appends are single buffered write() calls, so a crash leaves at
  // most one torn final line (which LoadCsv tolerates and counts) —
  // but a torn multi-row batch is undetectable in this mode; use
  // `durable_dir` when crash atomicity matters.
  std::string write_through_dir;

  // When nonempty, enables the crash-safe durable mode described above:
  // Put* calls append to `<durable_dir>/wal.log` before touching the
  // in-memory tables. Re-opening an existing directory must go through
  // Recover() (which truncates a torn tail before appending resumes).
  std::string durable_dir;

  // fsync the WAL after every Put (slow but loses nothing). When false,
  // durability is bounded by explicit Sync()/Checkpoint() calls; a
  // crash between syncs can lose OS-buffered records but never tears
  // the log irrecoverably.
  bool sync_every_put = false;
};

class SemanticTrajectoryStore {
 public:
  explicit SemanticTrajectoryStore(StoreConfig config = {});

  // --- writes ---------------------------------------------------------

  // Stores a raw trajectory (GPS-record and trajectory tables).
  // Overwrites an existing trajectory with the same id.
  [[nodiscard]] common::Status PutRawTrajectory(const core::RawTrajectory& trajectory)
      SEMITRI_EXCLUDES(mutex_);

  // Stores the stop/move segmentation of a trajectory.
  [[nodiscard]] common::Status PutEpisodes(core::TrajectoryId id,
                             const std::vector<core::Episode>& episodes)
      SEMITRI_EXCLUDES(mutex_);

  // Stores one layer's interpretation (keyed by its `interpretation`
  // name: "region", "line", "point").
  [[nodiscard]] common::Status PutInterpretation(
      const core::StructuredSemanticTrajectory& trajectory)
      SEMITRI_EXCLUDES(mutex_);

  // --- reads ----------------------------------------------------------

  [[nodiscard]] common::Result<core::RawTrajectory> GetRawTrajectory(
      core::TrajectoryId id) const SEMITRI_EXCLUDES(mutex_);
  [[nodiscard]] common::Result<std::vector<core::Episode>> GetEpisodes(
      core::TrajectoryId id) const SEMITRI_EXCLUDES(mutex_);
  [[nodiscard]] common::Result<core::StructuredSemanticTrajectory> GetInterpretation(
      core::TrajectoryId id, const std::string& interpretation) const
      SEMITRI_EXCLUDES(mutex_);

  std::vector<core::TrajectoryId> ListTrajectories() const
      SEMITRI_EXCLUDES(mutex_);

  // Interpretation names stored for a trajectory ("region", "line", ...).
  std::vector<std::string> ListInterpretations(core::TrajectoryId id) const
      SEMITRI_EXCLUDES(mutex_);

  // Element-wise equality of the in-memory tables (raw trajectories,
  // episodes, interpretations) of two stores. This is how the
  // streaming/offline equivalence contract is checked: a store fed by
  // stream::SessionManager must ContentEquals one fed by the offline
  // pipeline — and a store rebuilt by Recover() must ContentEquals the
  // pre-crash one. Locks both stores (in address order; analysis
  // suppressed because the two-instance locking order is inexpressible).
  bool ContentEquals(const SemanticTrajectoryStore& other) const
      SEMITRI_NO_THREAD_SAFETY_ANALYSIS;

  // --- stats ----------------------------------------------------------

  size_t num_trajectories() const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return raw_.size();
  }
  size_t num_gps_records() const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return gps_record_count_;
  }
  size_t num_episodes() const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return episode_count_;
  }
  size_t num_semantic_episodes() const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return semantic_episode_count_;
  }

  // Torn final CSV rows tolerated (and dropped) by the last LoadCsv —
  // the residue of a crash mid-append in write-through mode.
  size_t torn_rows_tolerated() const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return torn_rows_tolerated_;
  }

  // --- read-only degraded mode ----------------------------------------
  //
  // A persistent write fault (WAL append/sync failure, write-through
  // append failure) flips the store into read-only degraded mode:
  // reads and already-durable data stay served, every subsequent
  // write-path call (Put*, Sync, Checkpoint, SealWalSegment) returns
  // Unavailable, and the triggering fault is kept for HealthSnapshot
  // to surface. This is the no-durability-lies stance: once a write
  // fault happened, accepting more writes would acknowledge data the
  // disk may never hold.

  // True when the store has entered read-only degraded mode.
  bool storage_degraded() const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return degraded_;
  }

  // Human-readable cause of the degradation ("" when healthy).
  std::string degraded_reason() const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return degraded_reason_;
  }

  // Attempts to leave degraded mode: discards the poisoned WAL writer,
  // truncates any torn tail the failed write left (so appends resume
  // on a frame boundary), reopens a fresh writer and probes it with an
  // fsync. Returns OK and clears the degraded flag only when the probe
  // succeeds; a still-bad disk keeps the store degraded. A failed-sync
  // record may already be durable in the log even though its Put
  // returned an error — recovery replays it (at-least-once for
  // unacknowledged writes; see DESIGN.md "Failure model & durability").
  [[nodiscard]] common::Status ExitDegradedMode() SEMITRI_EXCLUDES(mutex_);

  // --- persistence ----------------------------------------------------

  // Writes all tables as CSV files (gps.csv, episodes.csv,
  // semantic_episodes.csv) under `dir`. Rows carry round-trip (%.17g)
  // float precision, so LoadCsv restores values bit-identically.
  [[nodiscard]] common::Status SaveCsv(const std::string& dir) const
      SEMITRI_EXCLUDES(mutex_);

  // Loads tables previously written by SaveCsv, replacing content. A
  // torn final record (unparseable last line with no trailing newline —
  // a crash mid-append) is dropped and counted in torn_rows_tolerated()
  // instead of failing the whole load; any other malformed row is still
  // Corruption.
  [[nodiscard]] common::Status LoadCsv(const std::string& dir) SEMITRI_EXCLUDES(mutex_);

  // --- durability (durable_dir mode) ----------------------------------

  struct RecoveryStats {
    bool checkpoint_loaded = false;
    size_t wal_records_replayed = 0;
    size_t wal_torn_bytes_truncated = 0;
    // Sealed `wal-<seq>.log` segments replayed before the active log.
    size_t wal_segments_replayed = 0;
  };

  // Rebuilds the in-memory tables from `dir` (checkpoint + WAL replay,
  // truncating a torn tail), replacing current content, and switches
  // this store into durable mode on `dir` so subsequent Puts append
  // where the pre-crash process left off.
  [[nodiscard]] common::Result<RecoveryStats> Recover(const std::string& dir)
      SEMITRI_EXCLUDES(mutex_);

  // fsyncs the WAL (no-op outside durable mode).
  [[nodiscard]] common::Status Sync() SEMITRI_EXCLUDES(mutex_);

  // Atomically compacts the WAL into a fresh full-precision CSV
  // checkpoint generation: tables are written to a new
  // `checkpoint-<n>/` directory, the CURRENT pointer file is flipped
  // via rename, the WAL is emptied, and stale generations are removed.
  // A crash at any point leaves either the old or the new generation
  // fully intact. No-op outside durable mode. Sealed WAL segments are
  // garbage-collected along with stale generations (the new checkpoint
  // holds everything they held) — callers shipping segments to a
  // standby must ship before checkpointing or accept the lag.
  [[nodiscard]] common::Status Checkpoint() SEMITRI_EXCLUDES(mutex_);

  // Seals the active WAL into an immutable `wal-<seq>.log` segment
  // under durable_dir: fsync, close, rename — the segment is complete
  // and torn-tail-free once visible under its sealed name — then the
  // next Put reopens a fresh empty active log. Returns the sealed
  // segment's filename, or "" when there was nothing to seal (empty /
  // absent log, or not in durable mode). Sealed segments are what
  // shard::WalShipper copies to a standby directory; Recover() replays
  // them in ascending sequence order before the active log.
  [[nodiscard]] common::Result<std::string> SealWalSegment()
      SEMITRI_EXCLUDES(mutex_);

  // Sealed (`wal-<seq>.log`) segment filenames under `dir`, ascending
  // by sequence number. Static so a shipper can inspect a standby
  // directory no store has open. Null `env` means the real filesystem.
  static std::vector<std::string> ListSealedWalSegments(
      const std::string& dir, common::Env* env = nullptr);

 private:
  [[nodiscard]] common::Status AppendWriteThrough(const std::string& file,
                                    const std::string& header,
                                    const std::vector<std::string>& rows)
      SEMITRI_REQUIRES(mutex_);
  // Lazily creates durable_dir and the WAL writer; OK outside durable
  // mode.
  [[nodiscard]] common::Status EnsureWal() SEMITRI_REQUIRES(mutex_);
  // Frames one record into the WAL (honoring sync_every_put); OK
  // outside durable mode.
  [[nodiscard]] common::Status LogToWal(WalRecordType type, const std::string& payload)
      SEMITRI_REQUIRES(mutex_);

  // In-memory table mutations shared by Put* and WAL replay.
  void ApplyRawTrajectory(const core::RawTrajectory& trajectory)
      SEMITRI_REQUIRES(mutex_);
  void ApplyEpisodes(core::TrajectoryId id,
                     const std::vector<core::Episode>& episodes)
      SEMITRI_REQUIRES(mutex_);
  void ApplyInterpretation(
      const core::StructuredSemanticTrajectory& trajectory)
      SEMITRI_REQUIRES(mutex_);
  // Called under mutex_ — directly from Recover and through the replay
  // lambda, which the analysis cannot see through; suppressed instead
  // of annotated.
  [[nodiscard]] common::Status ApplyWalRecord(WalRecordType type,
                                std::string_view payload)
      SEMITRI_NO_THREAD_SAFETY_ANALYSIS;

  [[nodiscard]] common::Status SaveCsvLocked(const std::string& dir) const
      SEMITRI_REQUIRES(mutex_);
  [[nodiscard]] common::Status LoadCsvLocked(const std::string& dir)
      SEMITRI_REQUIRES(mutex_);
  void ClearLocked() SEMITRI_REQUIRES(mutex_);

  // Flips the store into read-only degraded mode (recording `cause`)
  // and returns `cause` so write paths can `return EnterDegraded...`.
  [[nodiscard]] common::Status EnterDegradedLocked(common::Status cause)
      SEMITRI_REQUIRES(mutex_);

  StoreConfig config_ SEMITRI_GUARDED_BY(mutex_);
  common::Env* const env_;
  mutable std::mutex mutex_;
  bool degraded_ SEMITRI_GUARDED_BY(mutex_) = false;
  std::string degraded_reason_ SEMITRI_GUARDED_BY(mutex_);
  std::unique_ptr<WalWriter> wal_ SEMITRI_GUARDED_BY(mutex_);
  std::map<core::TrajectoryId, core::RawTrajectory> raw_
      SEMITRI_GUARDED_BY(mutex_);
  std::map<core::TrajectoryId, std::vector<core::Episode>> episodes_
      SEMITRI_GUARDED_BY(mutex_);
  // (trajectory, interpretation) -> structured semantic trajectory
  std::map<std::pair<core::TrajectoryId, std::string>,
           core::StructuredSemanticTrajectory>
      interpretations_ SEMITRI_GUARDED_BY(mutex_);
  size_t gps_record_count_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t episode_count_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t semantic_episode_count_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t torn_rows_tolerated_ SEMITRI_GUARDED_BY(mutex_) = 0;
};

}  // namespace semitri::store

#endif  // SEMITRI_STORE_SEMANTIC_TRAJECTORY_STORE_H_
