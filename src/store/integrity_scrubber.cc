#include "store/integrity_scrubber.h"

#include <utility>

#include "common/serial.h"
#include "common/strings.h"
#include "store/semantic_trajectory_store.h"
#include "store/wal.h"

namespace semitri::store {

namespace {

constexpr char kCurrentFile[] = "CURRENT";
constexpr char kChecksumsFile[] = "checksums.csv";
constexpr char kQuarantineSuffix[] = ".quarantined";

std::string FirstLine(common::Env* env, const std::string& path) {
  std::string data;
  if (!env->ReadFileToString(path, &data).ok()) return {};
  size_t eol = data.find('\n');
  return eol == std::string::npos ? data : data.substr(0, eol);
}

}  // namespace

IntegrityScrubber::IntegrityScrubber(ScrubberConfig config)
    : config_(std::move(config)), env_(common::ResolveEnv(config_.env)) {}

common::Status IntegrityScrubber::BuildWorklist() {
  worklist_.clear();
  cursor_ = 0;

  // Sealed WAL segments, oldest first.
  for (const std::string& name :
       SemanticTrajectoryStore::ListSealedWalSegments(config_.dir, env_)) {
    WorkItem item;
    item.kind = WorkItem::Kind::kSealedSegment;
    item.path = config_.dir + "/" + name;
    if (!config_.repair_dir.empty()) {
      item.repair_path = config_.repair_dir + "/" + name;
    }
    worklist_.push_back(std::move(item));
  }

  // The current checkpoint generation, verified against the
  // checksums.csv sidecar SaveCsv wrote last. Stale generations are
  // GC fodder and not worth scrub I/O; a generation predating the
  // sidecar is unverifiable, counted, and skipped.
  std::string current = FirstLine(env_, config_.dir + "/" + kCurrentFile);
  if (!current.empty()) {
    std::string generation = config_.dir + "/" + current;
    std::string sidecar;
    common::Status read =
        env_->ReadFileToString(generation + "/" + kChecksumsFile, &sidecar);
    if (!read.ok()) {
      ++counters_.unverifiable_skipped;
    } else {
      std::vector<std::string> lines = common::Split(sidecar, '\n');
      for (size_t i = 1; i < lines.size(); ++i) {  // lines[0] is the header
        if (lines[i].empty()) continue;
        std::vector<std::string> f = common::Split(lines[i], ',');
        size_t crc = 0;
        size_t size = 0;
        if (f.size() != 3 || !common::ParseSizeT(f[1], &crc) ||
            !common::ParseSizeT(f[2], &size)) {
          // A torn or corrupt sidecar row: the file it named cannot be
          // verified this cycle.
          ++counters_.unverifiable_skipped;
          continue;
        }
        WorkItem item;
        item.kind = WorkItem::Kind::kCheckpointFile;
        item.path = generation + "/" + f[0];
        item.crc = static_cast<uint32_t>(crc);
        item.size = size;
        // Checkpoint generations are never shipped, so there is no
        // standby copy to repair from; corrupt CSVs quarantine.
        worklist_.push_back(std::move(item));
      }
    }
  }
  return common::Status::OK();
}

bool IntegrityScrubber::Verify(const WorkItem& item,
                               const std::string& path) const {
  if (item.kind == WorkItem::Kind::kSealedSegment) {
    auto scanned = ReplayWal(
        path,
        [](WalRecordType, std::string_view) { return common::Status::OK(); },
        /*truncate_torn_tail=*/false, env_);
    return scanned.ok() && scanned->torn_bytes_truncated == 0;
  }
  std::string data;
  if (!env_->ReadFileToString(path, &data).ok()) return false;
  return data.size() == item.size && common::Crc32(data) == item.crc;
}

bool IntegrityScrubber::Repair(const WorkItem& item) {
  if (item.repair_path.empty()) return false;
  if (!env_->FileExists(item.repair_path)) return false;
  // Only an intact standby copy repairs — copying a second corruption
  // over the first would launder bad data into a "freshly repaired"
  // file.
  if (!Verify(item, item.repair_path)) return false;
  std::string data;
  if (!env_->ReadFileToString(item.repair_path, &data).ok()) return false;
  std::string tmp = item.path + ".scrub-tmp";
  if (!env_->WriteStringToFile(tmp, data, /*sync=*/true).ok()) {
    (void)env_->RemoveFile(tmp);
    return false;
  }
  if (!env_->RenameFile(tmp, item.path).ok()) {
    (void)env_->RemoveFile(tmp);
    return false;
  }
  (void)env_->SyncDir(config_.dir);
  return Verify(item, item.path);
}

void IntegrityScrubber::Quarantine(const WorkItem& item) {
  // Renaming the corrupt file out of recovery's sight trades silent
  // corruption for a loud, counted gap. A failed rename leaves the
  // corrupt file for the next cycle to re-detect — still counted.
  (void)env_->RenameFile(item.path, item.path + kQuarantineSuffix);
  ++counters_.quarantined;
  last_quarantine_ = item.path;
}

void IntegrityScrubber::ScrubOne(const WorkItem& item) {
  // Checkpoint compaction legitimately deletes files the worklist
  // still names (sealed segments GC'd, generations replaced); a
  // vanished file is not corruption.
  if (!env_->FileExists(item.path)) return;
  ++counters_.files_scanned;
  if (Verify(item, item.path)) return;
  ++counters_.corrupt_detected;
  if (Repair(item)) {
    ++counters_.repaired;
    return;
  }
  Quarantine(item);
}

common::Status IntegrityScrubber::Tick() {
  if (cursor_ >= worklist_.size()) {
    SEMITRI_RETURN_IF_ERROR(BuildWorklist());
    if (worklist_.empty()) {
      ++counters_.cycles_completed;
      return common::Status::OK();
    }
  }
  size_t end = cursor_ + config_.files_per_cycle;
  if (end > worklist_.size() || config_.files_per_cycle == 0) {
    end = worklist_.size();
  }
  for (; cursor_ < end; ++cursor_) {
    ScrubOne(worklist_[cursor_]);
  }
  if (cursor_ >= worklist_.size()) ++counters_.cycles_completed;
  return common::Status::OK();
}

}  // namespace semitri::store
