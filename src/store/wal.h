#ifndef SEMITRI_STORE_WAL_H_
#define SEMITRI_STORE_WAL_H_

// Write-ahead log for the Semantic Trajectory Store's durable mode
// (paper §5.1 backs the store with PostgreSQL; a production-scale
// reimplementation needs the same crash discipline from its storage
// layer).
//
// On-disk format — a sequence of framed records:
//
//   u32 length   payload size in bytes (little-endian)
//   u32 crc32    CRC-32 of type byte + payload
//   u8  type     WalRecordType
//   ...payload   `length` bytes (common::StateWriter encoding)
//
// A crash mid-append leaves a torn final frame (short header, short
// payload, or CRC mismatch). Replay treats the first bad frame as the
// torn tail: every frame before it is applied, the tail is truncated,
// and appending resumes at the truncation point. This is the standard
// WAL recovery contract (cf. LevelDB/RocksDB log_reader): records are
// either fully applied or fully dropped, never half-parsed.
//
// Durability: Append buffers through the OS only (a plain write());
// Sync() fsyncs the descriptor. The store decides the sync policy
// (StoreConfig::sync_every_put or explicit Sync()).
//
// Poisoning: after ANY write/sync/truncate failure — real disk error
// or injected — the writer is poisoned and every later operation
// fails. A failed fsync may have dropped dirty pages the kernel will
// never retry (the PostgreSQL fsyncgate lesson), so a later Sync()
// succeeding must not be read as "the earlier appends are durable".
// The only way forward is rotation: discard the writer, truncate the
// torn tail via replay, and open a fresh one.
//
// All file I/O goes through common::Env; pass a FaultFs to inject
// ENOSPC/EIO/short-write/fsync faults (tests/env_fault_test.cc).
//
// Fault sites (active only with SEMITRI_FAULT_INJECTION=ON):
//   wal_append — kFail: append reports an error and is not written;
//                kCrash: half the frame is written, then the writer
//                goes dead (simulated power cut; leaves a torn tail).
//   wal_sync   — kFail: sync reports an error; kCrash: writer goes dead.
//
// Not thread-safe; the store serializes access under its table mutex.

#include <functional>
#include <memory>
#include <string>
#include <string_view>

#include "common/env.h"
#include "common/status.h"

namespace semitri::store {

enum class WalRecordType : uint8_t {
  kPutRawTrajectory = 1,
  kPutEpisodes = 2,
  kPutInterpretation = 3,
};

class WalWriter {
 public:
  // Opens `path` for appending (created if absent) through `env` (null
  // = the real filesystem). The caller must have truncated any torn
  // tail first (ReplayWal does) — appending after a torn frame would
  // make every subsequent record unreachable.
  [[nodiscard]] static common::Result<std::unique_ptr<WalWriter>> Open(
      const std::string& path, common::Env* env = nullptr);

  ~WalWriter() = default;
  WalWriter(const WalWriter&) = delete;
  WalWriter& operator=(const WalWriter&) = delete;

  // Appends one framed record via a single write call. Poisons the
  // writer on failure.
  [[nodiscard]] common::Status Append(WalRecordType type, std::string_view payload);

  // fsyncs everything appended so far. Poisons the writer on failure:
  // after a failed fsync the earlier appends' durability is unknown
  // and a retry succeeding would be a durability lie.
  [[nodiscard]] common::Status Sync();

  // Empties the log (checkpoint compaction) and syncs the truncation.
  // Poisons the writer on failure.
  [[nodiscard]] common::Status Truncate();

  // True after a simulated crash (injected at wal_append/wal_sync);
  // every later operation fails with IoError, like writes to a dead
  // process would.
  bool dead() const { return dead_; }

  // True after any failed append/sync/truncate; every later operation
  // fails until the caller rotates to a fresh writer.
  bool poisoned() const { return poisoned_; }

 private:
  explicit WalWriter(std::unique_ptr<common::WritableFile> file)
      : file_(std::move(file)) {}

  // Records the failure that poisoned the writer and returns `st`.
  [[nodiscard]] common::Status Poison(common::Status st);

  std::unique_ptr<common::WritableFile> file_;
  bool dead_ = false;
  bool poisoned_ = false;
  common::Status poison_cause_;
};

struct WalReplayStats {
  size_t records_applied = 0;
  // Bytes dropped from the torn tail (0 for a cleanly closed log).
  size_t torn_bytes_truncated = 0;
};

// Reads `path` frame by frame through `env` (null = the real
// filesystem), calling `apply` for each intact record in order. A
// missing file is an empty log (0 records). The first torn or corrupt
// frame ends the replay; when `truncate_torn_tail` is set the file is
// truncated to the last intact frame so a writer can safely append.
// `apply` errors abort the replay and are returned.
[[nodiscard]] common::Result<WalReplayStats> ReplayWal(
    const std::string& path,
    const std::function<common::Status(WalRecordType, std::string_view)>&
        apply,
    bool truncate_torn_tail, common::Env* env = nullptr);

}  // namespace semitri::store

#endif  // SEMITRI_STORE_WAL_H_
