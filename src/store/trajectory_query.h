#ifndef SEMITRI_STORE_TRAJECTORY_QUERY_H_
#define SEMITRI_STORE_TRAJECTORY_QUERY_H_

// Query layer over the Semantic Trajectory Store — the paper's store
// "is expected to be queried by several trajectory applications" and
// its web interface offers "user-friendly queries" over raw traces,
// episodes and semantic trajectories [31]. This engine answers:
//
//   * spatio-temporal range queries over stored trajectories,
//   * stop queries near a location,
//   * semantic queries over episode annotations ("all metro rides",
//     "all stops annotated item sale between 17:00 and 20:00").
//
// Spatial access runs through an R*-tree over per-trajectory bounds and
// a second one over stop-episode extents, both built from the store
// snapshot at construction.

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "core/types.h"
#include "index/spatial_index.h"
#include "store/semantic_trajectory_store.h"

namespace semitri::store {

// A stop hit: which trajectory, which episode index, where/when.
struct StopHit {
  core::TrajectoryId trajectory_id = 0;
  size_t episode_index = 0;
  geo::Point center;
  core::Timestamp time_in = 0.0;
  core::Timestamp time_out = 0.0;
};

// A semantic-episode hit from an annotation query.
struct EpisodeHit {
  core::TrajectoryId trajectory_id = 0;
  std::string interpretation;
  size_t episode_index = 0;
  core::SemanticEpisode episode;
};

class TrajectoryQueryEngine {
 public:
  // Snapshots the store's current content; `store` must outlive the
  // engine. Re-create the engine after bulk updates. `index_config`
  // selects the spatial-index backend for both engine indexes.
  explicit TrajectoryQueryEngine(const SemanticTrajectoryStore* store,
                                 index::SpatialIndexConfig index_config = {});

  // Trajectories whose trace intersects `window` and overlaps the time
  // interval [t0, t1] (pass infinite bounds for a purely spatial
  // query). Exact point-in-window refinement follows the index filter.
  std::vector<core::TrajectoryId> FindTrajectories(
      const geo::BoundingBox& window, core::Timestamp t0,
      core::Timestamp t1) const;

  // Stop episodes within `radius` of `center`, newest first.
  std::vector<StopHit> FindStopsNear(const geo::Point& center,
                                     double radius) const;

  // Semantic episodes whose annotation `key` equals `value`, across all
  // interpretations (or one, when `interpretation` is given), optionally
  // restricted to a time interval.
  std::vector<EpisodeHit> FindEpisodesByAnnotation(
      const std::string& key, const std::string& value,
      const std::optional<std::string>& interpretation = std::nullopt,
      std::optional<core::Timestamp> t0 = std::nullopt,
      std::optional<core::Timestamp> t1 = std::nullopt) const;

  size_t num_indexed_trajectories() const {
    return trajectory_index_->size();
  }
  size_t num_indexed_stops() const { return stop_index_->size(); }

 private:
  const SemanticTrajectoryStore* store_;
  std::unique_ptr<index::SpatialIndex<core::TrajectoryId>> trajectory_index_;
  // Value = index into stops_.
  std::unique_ptr<index::SpatialIndex<size_t>> stop_index_;
  std::vector<StopHit> stops_;
};

}  // namespace semitri::store

#endif  // SEMITRI_STORE_TRAJECTORY_QUERY_H_
