#ifndef SEMITRI_STORE_INTEGRITY_SCRUBBER_H_
#define SEMITRI_STORE_INTEGRITY_SCRUBBER_H_

// Background integrity scrubbing for a store's durable directory.
//
// Crash recovery only proves the files it happens to read; bit rot in
// a cold checkpoint generation or a sealed WAL segment stays invisible
// until the next Recover() — which is exactly when repair options have
// run out. The scrubber walks the durable directory incrementally,
// a few files per Tick(), re-verifying:
//
//  - sealed WAL segments (wal-<seq>.log) by replaying their CRC
//    frames with a no-op apply — a sealed segment is a cleanly closed
//    log, so any torn or CRC-failing frame means the file is corrupt;
//  - the current checkpoint generation's CSVs against the
//    checksums.csv sidecar SaveCsv writes last (file, crc32, size) —
//    a generation without the sidecar (written before it existed)
//    is counted unverifiable and skipped, never guessed at.
//
// A corrupt file is repaired in place when `repair_dir` (the shard's
// standby, holding shipped copies) has an intact copy: atomic
// write-to-tmp + fsync + rename, then re-verified. Without a usable
// copy the file is renamed to `<name>.quarantined` — recovery stops
// seeing it, the loss becomes loud (counters + ShardHealth
// storage_fault) instead of a CRC surprise at the next failover.
//
// One Tick scrubs up to `files_per_cycle` files; when the worklist is
// exhausted the cycle counter advances and the next Tick starts a
// fresh walk, so new segments and generations are picked up. Driven by
// ShardRuntime::ScrubTick() from the cluster's Tick loop.
//
// Not internally synchronized; the owner serializes Tick() with
// Checkpoint()/CompactStore() (both can legitimately delete files the
// worklist still names — a vanished file is skipped, not an error).

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"

namespace semitri::store {

struct ScrubberConfig {
  // Durable directory to scrub (checkpoint generations + sealed WAL).
  std::string dir;
  // Standby directory holding shipped copies to repair from; "" means
  // no repair source (corrupt files can only be quarantined).
  std::string repair_dir;
  // Files verified per Tick(); bounds the scrubber's I/O burst.
  size_t files_per_cycle = 4;
  // Null = the real filesystem.
  common::Env* env = nullptr;
};

class IntegrityScrubber {
 public:
  explicit IntegrityScrubber(ScrubberConfig config);

  struct Counters {
    size_t files_scanned = 0;
    size_t corrupt_detected = 0;
    size_t repaired = 0;
    size_t quarantined = 0;
    // Checkpoint files in a generation without checksums.csv.
    size_t unverifiable_skipped = 0;
    size_t cycles_completed = 0;
  };

  // Scrubs up to files_per_cycle files of the current walk. Corruption
  // is not an error — it is detected, repaired or quarantined, and
  // counted; only I/O trouble enumerating the directory fails a Tick.
  [[nodiscard]] common::Status Tick();

  const Counters& counters() const { return counters_; }

  // Most recent file quarantined without repair ("" when every
  // detection was repaired) — the string ShardHealth::storage_fault
  // surfaces.
  const std::string& last_quarantine() const { return last_quarantine_; }

 private:
  struct WorkItem {
    enum class Kind { kSealedSegment, kCheckpointFile };
    Kind kind = Kind::kSealedSegment;
    std::string path;         // file under scrub
    std::string repair_path;  // standby copy ("" when none can exist)
    uint32_t crc = 0;         // kCheckpointFile: expected CRC-32
    uint64_t size = 0;        // kCheckpointFile: expected byte size
  };

  // Enumerates the directory into `worklist_` for a fresh cycle.
  [[nodiscard]] common::Status BuildWorklist();
  void ScrubOne(const WorkItem& item);
  bool Verify(const WorkItem& item, const std::string& path) const;
  // Atomic copy of item.repair_path over item.path; true on success
  // with the repaired file re-verified.
  bool Repair(const WorkItem& item);
  void Quarantine(const WorkItem& item);

  const ScrubberConfig config_;
  common::Env* const env_;
  Counters counters_;
  std::string last_quarantine_;
  std::vector<WorkItem> worklist_;
  size_t cursor_ = 0;
};

}  // namespace semitri::store

#endif  // SEMITRI_STORE_INTEGRITY_SCRUBBER_H_
