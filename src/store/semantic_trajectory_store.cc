#include "store/semantic_trajectory_store.h"

#include <cstdint>
#include <filesystem>
#include <fstream>

#include "common/strings.h"

namespace semitri::store {

namespace {

namespace fs = std::filesystem;

std::string GpsRow(const core::RawTrajectory& t, const core::GpsPoint& p) {
  return common::StrFormat("%lld,%lld,%.6f,%.6f,%.3f",
                           static_cast<long long>(t.object_id),
                           static_cast<long long>(t.id), p.position.x,
                           p.position.y, p.time);
}

std::string EpisodeRow(core::TrajectoryId id, size_t index,
                       const core::Episode& e) {
  return common::StrFormat(
      "%lld,%zu,%s,%zu,%zu,%.3f,%.3f,%.6f,%.6f,%.6f,%.6f,%.6f,%.6f",
      static_cast<long long>(id), index, core::EpisodeKindName(e.kind),
      e.begin, e.end, e.time_in, e.time_out, e.center.x, e.center.y,
      e.bounds.min.x, e.bounds.min.y, e.bounds.max.x, e.bounds.max.y);
}

std::string AnnotationsEncoded(const core::SemanticEpisode& ep) {
  std::vector<std::string> parts;
  parts.reserve(ep.annotations.size());
  for (const core::Annotation& a : ep.annotations) {
    parts.push_back(a.key + "=" + a.value);
  }
  return common::Join(parts, ";");
}

std::string SemanticEpisodeRow(const core::StructuredSemanticTrajectory& t,
                               size_t index,
                               const core::SemanticEpisode& ep) {
  return common::StrFormat(
      "%lld,%lld,%s,%zu,%s,%s,%lld,%.3f,%.3f,%s",
      static_cast<long long>(t.object_id),
      static_cast<long long>(t.trajectory_id), t.interpretation.c_str(),
      index, core::EpisodeKindName(ep.kind),
      core::PlaceKindName(ep.place.kind),
      static_cast<long long>(ep.place.id), ep.time_in, ep.time_out,
      common::CsvEscape(AnnotationsEncoded(ep)).c_str());
}

constexpr char kGpsHeader[] = "object_id,trajectory_id,x,y,t";
constexpr char kEpisodeHeader[] =
    "trajectory_id,index,kind,begin,end,time_in,time_out,center_x,center_y,"
    "min_x,min_y,max_x,max_y";
constexpr char kSemanticHeader[] =
    "object_id,trajectory_id,interpretation,index,kind,place_kind,place_id,"
    "time_in,time_out,annotations";

common::Status WriteLines(const std::string& path, const std::string& header,
                          const std::vector<std::string>& rows,
                          bool append) {
  std::ofstream out(path, append ? std::ios::app : std::ios::trunc);
  if (!out) {
    return common::Status::IoError("cannot open " + path);
  }
  if (!append || fs::file_size(path) == 0) out << header << "\n";
  for (const std::string& row : rows) out << row << "\n";
  out.flush();
  if (!out) {
    return common::Status::IoError("write failed for " + path);
  }
  return common::Status::OK();
}

// Field accessors for LoadCsv: untrusted CSV must produce Corruption
// statuses, never exceptions or UB (strtox helpers throw; the Parse*
// helpers do not).
common::Status BadRow(const char* file, const std::string& line) {
  return common::Status::Corruption(std::string("bad ") + file +
                                    " row: " + line);
}

bool ParseField(const std::string& field, double* out) {
  return common::ParseDouble(field, out);
}
bool ParseField(const std::string& field, int64_t* out) {
  return common::ParseInt64(field, out);
}
bool ParseField(const std::string& field, size_t* out) {
  return common::ParseSizeT(field, out);
}

}  // namespace

SemanticTrajectoryStore::SemanticTrajectoryStore(StoreConfig config)
    : config_(std::move(config)) {}

common::Status SemanticTrajectoryStore::AppendWriteThrough(
    const std::string& file, const std::string& header,
    const std::vector<std::string>& rows) {
  if (config_.write_through_dir.empty()) return common::Status::OK();
  std::error_code ec;
  fs::create_directories(config_.write_through_dir, ec);
  if (ec) {
    return common::Status::IoError("cannot create " +
                                   config_.write_through_dir);
  }
  std::string path = config_.write_through_dir + "/" + file;
  if (!fs::exists(path)) {
    std::ofstream touch(path);
  }
  return WriteLines(path, header, rows, /*append=*/true);
}

common::Status SemanticTrajectoryStore::PutRawTrajectory(
    const core::RawTrajectory& trajectory) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = raw_.find(trajectory.id);
  if (it != raw_.end()) {
    gps_record_count_ -= it->second.points.size();
  }
  gps_record_count_ += trajectory.points.size();
  raw_[trajectory.id] = trajectory;
  std::vector<std::string> rows;
  rows.reserve(trajectory.points.size());
  for (const core::GpsPoint& p : trajectory.points) {
    rows.push_back(GpsRow(trajectory, p));
  }
  return AppendWriteThrough("gps.csv", kGpsHeader, rows);
}

common::Status SemanticTrajectoryStore::PutEpisodes(
    core::TrajectoryId id, const std::vector<core::Episode>& episodes) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = episodes_.find(id);
  if (it != episodes_.end()) episode_count_ -= it->second.size();
  episode_count_ += episodes.size();
  episodes_[id] = episodes;
  std::vector<std::string> rows;
  rows.reserve(episodes.size());
  for (size_t i = 0; i < episodes.size(); ++i) {
    rows.push_back(EpisodeRow(id, i, episodes[i]));
  }
  return AppendWriteThrough("episodes.csv", kEpisodeHeader, rows);
}

common::Status SemanticTrajectoryStore::PutInterpretation(
    const core::StructuredSemanticTrajectory& trajectory) {
  if (trajectory.interpretation.empty()) {
    return common::Status::InvalidArgument(
        "interpretation name must be set");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  auto key = std::make_pair(trajectory.trajectory_id,
                            trajectory.interpretation);
  auto it = interpretations_.find(key);
  if (it != interpretations_.end()) {
    semantic_episode_count_ -= it->second.episodes.size();
  }
  semantic_episode_count_ += trajectory.episodes.size();
  interpretations_[key] = trajectory;
  std::vector<std::string> rows;
  rows.reserve(trajectory.episodes.size());
  for (size_t i = 0; i < trajectory.episodes.size(); ++i) {
    rows.push_back(SemanticEpisodeRow(trajectory, i, trajectory.episodes[i]));
  }
  return AppendWriteThrough("semantic_episodes.csv", kSemanticHeader, rows);
}

bool SemanticTrajectoryStore::ContentEquals(
    const SemanticTrajectoryStore& other) const {
  if (this == &other) return true;
  // Lock both stores in address order so concurrent cross-comparisons
  // cannot deadlock.
  const SemanticTrajectoryStore* first = this < &other ? this : &other;
  const SemanticTrajectoryStore* second = this < &other ? &other : this;
  std::lock_guard<std::mutex> lock_first(first->mutex_);
  std::lock_guard<std::mutex> lock_second(second->mutex_);
  return raw_ == other.raw_ && episodes_ == other.episodes_ &&
         interpretations_ == other.interpretations_;
}

common::Result<core::RawTrajectory> SemanticTrajectoryStore::GetRawTrajectory(
    core::TrajectoryId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = raw_.find(id);
  if (it == raw_.end()) {
    return common::Status::NotFound(
        common::StrFormat("trajectory %lld", static_cast<long long>(id)));
  }
  return it->second;
}

common::Result<std::vector<core::Episode>>
SemanticTrajectoryStore::GetEpisodes(core::TrajectoryId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = episodes_.find(id);
  if (it == episodes_.end()) {
    return common::Status::NotFound(common::StrFormat(
        "episodes of trajectory %lld", static_cast<long long>(id)));
  }
  return it->second;
}

common::Result<core::StructuredSemanticTrajectory>
SemanticTrajectoryStore::GetInterpretation(
    core::TrajectoryId id, const std::string& interpretation) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = interpretations_.find(std::make_pair(id, interpretation));
  if (it == interpretations_.end()) {
    return common::Status::NotFound(common::StrFormat(
        "interpretation '%s' of trajectory %lld", interpretation.c_str(),
        static_cast<long long>(id)));
  }
  return it->second;
}

std::vector<core::TrajectoryId> SemanticTrajectoryStore::ListTrajectories()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<core::TrajectoryId> out;
  out.reserve(raw_.size());
  for (const auto& [id, t] : raw_) out.push_back(id);
  return out;
}

std::vector<std::string> SemanticTrajectoryStore::ListInterpretations(
    core::TrajectoryId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (auto it = interpretations_.lower_bound(std::make_pair(id, std::string()));
       it != interpretations_.end() && it->first.first == id; ++it) {
    out.push_back(it->first.second);
  }
  return out;
}

common::Status SemanticTrajectoryStore::SaveCsv(const std::string& dir) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) return common::Status::IoError("cannot create " + dir);

  std::vector<std::string> gps_rows;
  for (const auto& [id, t] : raw_) {
    for (const core::GpsPoint& p : t.points) gps_rows.push_back(GpsRow(t, p));
  }
  SEMITRI_RETURN_IF_ERROR(
      WriteLines(dir + "/gps.csv", kGpsHeader, gps_rows, false));

  std::vector<std::string> episode_rows;
  for (const auto& [id, eps] : episodes_) {
    for (size_t i = 0; i < eps.size(); ++i) {
      episode_rows.push_back(EpisodeRow(id, i, eps[i]));
    }
  }
  SEMITRI_RETURN_IF_ERROR(WriteLines(dir + "/episodes.csv", kEpisodeHeader,
                                     episode_rows, false));

  std::vector<std::string> semantic_rows;
  for (const auto& [key, t] : interpretations_) {
    for (size_t i = 0; i < t.episodes.size(); ++i) {
      semantic_rows.push_back(SemanticEpisodeRow(t, i, t.episodes[i]));
    }
  }
  return WriteLines(dir + "/semantic_episodes.csv", kSemanticHeader,
                    semantic_rows, false);
}

common::Status SemanticTrajectoryStore::LoadCsv(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  raw_.clear();
  episodes_.clear();
  interpretations_.clear();
  gps_record_count_ = episode_count_ = semantic_episode_count_ = 0;

  // gps.csv
  {
    std::ifstream in(dir + "/gps.csv");
    if (!in) return common::Status::IoError("cannot open " + dir + "/gps.csv");
    std::string line;
    std::getline(in, line);  // header
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::vector<std::string> f = common::CsvParseLine(line);
      int64_t object_id = 0;
      int64_t tid = 0;
      core::GpsPoint p;
      if (f.size() != 5 || !ParseField(f[0], &object_id) ||
          !ParseField(f[1], &tid) || !ParseField(f[2], &p.position.x) ||
          !ParseField(f[3], &p.position.y) || !ParseField(f[4], &p.time)) {
        return BadRow("gps.csv", line);
      }
      core::RawTrajectory& t = raw_[tid];
      t.id = tid;
      t.object_id = object_id;
      t.points.push_back(p);
      ++gps_record_count_;
    }
  }
  // episodes.csv
  {
    std::ifstream in(dir + "/episodes.csv");
    if (!in) {
      return common::Status::IoError("cannot open " + dir + "/episodes.csv");
    }
    std::string line;
    std::getline(in, line);
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::vector<std::string> f = common::CsvParseLine(line);
      core::Episode e;
      int64_t tid = 0;
      if (f.size() != 13 || !ParseField(f[0], &tid) ||
          !ParseField(f[3], &e.begin) || !ParseField(f[4], &e.end) ||
          !ParseField(f[5], &e.time_in) || !ParseField(f[6], &e.time_out) ||
          !ParseField(f[7], &e.center.x) || !ParseField(f[8], &e.center.y) ||
          !ParseField(f[9], &e.bounds.min.x) ||
          !ParseField(f[10], &e.bounds.min.y) ||
          !ParseField(f[11], &e.bounds.max.x) ||
          !ParseField(f[12], &e.bounds.max.y)) {
        return BadRow("episodes.csv", line);
      }
      const std::string& kind = f[2];
      e.kind = kind == "stop"    ? core::EpisodeKind::kStop
               : kind == "move"  ? core::EpisodeKind::kMove
               : kind == "begin" ? core::EpisodeKind::kBegin
                                 : core::EpisodeKind::kEnd;
      episodes_[tid].push_back(e);
      ++episode_count_;
    }
  }
  // semantic_episodes.csv
  {
    std::ifstream in(dir + "/semantic_episodes.csv");
    if (!in) {
      return common::Status::IoError("cannot open " + dir +
                                     "/semantic_episodes.csv");
    }
    std::string line;
    std::getline(in, line);
    while (std::getline(in, line)) {
      if (line.empty()) continue;
      std::vector<std::string> f = common::CsvParseLine(line);
      int64_t object_id = 0;
      int64_t tid = 0;
      core::SemanticEpisode ep;
      if (f.size() != 10 || !ParseField(f[0], &object_id) ||
          !ParseField(f[1], &tid) || !ParseField(f[6], &ep.place.id) ||
          !ParseField(f[7], &ep.time_in) || !ParseField(f[8], &ep.time_out)) {
        return BadRow("semantic_episodes.csv", line);
      }
      auto key = std::make_pair(static_cast<core::TrajectoryId>(tid), f[2]);
      core::StructuredSemanticTrajectory& t = interpretations_[key];
      t.object_id = object_id;
      t.trajectory_id = key.first;
      t.interpretation = key.second;
      const std::string& kind = f[4];
      ep.kind = kind == "stop"    ? core::EpisodeKind::kStop
                : kind == "move"  ? core::EpisodeKind::kMove
                : kind == "begin" ? core::EpisodeKind::kBegin
                                  : core::EpisodeKind::kEnd;
      const std::string& place_kind = f[5];
      ep.place.kind = place_kind == "region" ? core::PlaceKind::kRegion
                      : place_kind == "line" ? core::PlaceKind::kLine
                                             : core::PlaceKind::kPoint;
      if (!f[9].empty()) {
        for (const std::string& pair : common::Split(f[9], ';')) {
          size_t eq = pair.find('=');
          if (eq != std::string::npos) {
            ep.AddAnnotation(pair.substr(0, eq), pair.substr(eq + 1));
          }
        }
      }
      t.episodes.push_back(std::move(ep));
      ++semantic_episode_count_;
    }
  }
  return common::Status::OK();
}

}  // namespace semitri::store
