#include "store/semantic_trajectory_store.h"

#include <algorithm>
#include <cstdint>
#include <cstring>
#include <utility>
#include <functional>

#include "common/fault_injection.h"
#include "common/serial.h"
#include "common/strings.h"
#include "core/state_serialization.h"

namespace semitri::store {

namespace {

constexpr char kCurrentFile[] = "CURRENT";
constexpr char kWalFile[] = "wal.log";
constexpr char kCheckpointPrefix[] = "checkpoint-";
constexpr char kSealedWalPrefix[] = "wal-";
constexpr char kSealedWalSuffix[] = ".log";
constexpr char kChecksumsFile[] = "checksums.csv";

// "wal-000012.log" -> 12. False for the active "wal.log" and anything
// else that is not a sealed segment name.
bool ParseSealedWalSeq(const std::string& name, size_t* seq) {
  size_t prefix = std::strlen(kSealedWalPrefix);
  size_t suffix = std::strlen(kSealedWalSuffix);
  if (name.size() <= prefix + suffix) return false;
  if (name.rfind(kSealedWalPrefix, 0) != 0) return false;
  if (name.compare(name.size() - suffix, suffix, kSealedWalSuffix) != 0) {
    return false;
  }
  std::string digits = name.substr(prefix, name.size() - prefix - suffix);
  for (char c : digits) {
    if (c < '0' || c > '9') return false;
  }
  *seq = 0;
  for (char c : digits) *seq = *seq * 10 + static_cast<size_t>(c - '0');
  return true;
}

// Doubles are written with %.17g so text round-trips to the identical
// bit pattern — ContentEquals between a recovered store and the
// pre-crash one compares doubles exactly, so lossy %.6f would break it.
std::string GpsRow(const core::RawTrajectory& t, const core::GpsPoint& p) {
  return common::StrFormat("%lld,%lld,%.17g,%.17g,%.17g",
                           static_cast<long long>(t.object_id),
                           static_cast<long long>(t.id), p.position.x,
                           p.position.y, p.time);
}

std::string EpisodeRow(core::TrajectoryId id, size_t index,
                       const core::Episode& e) {
  return common::StrFormat(
      "%lld,%zu,%s,%zu,%zu,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g,%.17g",
      static_cast<long long>(id), index, core::EpisodeKindName(e.kind),
      e.begin, e.end, e.time_in, e.time_out, e.center.x, e.center.y,
      e.bounds.min.x, e.bounds.min.y, e.bounds.max.x, e.bounds.max.y);
}

std::string AnnotationsEncoded(const core::SemanticEpisode& ep) {
  std::vector<std::string> parts;
  parts.reserve(ep.annotations.size());
  for (const core::Annotation& a : ep.annotations) {
    parts.push_back(a.key + "=" + a.value);
  }
  return common::Join(parts, ";");
}

std::string SemanticEpisodeRow(const core::StructuredSemanticTrajectory& t,
                               size_t index,
                               const core::SemanticEpisode& ep) {
  return common::StrFormat(
      "%lld,%lld,%s,%zu,%s,%s,%lld,%.17g,%.17g,%s,%llu",
      static_cast<long long>(t.object_id),
      static_cast<long long>(t.trajectory_id), t.interpretation.c_str(),
      index, core::EpisodeKindName(ep.kind),
      core::PlaceKindName(ep.place.kind),
      static_cast<long long>(ep.place.id), ep.time_in, ep.time_out,
      common::CsvEscape(AnnotationsEncoded(ep)).c_str(),
      static_cast<unsigned long long>(ep.source_episode));
}

// Entities whose detail table has zero rows (an empty trajectory, an
// episode list with no episodes, an interpretation whose layer produced
// nothing) would be invisible in the row-per-element CSVs, so a
// checkpoint would silently drop them and Recover() could not be
// ContentEquals-faithful. manifest.csv records exactly those empties.
std::string EmptyEntityRow(const char* table, core::ObjectId object_id,
                           core::TrajectoryId trajectory_id,
                           const std::string& interpretation) {
  return common::StrFormat("%s,%lld,%lld,%s", table,
                           static_cast<long long>(object_id),
                           static_cast<long long>(trajectory_id),
                           common::CsvEscape(interpretation).c_str());
}

constexpr char kGpsHeader[] = "object_id,trajectory_id,x,y,t";
constexpr char kManifestHeader[] =
    "table,object_id,trajectory_id,interpretation";
constexpr char kChecksumsHeader[] = "file,crc32,size";
constexpr char kEpisodeHeader[] =
    "trajectory_id,index,kind,begin,end,time_in,time_out,center_x,center_y,"
    "min_x,min_y,max_x,max_y";
constexpr char kSemanticHeader[] =
    "object_id,trajectory_id,interpretation,index,kind,place_kind,place_id,"
    "time_in,time_out,annotations,source_episode";

// Writes header (for a fresh/empty file) + rows in ONE Append call, so
// a crash between Puts never leaves a half-batch: either the whole
// batch landed or at most the final line is torn mid-row (which LoadCsv
// tolerates). `fault_site`, when set, is a fault-injection hook: kFail
// drops the batch, kCrash tears it halfway through like a power cut.
// For truncating (checkpoint) writes, `crc_out`/`size_out` report the
// CRC-32 and byte size of the full file content for checksums.csv.
common::Status WriteLines(common::Env* env, const std::string& path,
                          const std::string& header,
                          const std::vector<std::string>& rows, bool append,
                          bool sync = false,
                          const char* fault_site = nullptr,
                          uint32_t* crc_out = nullptr,
                          uint64_t* size_out = nullptr) {
  bool need_header = !append;
  if (append) {
    auto size = env->FileSize(path);
    need_header = !size.ok() || *size == 0;
  }
  std::string buffer;
  size_t bytes = need_header ? header.size() + 1 : 0;
  for (const std::string& row : rows) bytes += row.size() + 1;
  buffer.reserve(bytes);
  if (need_header) {
    buffer += header;
    buffer += '\n';
  }
  for (const std::string& row : rows) {
    buffer += row;
    buffer += '\n';
  }

  auto file = env->NewWritableFile(
      path, append ? common::WriteMode::kAppend : common::WriteMode::kTruncate);
  if (!file.ok()) {
    return common::Status::IoError("cannot open " + path + ": " +
                                   file.status().message());
  }

  common::FaultAction action = common::FaultAction::kNone;
  // semitri-lint: allow(fault-site-registry) — the name is forwarded
  // from AppendWriteThrough's caller; the only value passed,
  // "store_write_through", is a registered exact entry.
  if (fault_site != nullptr) action = SEMITRI_FAULT_FIRE(fault_site);
  if (action == common::FaultAction::kFail) {
    return common::Status::IoError("injected write failure for " + path);
  }
  if (action == common::FaultAction::kCrash) {
    // Simulated power cut mid-append: half the batch reaches the file,
    // tearing the final line. LoadCsv must tolerate exactly this. The
    // partial write's own status is irrelevant — we report the crash.
    (void)(*file)->Append(
        std::string_view(buffer.data(), buffer.size() / 2));
    return common::Status::IoError("simulated crash during csv append");
  }

  SEMITRI_RETURN_IF_ERROR((*file)->Append(buffer));
  if (sync) SEMITRI_RETURN_IF_ERROR((*file)->Sync());
  SEMITRI_RETURN_IF_ERROR((*file)->Close());
  if (crc_out != nullptr) *crc_out = common::Crc32(buffer);
  if (size_out != nullptr) *size_out = buffer.size();
  return common::Status::OK();
}

std::string ReadFirstLine(common::Env* env, const std::string& path) {
  std::string data;
  if (!env->ReadFileToString(path, &data).ok()) return {};
  size_t eol = data.find('\n');
  return eol == std::string::npos ? data : data.substr(0, eol);
}

// Field accessors for LoadCsv: untrusted CSV must produce Corruption
// statuses, never exceptions or UB (strtox helpers throw; the Parse*
// helpers do not).
common::Status BadRow(const char* file, const std::string& line) {
  return common::Status::Corruption(std::string("bad ") + file +
                                    " row: " + line);
}

bool ParseField(const std::string& field, double* out) {
  return common::ParseDouble(field, out);
}
bool ParseField(const std::string& field, int64_t* out) {
  return common::ParseInt64(field, out);
}
bool ParseField(const std::string& field, size_t* out) {
  return common::ParseSizeT(field, out);
}

// Streams a CSV table through `row`, skipping the header line. A row
// that fails to parse normally fails the load — except the final line
// of a file with no trailing newline, which is the signature of a
// crash mid-append (WriteLines emits one batch per write, newline
// last); that torn row is dropped and counted instead.
common::Status ForEachRow(
    common::Env* env, const std::string& path,
    const std::function<common::Status(const std::string&)>& row,
    size_t* torn_rows_tolerated) {
  std::string data;
  {
    common::Status read = env->ReadFileToString(path, &data);
    if (!read.ok()) {
      return common::Status::IoError("cannot open " + path + ": " +
                                     read.message());
    }
  }
  bool last_terminated = data.empty() || data.back() == '\n';
  std::vector<std::string> lines = common::Split(data, '\n');
  if (last_terminated && !lines.empty() && lines.back().empty()) {
    lines.pop_back();
  }
  for (size_t i = 1; i < lines.size(); ++i) {  // lines[0] is the header
    if (lines[i].empty()) continue;
    common::Status status = row(lines[i]);
    if (!status.ok()) {
      if (i + 1 == lines.size() && !last_terminated) {
        ++*torn_rows_tolerated;
        return common::Status::OK();
      }
      return status;
    }
  }
  return common::Status::OK();
}

common::Status ParseEpisodeKind(const std::string& kind,
                                core::EpisodeKind* out) {
  if (kind == "stop") {
    *out = core::EpisodeKind::kStop;
  } else if (kind == "move") {
    *out = core::EpisodeKind::kMove;
  } else if (kind == "begin") {
    *out = core::EpisodeKind::kBegin;
  } else if (kind == "end") {
    *out = core::EpisodeKind::kEnd;
  } else {
    return common::Status::Corruption("unknown episode kind: " + kind);
  }
  return common::Status::OK();
}

}  // namespace

SemanticTrajectoryStore::SemanticTrajectoryStore(StoreConfig config)
    : config_(std::move(config)), env_(common::ResolveEnv(config_.env)) {}

common::Status SemanticTrajectoryStore::EnterDegradedLocked(
    common::Status cause) {
  if (!degraded_) {
    degraded_ = true;
    degraded_reason_ = cause.ToString();
  }
  return cause;
}

common::Status SemanticTrajectoryStore::AppendWriteThrough(
    const std::string& file, const std::string& header,
    const std::vector<std::string>& rows) {
  if (config_.write_through_dir.empty()) return common::Status::OK();
  common::Status created = env_->CreateDirs(config_.write_through_dir);
  if (!created.ok()) {
    return EnterDegradedLocked(common::Status::IoError(
        "cannot create " + config_.write_through_dir));
  }
  std::string path = config_.write_through_dir + "/" + file;
  common::Status status =
      WriteLines(env_, path, header, rows, /*append=*/true, /*sync=*/false,
                 /*fault_site=*/"store_write_through");
  if (!status.ok()) return EnterDegradedLocked(std::move(status));
  return status;
}

common::Status SemanticTrajectoryStore::EnsureWal() {
  if (config_.durable_dir.empty() || wal_ != nullptr) {
    return common::Status::OK();
  }
  SEMITRI_RETURN_IF_ERROR(env_->CreateDirs(config_.durable_dir));
  auto writer = WalWriter::Open(config_.durable_dir + "/" + kWalFile, env_);
  SEMITRI_RETURN_IF_ERROR(writer.status());
  wal_ = std::move(writer.value());
  return common::Status::OK();
}

common::Status SemanticTrajectoryStore::LogToWal(WalRecordType type,
                                                 const std::string& payload) {
  if (config_.durable_dir.empty()) return common::Status::OK();
  common::Status status = EnsureWal();
  if (status.ok()) status = wal_->Append(type, payload);
  if (status.ok() && config_.sync_every_put) status = wal_->Sync();
  // Any WAL write/sync failure poisons the writer (store/wal.h) and
  // flips the store into read-only degraded mode: accepting more
  // writes after a disk fault would be a durability lie.
  if (!status.ok()) return EnterDegradedLocked(std::move(status));
  return status;
}

void SemanticTrajectoryStore::ApplyRawTrajectory(
    const core::RawTrajectory& trajectory) {
  auto it = raw_.find(trajectory.id);
  if (it != raw_.end()) {
    gps_record_count_ -= it->second.points.size();
  }
  gps_record_count_ += trajectory.points.size();
  raw_[trajectory.id] = trajectory;
}

void SemanticTrajectoryStore::ApplyEpisodes(
    core::TrajectoryId id, const std::vector<core::Episode>& episodes) {
  auto it = episodes_.find(id);
  if (it != episodes_.end()) episode_count_ -= it->second.size();
  episode_count_ += episodes.size();
  episodes_[id] = episodes;
}

void SemanticTrajectoryStore::ApplyInterpretation(
    const core::StructuredSemanticTrajectory& trajectory) {
  auto key = std::make_pair(trajectory.trajectory_id,
                            trajectory.interpretation);
  auto it = interpretations_.find(key);
  if (it != interpretations_.end()) {
    semantic_episode_count_ -= it->second.episodes.size();
  }
  semantic_episode_count_ += trajectory.episodes.size();
  interpretations_[key] = trajectory;
}

common::Status SemanticTrajectoryStore::ApplyWalRecord(
    WalRecordType type, std::string_view payload) {
  common::StateReader reader(payload);
  switch (type) {
    case WalRecordType::kPutRawTrajectory: {
      core::RawTrajectory trajectory;
      SEMITRI_RETURN_IF_ERROR(core::RestoreState(&reader, &trajectory));
      ApplyRawTrajectory(trajectory);
      break;
    }
    case WalRecordType::kPutEpisodes: {
      int64_t id = 0;
      std::vector<core::Episode> episodes;
      SEMITRI_RETURN_IF_ERROR(reader.GetI64(&id));
      SEMITRI_RETURN_IF_ERROR(core::RestoreState(&reader, &episodes));
      ApplyEpisodes(id, episodes);
      break;
    }
    case WalRecordType::kPutInterpretation: {
      core::StructuredSemanticTrajectory trajectory;
      SEMITRI_RETURN_IF_ERROR(core::RestoreState(&reader, &trajectory));
      ApplyInterpretation(trajectory);
      break;
    }
    default:
      return common::Status::Corruption("unknown wal record type");
  }
  if (!reader.AtEnd()) {
    return common::Status::Corruption("trailing bytes in wal record");
  }
  return common::Status::OK();
}

common::Status SemanticTrajectoryStore::PutRawTrajectory(
    const core::RawTrajectory& trajectory) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (degraded_) {
    return common::Status::Unavailable(
        "store is in read-only degraded mode: " + degraded_reason_);
  }
  if (!config_.durable_dir.empty()) {
    common::StateWriter payload;
    core::SaveState(trajectory, &payload);
    SEMITRI_RETURN_IF_ERROR(
        LogToWal(WalRecordType::kPutRawTrajectory, payload.data()));
  }
  ApplyRawTrajectory(trajectory);
  std::vector<std::string> rows;
  rows.reserve(trajectory.points.size());
  for (const core::GpsPoint& p : trajectory.points) {
    rows.push_back(GpsRow(trajectory, p));
  }
  return AppendWriteThrough("gps.csv", kGpsHeader, rows);
}

common::Status SemanticTrajectoryStore::PutEpisodes(
    core::TrajectoryId id, const std::vector<core::Episode>& episodes) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (degraded_) {
    return common::Status::Unavailable(
        "store is in read-only degraded mode: " + degraded_reason_);
  }
  if (!config_.durable_dir.empty()) {
    common::StateWriter payload;
    payload.PutI64(id);
    core::SaveState(episodes, &payload);
    SEMITRI_RETURN_IF_ERROR(
        LogToWal(WalRecordType::kPutEpisodes, payload.data()));
  }
  ApplyEpisodes(id, episodes);
  std::vector<std::string> rows;
  rows.reserve(episodes.size());
  for (size_t i = 0; i < episodes.size(); ++i) {
    rows.push_back(EpisodeRow(id, i, episodes[i]));
  }
  return AppendWriteThrough("episodes.csv", kEpisodeHeader, rows);
}

common::Status SemanticTrajectoryStore::PutInterpretation(
    const core::StructuredSemanticTrajectory& trajectory) {
  if (trajectory.interpretation.empty()) {
    return common::Status::InvalidArgument(
        "interpretation name must be set");
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (degraded_) {
    return common::Status::Unavailable(
        "store is in read-only degraded mode: " + degraded_reason_);
  }
  if (!config_.durable_dir.empty()) {
    common::StateWriter payload;
    core::SaveState(trajectory, &payload);
    SEMITRI_RETURN_IF_ERROR(
        LogToWal(WalRecordType::kPutInterpretation, payload.data()));
  }
  ApplyInterpretation(trajectory);
  std::vector<std::string> rows;
  rows.reserve(trajectory.episodes.size());
  for (size_t i = 0; i < trajectory.episodes.size(); ++i) {
    rows.push_back(SemanticEpisodeRow(trajectory, i, trajectory.episodes[i]));
  }
  return AppendWriteThrough("semantic_episodes.csv", kSemanticHeader, rows);
}

common::Status SemanticTrajectoryStore::ExitDegradedMode() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!degraded_) return common::Status::OK();
  if (!config_.durable_dir.empty()) {
    // Rotate past the poisoned writer: trim any torn tail the failed
    // write left (so appends resume on a frame boundary), reopen, and
    // prove the disk writes again with an fsync probe. An ambiguous
    // failed-sync frame that did reach the disk survives the trim and
    // replays on recovery — at-least-once for unacknowledged writes,
    // never a silent loss of acknowledged ones.
    wal_.reset();
    auto trimmed = ReplayWal(
        config_.durable_dir + "/" + kWalFile,
        [](WalRecordType, std::string_view) { return common::Status::OK(); },
        /*truncate_torn_tail=*/true, env_);
    SEMITRI_RETURN_IF_ERROR(trimmed.status());
    SEMITRI_RETURN_IF_ERROR(EnsureWal());
    SEMITRI_RETURN_IF_ERROR(wal_->Sync());
  }
  degraded_ = false;
  degraded_reason_.clear();
  return common::Status::OK();
}

bool SemanticTrajectoryStore::ContentEquals(
    const SemanticTrajectoryStore& other) const {
  if (this == &other) return true;
  // Lock both stores in address order so concurrent cross-comparisons
  // cannot deadlock.
  const SemanticTrajectoryStore* first = this < &other ? this : &other;
  const SemanticTrajectoryStore* second = this < &other ? &other : this;
  std::lock_guard<std::mutex> lock_first(first->mutex_);
  std::lock_guard<std::mutex> lock_second(second->mutex_);
  return raw_ == other.raw_ && episodes_ == other.episodes_ &&
         interpretations_ == other.interpretations_;
}

common::Result<core::RawTrajectory> SemanticTrajectoryStore::GetRawTrajectory(
    core::TrajectoryId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = raw_.find(id);
  if (it == raw_.end()) {
    return common::Status::NotFound(
        common::StrFormat("trajectory %lld", static_cast<long long>(id)));
  }
  return it->second;
}

common::Result<std::vector<core::Episode>>
SemanticTrajectoryStore::GetEpisodes(core::TrajectoryId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = episodes_.find(id);
  if (it == episodes_.end()) {
    return common::Status::NotFound(common::StrFormat(
        "episodes of trajectory %lld", static_cast<long long>(id)));
  }
  return it->second;
}

common::Result<core::StructuredSemanticTrajectory>
SemanticTrajectoryStore::GetInterpretation(
    core::TrajectoryId id, const std::string& interpretation) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = interpretations_.find(std::make_pair(id, interpretation));
  if (it == interpretations_.end()) {
    return common::Status::NotFound(common::StrFormat(
        "interpretation '%s' of trajectory %lld", interpretation.c_str(),
        static_cast<long long>(id)));
  }
  return it->second;
}

std::vector<core::TrajectoryId> SemanticTrajectoryStore::ListTrajectories()
    const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<core::TrajectoryId> out;
  out.reserve(raw_.size());
  for (const auto& [id, t] : raw_) out.push_back(id);
  return out;
}

std::vector<std::string> SemanticTrajectoryStore::ListInterpretations(
    core::TrajectoryId id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<std::string> out;
  for (auto it = interpretations_.lower_bound(std::make_pair(id, std::string()));
       it != interpretations_.end() && it->first.first == id; ++it) {
    out.push_back(it->first.second);
  }
  return out;
}

common::Status SemanticTrajectoryStore::SaveCsv(const std::string& dir) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return SaveCsvLocked(dir);
}

common::Status SemanticTrajectoryStore::SaveCsvLocked(
    const std::string& dir) const {
  SEMITRI_RETURN_IF_ERROR(env_->CreateDirs(dir));

  // Per-file CRCs, recorded into checksums.csv last so the integrity
  // scrubber (store/integrity_scrubber.h) can re-verify a cold
  // generation without re-parsing it.
  std::vector<std::string> checksum_rows;
  uint32_t crc = 0;
  uint64_t size = 0;

  std::vector<std::string> gps_rows;
  for (const auto& [id, t] : raw_) {
    for (const core::GpsPoint& p : t.points) gps_rows.push_back(GpsRow(t, p));
  }
  SEMITRI_RETURN_IF_ERROR(WriteLines(env_, dir + "/gps.csv", kGpsHeader,
                                     gps_rows, /*append=*/false,
                                     /*sync=*/true, nullptr, &crc, &size));
  checksum_rows.push_back(
      common::StrFormat("gps.csv,%u,%llu", crc,
                        static_cast<unsigned long long>(size)));

  std::vector<std::string> episode_rows;
  for (const auto& [id, eps] : episodes_) {
    for (size_t i = 0; i < eps.size(); ++i) {
      episode_rows.push_back(EpisodeRow(id, i, eps[i]));
    }
  }
  SEMITRI_RETURN_IF_ERROR(WriteLines(env_, dir + "/episodes.csv",
                                     kEpisodeHeader, episode_rows,
                                     /*append=*/false, /*sync=*/true, nullptr,
                                     &crc, &size));
  checksum_rows.push_back(
      common::StrFormat("episodes.csv,%u,%llu", crc,
                        static_cast<unsigned long long>(size)));

  std::vector<std::string> semantic_rows;
  for (const auto& [key, t] : interpretations_) {
    for (size_t i = 0; i < t.episodes.size(); ++i) {
      semantic_rows.push_back(SemanticEpisodeRow(t, i, t.episodes[i]));
    }
  }
  SEMITRI_RETURN_IF_ERROR(WriteLines(env_, dir + "/semantic_episodes.csv",
                                     kSemanticHeader, semantic_rows,
                                     /*append=*/false, /*sync=*/true, nullptr,
                                     &crc, &size));
  checksum_rows.push_back(
      common::StrFormat("semantic_episodes.csv,%u,%llu", crc,
                        static_cast<unsigned long long>(size)));

  std::vector<std::string> manifest_rows;
  for (const auto& [id, t] : raw_) {
    if (t.points.empty()) {
      manifest_rows.push_back(EmptyEntityRow("traj", t.object_id, id, ""));
    }
  }
  for (const auto& [id, eps] : episodes_) {
    if (eps.empty()) {
      manifest_rows.push_back(EmptyEntityRow("episodes", 0, id, ""));
    }
  }
  for (const auto& [key, t] : interpretations_) {
    if (t.episodes.empty()) {
      manifest_rows.push_back(EmptyEntityRow("interp", t.object_id,
                                             t.trajectory_id,
                                             t.interpretation));
    }
  }
  SEMITRI_RETURN_IF_ERROR(WriteLines(env_, dir + "/manifest.csv",
                                     kManifestHeader, manifest_rows,
                                     /*append=*/false, /*sync=*/true, nullptr,
                                     &crc, &size));
  checksum_rows.push_back(
      common::StrFormat("manifest.csv,%u,%llu", crc,
                        static_cast<unsigned long long>(size)));

  return WriteLines(env_, dir + "/" + kChecksumsFile, kChecksumsHeader,
                    checksum_rows, /*append=*/false, /*sync=*/true);
}

void SemanticTrajectoryStore::ClearLocked() {
  raw_.clear();
  episodes_.clear();
  interpretations_.clear();
  gps_record_count_ = episode_count_ = semantic_episode_count_ = 0;
  torn_rows_tolerated_ = 0;
}

common::Status SemanticTrajectoryStore::LoadCsv(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  return LoadCsvLocked(dir);
}

common::Status SemanticTrajectoryStore::LoadCsvLocked(const std::string& dir) {
  // Parse into locals and commit at the end: a failed load must not
  // leave half a table behind (and the parse lambdas stay free of
  // mutex-guarded members, which the thread-safety analysis cannot
  // track through std::function).
  std::map<core::TrajectoryId, core::RawTrajectory> raw;
  std::map<core::TrajectoryId, std::vector<core::Episode>> episodes;
  std::map<std::pair<core::TrajectoryId, std::string>,
           core::StructuredSemanticTrajectory>
      interpretations;
  size_t gps_records = 0;
  size_t episode_count = 0;
  size_t semantic_count = 0;
  size_t torn_rows = 0;

  SEMITRI_RETURN_IF_ERROR(ForEachRow(
      env_, dir + "/gps.csv",
      [&](const std::string& line) {
        std::vector<std::string> f = common::CsvParseLine(line);
        int64_t object_id = 0;
        int64_t tid = 0;
        core::GpsPoint p;
        if (f.size() != 5 || !ParseField(f[0], &object_id) ||
            !ParseField(f[1], &tid) || !ParseField(f[2], &p.position.x) ||
            !ParseField(f[3], &p.position.y) || !ParseField(f[4], &p.time)) {
          return BadRow("gps.csv", line);
        }
        core::RawTrajectory& t = raw[tid];
        t.id = tid;
        t.object_id = object_id;
        t.points.push_back(p);
        ++gps_records;
        return common::Status::OK();
      },
      &torn_rows));

  SEMITRI_RETURN_IF_ERROR(ForEachRow(
      env_, dir + "/episodes.csv",
      [&](const std::string& line) {
        std::vector<std::string> f = common::CsvParseLine(line);
        core::Episode e;
        int64_t tid = 0;
        if (f.size() != 13 || !ParseField(f[0], &tid) ||
            !ParseField(f[3], &e.begin) || !ParseField(f[4], &e.end) ||
            !ParseField(f[5], &e.time_in) || !ParseField(f[6], &e.time_out) ||
            !ParseField(f[7], &e.center.x) || !ParseField(f[8], &e.center.y) ||
            !ParseField(f[9], &e.bounds.min.x) ||
            !ParseField(f[10], &e.bounds.min.y) ||
            !ParseField(f[11], &e.bounds.max.x) ||
            !ParseField(f[12], &e.bounds.max.y)) {
          return BadRow("episodes.csv", line);
        }
        SEMITRI_RETURN_IF_ERROR(ParseEpisodeKind(f[2], &e.kind));
        episodes[tid].push_back(e);
        ++episode_count;
        return common::Status::OK();
      },
      &torn_rows));

  SEMITRI_RETURN_IF_ERROR(ForEachRow(
      env_, dir + "/semantic_episodes.csv",
      [&](const std::string& line) {
        std::vector<std::string> f = common::CsvParseLine(line);
        int64_t object_id = 0;
        int64_t tid = 0;
        core::SemanticEpisode ep;
        // 10 fields is the legacy schema without source_episode; 11 is
        // current. Anything else (or a parse failure) is a bad row.
        if ((f.size() != 10 && f.size() != 11) ||
            !ParseField(f[0], &object_id) || !ParseField(f[1], &tid) ||
            !ParseField(f[6], &ep.place.id) ||
            !ParseField(f[7], &ep.time_in) ||
            !ParseField(f[8], &ep.time_out)) {
          return BadRow("semantic_episodes.csv", line);
        }
        if (f.size() == 11 && !ParseField(f[10], &ep.source_episode)) {
          return BadRow("semantic_episodes.csv", line);
        }
        SEMITRI_RETURN_IF_ERROR(ParseEpisodeKind(f[4], &ep.kind));
        const std::string& place_kind = f[5];
        ep.place.kind = place_kind == "region" ? core::PlaceKind::kRegion
                        : place_kind == "line" ? core::PlaceKind::kLine
                                               : core::PlaceKind::kPoint;
        if (!f[9].empty()) {
          for (const std::string& pair : common::Split(f[9], ';')) {
            size_t eq = pair.find('=');
            if (eq != std::string::npos) {
              ep.AddAnnotation(pair.substr(0, eq), pair.substr(eq + 1));
            }
          }
        }
        auto key = std::make_pair(static_cast<core::TrajectoryId>(tid), f[2]);
        core::StructuredSemanticTrajectory& t = interpretations[key];
        t.object_id = object_id;
        t.trajectory_id = key.first;
        t.interpretation = key.second;
        t.episodes.push_back(std::move(ep));
        ++semantic_count;
        return common::Status::OK();
      },
      &torn_rows));

  // Empty entities recorded by SaveCsvLocked (absent in checkpoints
  // written before manifest.csv existed — those simply list no empties).
  if (env_->FileExists(dir + "/manifest.csv")) {
    SEMITRI_RETURN_IF_ERROR(ForEachRow(
        env_, dir + "/manifest.csv",
        [&](const std::string& line) {
          std::vector<std::string> f = common::CsvParseLine(line);
          int64_t object_id = 0;
          int64_t tid = 0;
          if (f.size() != 4 || !ParseField(f[1], &object_id) ||
              !ParseField(f[2], &tid)) {
            return BadRow("manifest.csv", line);
          }
          if (f[0] == "traj") {
            core::RawTrajectory& t = raw[tid];
            t.id = tid;
            t.object_id = object_id;
          } else if (f[0] == "episodes") {
            episodes[tid];  // touch: empty list exists
          } else if (f[0] == "interp") {
            auto key =
                std::make_pair(static_cast<core::TrajectoryId>(tid), f[3]);
            core::StructuredSemanticTrajectory& t = interpretations[key];
            t.object_id = object_id;
            t.trajectory_id = key.first;
            t.interpretation = key.second;
          } else {
            return BadRow("manifest.csv", line);
          }
          return common::Status::OK();
        },
        &torn_rows));
  }

  raw_ = std::move(raw);
  episodes_ = std::move(episodes);
  interpretations_ = std::move(interpretations);
  gps_record_count_ = gps_records;
  episode_count_ = episode_count;
  semantic_episode_count_ = semantic_count;
  torn_rows_tolerated_ = torn_rows;
  return common::Status::OK();
}

common::Result<SemanticTrajectoryStore::RecoveryStats>
SemanticTrajectoryStore::Recover(const std::string& dir) {
  std::lock_guard<std::mutex> lock(mutex_);
  RecoveryStats stats;
  ClearLocked();
  wal_.reset();
  config_.durable_dir = dir;
  // A fresh process on a healthy disk starts healthy; if the disk is
  // still failing the first write re-degrades immediately.
  degraded_ = false;
  degraded_reason_.clear();

  SEMITRI_RETURN_IF_ERROR(env_->CreateDirs(dir));

  std::string current = ReadFirstLine(env_, dir + "/" + kCurrentFile);
  if (!current.empty()) {
    SEMITRI_RETURN_IF_ERROR(LoadCsvLocked(dir + "/" + current));
    stats.checkpoint_loaded = true;
  }

  // Sealed segments replay before the active log — they hold strictly
  // older records. A sealed segment was fsynced before the rename
  // published it, so a torn frame there is genuine corruption rather
  // than a crash tail, and replay fails instead of truncating.
  for (const std::string& name : ListSealedWalSegments(dir, env_)) {
    auto sealed = ReplayWal(
        dir + "/" + name,
        [this](WalRecordType type, std::string_view payload) {
          return ApplyWalRecord(type, payload);
        },
        /*truncate_torn_tail=*/false, env_);
    SEMITRI_RETURN_IF_ERROR(sealed.status());
    if (sealed->torn_bytes_truncated > 0) {
      return common::Status::Corruption("torn frame in sealed wal segment " +
                                        dir + "/" + name);
    }
    stats.wal_records_replayed += sealed->records_applied;
    ++stats.wal_segments_replayed;
  }

  // Replay the log over the checkpoint. Records that predate the
  // checkpoint may still be in the log (crash between the CURRENT flip
  // and the log truncation); replaying them is safe because every Put
  // is a keyed overwrite, so replay converges to the logged state.
  auto replayed = ReplayWal(
      dir + "/" + kWalFile,
      [this](WalRecordType type, std::string_view payload) {
        return ApplyWalRecord(type, payload);
      },
      /*truncate_torn_tail=*/true, env_);
  SEMITRI_RETURN_IF_ERROR(replayed.status());
  stats.wal_records_replayed = replayed->records_applied;
  stats.wal_torn_bytes_truncated = replayed->torn_bytes_truncated;
  return stats;
}

common::Status SemanticTrajectoryStore::Sync() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (degraded_) {
    return common::Status::Unavailable(
        "store is in read-only degraded mode: " + degraded_reason_);
  }
  if (config_.durable_dir.empty() || wal_ == nullptr) {
    return common::Status::OK();  // nothing appended yet
  }
  common::Status status = wal_->Sync();
  if (!status.ok()) return EnterDegradedLocked(std::move(status));
  return status;
}

std::vector<std::string> SemanticTrajectoryStore::ListSealedWalSegments(
    const std::string& dir, common::Env* env) {
  std::vector<std::pair<size_t, std::string>> found;
  auto names = common::ResolveEnv(env)->ListDir(dir);
  if (!names.ok()) return {};
  for (const std::string& base : *names) {
    size_t seq = 0;
    if (ParseSealedWalSeq(base, &seq)) found.emplace_back(seq, base);
  }
  std::sort(found.begin(), found.end());
  std::vector<std::string> out;
  out.reserve(found.size());
  for (auto& [seq, name] : found) out.push_back(std::move(name));
  return out;
}

common::Result<std::string> SemanticTrajectoryStore::SealWalSegment() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.durable_dir.empty()) return std::string();
  if (degraded_) {
    return common::Status::Unavailable(
        "store is in read-only degraded mode: " + degraded_reason_);
  }
  std::string active = config_.durable_dir + "/" + kWalFile;
  auto size = env_->FileSize(active);
  if (!size.ok() || *size == 0) return std::string();  // nothing to seal
  // fsync before the rename publishes the sealed name: once visible,
  // a segment is complete, so replay and shipping never see a tail in
  // flight.
  if (wal_ != nullptr) {
    common::Status synced = wal_->Sync();
    if (!synced.ok()) return EnterDegradedLocked(std::move(synced));
  }
  wal_.reset();
  size_t seq = 1;
  for (const std::string& existing :
       ListSealedWalSegments(config_.durable_dir, env_)) {
    size_t existing_seq = 0;
    if (ParseSealedWalSeq(existing, &existing_seq) && existing_seq >= seq) {
      seq = existing_seq + 1;
    }
  }
  std::string name = common::StrFormat("%s%06zu%s", kSealedWalPrefix, seq,
                                       kSealedWalSuffix);
  common::Status renamed =
      env_->RenameFile(active, config_.durable_dir + "/" + name);
  if (!renamed.ok()) {
    return common::Status::IoError("cannot seal wal segment " +
                                   config_.durable_dir + "/" + name + ": " +
                                   renamed.message());
  }
  (void)env_->SyncDir(config_.durable_dir);  // best-effort, like before
  // The next Put's EnsureWal() reopens a fresh active log.
  return name;
}

common::Status SemanticTrajectoryStore::Checkpoint() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (config_.durable_dir.empty()) return common::Status::OK();
  if (degraded_) {
    return common::Status::Unavailable(
        "store is in read-only degraded mode: " + degraded_reason_);
  }

  common::FaultAction action = SEMITRI_FAULT_FIRE("wal_checkpoint");
  if (action == common::FaultAction::kFail) {
    // Injected failure before anything is written: the old checkpoint
    // and the full WAL stay authoritative.
    return common::Status::IoError("injected checkpoint failure");
  }

  // Next generation number: one past what CURRENT points at.
  std::string current =
      ReadFirstLine(env_, config_.durable_dir + "/" + kCurrentFile);
  size_t generation = 1;
  if (current.rfind(kCheckpointPrefix, 0) == 0) {
    size_t previous = 0;
    if (ParseField(current.substr(std::strlen(kCheckpointPrefix)),
                   &previous)) {
      generation = previous + 1;
    }
  }
  std::string name =
      common::StrFormat("%s%zu", kCheckpointPrefix, generation);
  SEMITRI_RETURN_IF_ERROR(SaveCsvLocked(config_.durable_dir + "/" + name));

  if (action == common::FaultAction::kCrash) {
    // Simulated crash after the new generation is on disk but before
    // the CURRENT flip: recovery ignores the orphan directory and uses
    // the old checkpoint + WAL.
    return common::Status::IoError("simulated crash during checkpoint");
  }

  // Flip CURRENT via rename — the atomic commit point of the
  // checkpoint. Before it the old generation is authoritative, after
  // it the new one is; there is no intermediate state.
  std::string current_path = config_.durable_dir + "/" + kCurrentFile;
  SEMITRI_RETURN_IF_ERROR(
      env_->WriteStringToFile(current_path + ".tmp", name + "\n",
                              /*sync=*/true));
  common::Status flipped =
      env_->RenameFile(current_path + ".tmp", current_path);
  if (!flipped.ok()) {
    // The flip never happened: the old generation stays authoritative.
    // Sweep the tmp so a later retry starts clean.
    (void)env_->RemoveFile(current_path + ".tmp");
    return common::Status::IoError("cannot commit " + current_path + ": " +
                                   flipped.message());
  }
  (void)env_->SyncDir(config_.durable_dir);  // best-effort, like before

  // The checkpoint holds everything the log held; empty it.
  SEMITRI_RETURN_IF_ERROR(EnsureWal());
  SEMITRI_RETURN_IF_ERROR(wal_->Truncate());

  // GC stale generations (including orphans from crashed checkpoints).
  // GC failures leave garbage behind but never unsound state; the next
  // checkpoint retries.
  auto entries = env_->ListDir(config_.durable_dir);
  if (entries.ok()) {
    for (const std::string& base : *entries) {
      if (base.rfind(kCheckpointPrefix, 0) == 0 && base != name &&
          env_->IsDirectory(config_.durable_dir + "/" + base)) {
        (void)env_->RemoveDirRecursive(config_.durable_dir + "/" + base);
      }
    }
  }
  // The checkpoint compacted everything the sealed segments held.
  for (const std::string& sealed :
       ListSealedWalSegments(config_.durable_dir, env_)) {
    (void)env_->RemoveFile(config_.durable_dir + "/" + sealed);
  }
  return common::Status::OK();
}

}  // namespace semitri::store
