#include "hmm/emission_matrix.h"

#include "common/strings.h"

namespace semitri::hmm {

common::Result<EmissionMatrix> EmissionMatrix::FromRows(
    const std::vector<std::vector<double>>& rows) {
  EmissionMatrix out;
  if (rows.empty()) return out;
  out.Reset(rows[0].size());
  for (size_t t = 0; t < rows.size(); ++t) {
    if (rows[t].size() != out.cols()) {
      return common::Status::InvalidArgument(common::StrFormat(
          "emission row %zu has %zu entries, expected %zu", t,
          rows[t].size(), out.cols()));
    }
    std::span<double> row = out.AppendRow();
    for (size_t i = 0; i < row.size(); ++i) row[i] = rows[t][i];
  }
  return out;
}

}  // namespace semitri::hmm
