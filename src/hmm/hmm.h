#ifndef SEMITRI_HMM_HMM_H_
#define SEMITRI_HMM_HMM_H_

// Hidden Markov Model and Viterbi decoding (paper §4.3, Algorithm 3;
// Rabiner [25], Forney [7]).
//
// λ = (π, A, B). π and A live in HmmModel; emission probabilities B are
// supplied per observation as a flat row-major T×N EmissionMatrix (the
// Semantic Point layer computes them from the POI observation model),
// which keeps this module independent of the observation space.
//
// Decoding runs in log space so long stop sequences do not underflow.
// The sweeps are written as contiguous flat-array loops (log-transition
// matrix precomputed once per decode, rolling delta rows) — see
// DESIGN.md "Data plane layout" for the kernel-writing rules.

#include <cstddef>
#include <vector>

#include "common/arena.h"
#include "common/exec_control.h"
#include "common/status.h"
#include "hmm/emission_matrix.h"

namespace semitri::hmm {

struct HmmModel {
  // initial[i] = Pr(state i at t=0);  transition[i][j] = Pr(j | i).
  std::vector<double> initial;
  std::vector<std::vector<double>> transition;

  size_t num_states() const { return initial.size(); }
};

// Checks shapes and (approximate) stochasticity of π and A.
[[nodiscard]] common::Status ValidateModel(const HmmModel& model);

// Row-stochastic matrix with `self_prob` on the diagonal and the rest
// spread uniformly (the paper's Fig. 6 default initialization pattern).
std::vector<std::vector<double>> MakeDefaultTransition(size_t num_states,
                                                       double self_prob);

struct ViterbiResult {
  std::vector<size_t> states;  // best state per observation
  double log_probability = 0.0;
};

// Most likely hidden state sequence for `emissions`, where
// emissions.At(t, i) = Pr(o_t | state i) (any nonnegative, relative
// scale per row is sufficient). Rows with all-zero emissions are
// treated as uninformative (uniform). The sweep consults `exec` (when
// non-null) every exec->check_interval observation rows and aborts with
// DeadlineExceeded, so a pathological stop sequence cannot pin the
// point-annotation stage past its deadline. `scratch` (when non-null)
// provides the decode working set — backpointers, rolling delta rows,
// the log-transition matrix — so repeated decodes allocate nothing.
[[nodiscard]] common::Result<ViterbiResult> Viterbi(
    const HmmModel& model, const EmissionMatrix& emissions,
    const common::ExecControl* exec = nullptr,
    common::Arena* scratch = nullptr);

// Total observation likelihood log Pr(O | λ) via the forward algorithm
// (used by tests: Viterbi path probability never exceeds it).
[[nodiscard]] common::Result<double> ForwardLogLikelihood(
    const HmmModel& model, const EmissionMatrix& emissions);

// Posterior state probabilities gamma.At(t, i) = Pr(state i at t | O, λ)
// via forward-backward — the paper's "activity likelihoods and
// probabilistic estimates of the purpose behind that stop" (§3.3).
// Rows sum to 1.
[[nodiscard]] common::Result<EmissionMatrix> PosteriorDecode(
    const HmmModel& model, const EmissionMatrix& emissions);

// --- Baum-Welch -------------------------------------------------------
//
// Learns π and A from observation sequences by expectation-maximization,
// with the emission model held fixed (the Semantic Point layer's
// emissions come from POI densities, not from free parameters). This
// realizes the paper's noted extension: "Learning dynamic and
// personalized transition matrix A is interesting but not the focus of
// this paper" (§4.3).

struct BaumWelchOptions {
  size_t max_iterations = 100;
  // Stop when the total log-likelihood improves by less than this.
  double tolerance = 1e-6;
  bool learn_initial = true;
  // Dirichlet-style smoothing added to every expected count; keeps rows
  // stochastic when a transition is never observed.
  double smoothing = 1e-3;
};

struct BaumWelchResult {
  HmmModel model;
  double log_likelihood = 0.0;
  size_t iterations = 0;
};

// `sequences` holds one emission matrix (T_s x N) per observation
// sequence (e.g. one per daily trajectory). Empty sequences are skipped.
[[nodiscard]] common::Result<BaumWelchResult> BaumWelch(
    const HmmModel& initial_model,
    const std::vector<EmissionMatrix>& sequences,
    const BaumWelchOptions& options = {});

}  // namespace semitri::hmm

#endif  // SEMITRI_HMM_HMM_H_
