#include "hmm/hmm.h"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "common/check.h"
#include "common/strings.h"

namespace semitri::hmm {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double SafeLog(double p) { return p > 0.0 ? std::log(p) : kNegInf; }

// Validates emissions shape against the model. All-zero rows are
// normalized to uniform by EffectiveRow at decode time.
common::Status CheckEmissions(const HmmModel& model,
                              const EmissionMatrix& emissions) {
  if (!emissions.empty() && emissions.cols() != model.num_states()) {
    return common::Status::InvalidArgument(common::StrFormat(
        "emission matrix has %zu columns, model has %zu states",
        emissions.cols(), model.num_states()));
  }
  // semitri-lint: allow(exec-checkpoint-coverage) — O(T·N) flat scan
  // validating before decoding starts; Viterbi itself polls the
  // checkpoint every check_interval steps.
  for (double e : emissions.data()) {
    if (e < 0.0 || !std::isfinite(e)) {
      return common::Status::InvalidArgument(
          "emission probabilities must be finite and nonnegative");
    }
  }
  return common::Status::OK();
}

// The effective emission row at t: the row itself, or uniform when it
// sums to <= 0 (an uninformative observation). One contiguous pass —
// the per-lookup row sums of the seed's RowEmission are hoisted here.
void EffectiveRow(const EmissionMatrix& emissions, size_t t, double* out) {
  std::span<const double> row = emissions.Row(t);
  double sum = 0.0;
  for (double v : row) sum += v;
  if (sum <= 0.0) {
    double uniform = 1.0 / static_cast<double>(row.size());
    for (size_t i = 0; i < row.size(); ++i) out[i] = uniform;
  } else {
    for (size_t i = 0; i < row.size(); ++i) out[i] = row[i];
  }
}

// Flattens A row-major into out[i * n + j].
void FlattenTransition(const HmmModel& model, double* out) {
  const size_t n = model.num_states();
  for (size_t i = 0; i < n; ++i) {
    const std::vector<double>& row = model.transition[i];
    for (size_t j = 0; j < n; ++j) out[i * n + j] = row[j];
  }
}

}  // namespace

common::Status ValidateModel(const HmmModel& model) {
  const size_t n = model.num_states();
  if (n == 0) {
    return common::Status::InvalidArgument("model has no states");
  }
  if (model.transition.size() != n) {
    return common::Status::InvalidArgument(common::StrFormat(
        "transition matrix has %zu rows, expected %zu",
        model.transition.size(), n));
  }
  double pi_sum = 0.0;
  for (double p : model.initial) {
    if (p < 0.0) {
      return common::Status::InvalidArgument("negative initial probability");
    }
    pi_sum += p;
  }
  if (std::abs(pi_sum - 1.0) > 1e-6) {
    return common::Status::InvalidArgument(
        common::StrFormat("initial probabilities sum to %f, not 1", pi_sum));
  }
  for (size_t i = 0; i < n; ++i) {
    if (model.transition[i].size() != n) {
      return common::Status::InvalidArgument(common::StrFormat(
          "transition row %zu has %zu entries, expected %zu", i,
          model.transition[i].size(), n));
    }
    double row_sum = 0.0;
    for (double p : model.transition[i]) {
      if (p < 0.0) {
        return common::Status::InvalidArgument(
            "negative transition probability");
      }
      row_sum += p;
    }
    if (std::abs(row_sum - 1.0) > 1e-6) {
      return common::Status::InvalidArgument(common::StrFormat(
          "transition row %zu sums to %f, not 1", i, row_sum));
    }
  }
  return common::Status::OK();
}

// semitri-lint: allow(hot-path-alloc) — model-construction API: the
// nested shape is the HmmModel::transition contract.
std::vector<std::vector<double>> MakeDefaultTransition(size_t num_states,
                                                       double self_prob) {
  // semitri-lint: allow(hot-path-alloc) — model-construction API: the
  // nested shape is the HmmModel::transition contract; decode paths
  // flatten it once per call (FlattenTransition).
  std::vector<std::vector<double>> a(num_states,
                                     std::vector<double>(num_states));
  double off = num_states > 1
                   ? (1.0 - self_prob) / static_cast<double>(num_states - 1)
                   : 0.0;
  for (size_t i = 0; i < num_states; ++i) {
    for (size_t j = 0; j < num_states; ++j) {
      a[i][j] = i == j ? (num_states == 1 ? 1.0 : self_prob) : off;
    }
  }
  return a;
}

common::Result<ViterbiResult> Viterbi(const HmmModel& model,
                                      const EmissionMatrix& emissions,
                                      const common::ExecControl* exec,
                                      common::Arena* scratch) {
  SEMITRI_RETURN_IF_ERROR(ValidateModel(model));
  SEMITRI_RETURN_IF_ERROR(CheckEmissions(model, emissions));
  ViterbiResult result;
  if (emissions.empty()) return result;

  const size_t n = model.num_states();
  const size_t t_max = emissions.rows();
  common::ExecCheckpoint checkpoint(exec);

  // Decode working set, bump-allocated: the column-major log-transition
  // matrix (so the argmax inner loop reads contiguously), two rolling
  // delta rows (Eq. 5–6), the effective emission row, and the full
  // backpointer table psi (Eq. 7).
  common::Arena local;
  common::Arena& arena = scratch != nullptr ? *scratch : local;
  std::span<double> log_at = arena.AllocSpan<double>(n * n);
  std::span<double> delta_a = arena.AllocSpan<double>(n);
  std::span<double> delta_b = arena.AllocSpan<double>(n);
  std::span<double> b_row = arena.AllocSpan<double>(n);
  std::span<uint32_t> psi = arena.AllocSpan<uint32_t>(t_max * n);

  for (size_t i = 0; i < n; ++i) {
    const std::vector<double>& row = model.transition[i];
    for (size_t j = 0; j < n; ++j) log_at[j * n + i] = SafeLog(row[j]);
  }

  double* prev = delta_a.data();
  double* cur = delta_b.data();
  EffectiveRow(emissions, 0, b_row.data());
  for (size_t i = 0; i < n; ++i) {
    prev[i] = SafeLog(model.initial[i]) + SafeLog(b_row[i]);
    psi[i] = 0;
  }
  for (size_t t = 1; t < t_max; ++t) {
    SEMITRI_RETURN_IF_ERROR(checkpoint.Check("hmm_viterbi"));
    EffectiveRow(emissions, t, b_row.data());
    uint32_t* psi_t = psi.data() + t * n;
    for (size_t j = 0; j < n; ++j) {
      const double* a_col = log_at.data() + j * n;
      double best = kNegInf;
      size_t best_i = 0;
      for (size_t i = 0; i < n; ++i) {
        double v = prev[i] + a_col[i];
        if (v > best) {
          best = v;
          best_i = i;
        }
      }
      cur[j] = best + SafeLog(b_row[j]);
      psi_t[j] = static_cast<uint32_t>(best_i);
    }
    std::swap(prev, cur);
  }
  // Termination + backtracking (Algorithm 3 lines 12–16).
  size_t best_state = 0;
  double best = kNegInf;
  for (size_t i = 0; i < n; ++i) {
    if (prev[i] > best) {
      best = prev[i];
      best_state = i;
    }
  }
  SEMITRI_DCHECK(best_state < n)
      << "Viterbi termination chose state " << best_state << " of " << n;
  result.log_probability = best;
  result.states.resize(t_max);
  result.states[t_max - 1] = best_state;
  for (size_t t = t_max - 1; t > 0; --t) {
    result.states[t - 1] = psi[t * n + result.states[t]];
  }
  return result;
}

common::Result<double> ForwardLogLikelihood(const HmmModel& model,
                                            const EmissionMatrix& emissions) {
  SEMITRI_RETURN_IF_ERROR(ValidateModel(model));
  SEMITRI_RETURN_IF_ERROR(CheckEmissions(model, emissions));
  if (emissions.empty()) return 0.0;

  const size_t n = model.num_states();
  // Scaled forward recursion: alpha is renormalized each step and the
  // log of the scale factors accumulates into the total likelihood.
  common::Arena arena;
  std::span<double> a = arena.AllocSpan<double>(n * n);
  std::span<double> alpha = arena.AllocSpan<double>(n);
  std::span<double> next = arena.AllocSpan<double>(n);
  std::span<double> b_row = arena.AllocSpan<double>(n);
  FlattenTransition(model, a.data());

  double log_likelihood = 0.0;
  EffectiveRow(emissions, 0, b_row.data());
  for (size_t i = 0; i < n; ++i) {
    alpha[i] = model.initial[i] * b_row[i];
  }
  for (size_t t = 0;; ++t) {
    double scale = 0.0;
    for (double v : alpha) scale += v;
    if (scale <= 0.0) {
      return common::Status::InvalidArgument(
          "observation sequence has zero likelihood under the model");
    }
    for (double& v : alpha) v /= scale;
    log_likelihood += std::log(scale);
    if (t + 1 == emissions.rows()) break;
    EffectiveRow(emissions, t + 1, b_row.data());
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += alpha[i] * a[i * n + j];
      }
      next[j] = acc * b_row[j];
    }
    std::swap(alpha, next);
  }
  return log_likelihood;
}

namespace {

// Per-timestep-normalized forward/backward variables for one sequence,
// in flat t*n layout. `work` supplies every buffer (reused across
// sequences by BaumWelch). Returns the sequence log-likelihood.
struct ForwardBackwardWork {
  std::vector<double> a;      // flat row-major transition
  std::vector<double> b_eff;  // flat effective emission rows
  std::vector<double> alpha;  // flat t*n
  std::vector<double> beta;   // flat t*n
  std::vector<double> scale;  // per-t normalizer
};

double ForwardBackward(const HmmModel& model, const EmissionMatrix& emissions,
                       ForwardBackwardWork* work) {
  // Callers validate the model and skip empty sequences; the backward
  // recursion below would index emissions row t_max - 1 otherwise.
  SEMITRI_DCHECK(!emissions.empty())
      << "ForwardBackward requires a non-empty observation sequence";
  const size_t n = model.num_states();
  const size_t t_max = emissions.rows();
  work->a.resize(n * n);
  FlattenTransition(model, work->a.data());
  work->b_eff.resize(t_max * n);
  // semitri-lint: allow(exec-checkpoint-coverage) — offline training
  // path; bounded by the sequence length, not a serving deadline.
  for (size_t t = 0; t < t_max; ++t) {
    EffectiveRow(emissions, t, work->b_eff.data() + t * n);
  }
  work->alpha.assign(t_max * n, 0.0);
  work->beta.assign(t_max * n, 1.0);
  work->scale.assign(t_max, 0.0);
  const double* a = work->a.data();
  const double* b = work->b_eff.data();
  double* alpha = work->alpha.data();
  double* beta = work->beta.data();

  for (size_t i = 0; i < n; ++i) {
    alpha[i] = model.initial[i] * b[i];
  }
  double log_likelihood = 0.0;
  for (size_t t = 0; t < t_max; ++t) {
    double* alpha_t = alpha + t * n;
    if (t > 0) {
      const double* alpha_prev = alpha + (t - 1) * n;
      const double* b_t = b + t * n;
      for (size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (size_t i = 0; i < n; ++i) {
          acc += alpha_prev[i] * a[i * n + j];
        }
        alpha_t[j] = acc * b_t[j];
      }
    }
    double c = 0.0;
    for (size_t j = 0; j < n; ++j) c += alpha_t[j];
    if (c <= 0.0) c = 1e-300;
    for (size_t j = 0; j < n; ++j) alpha_t[j] /= c;
    work->scale[t] = c;
    log_likelihood += std::log(c);
  }
  for (size_t t = t_max - 1; t-- > 0;) {
    const double* b_next = b + (t + 1) * n;
    const double* beta_next = beta + (t + 1) * n;
    double* beta_t = beta + t * n;
    const double scale_next = work->scale[t + 1];
    for (size_t i = 0; i < n; ++i) {
      const double* a_row = a + i * n;
      double acc = 0.0;
      for (size_t j = 0; j < n; ++j) {
        acc += a_row[j] * b_next[j] * beta_next[j];
      }
      beta_t[i] = acc / scale_next;
    }
  }
  return log_likelihood;
}

}  // namespace

common::Result<EmissionMatrix> PosteriorDecode(
    const HmmModel& model, const EmissionMatrix& emissions) {
  SEMITRI_RETURN_IF_ERROR(ValidateModel(model));
  SEMITRI_RETURN_IF_ERROR(CheckEmissions(model, emissions));
  EmissionMatrix gamma;
  if (emissions.empty()) return gamma;
  ForwardBackwardWork work;
  ForwardBackward(model, emissions, &work);
  const size_t n = model.num_states();
  const size_t t_max = emissions.rows();
  gamma = EmissionMatrix(t_max, n);
  // semitri-lint: allow(exec-checkpoint-coverage) — O(T·N)
  // normalization right after ForwardBackward; no checkpoint is in
  // scope in this free training-path function.
  for (size_t t = 0; t < t_max; ++t) {
    const double* alpha_t = work.alpha.data() + t * n;
    const double* beta_t = work.beta.data() + t * n;
    std::span<double> row = gamma.Row(t);
    double norm = 0.0;
    for (size_t i = 0; i < n; ++i) {
      row[i] = alpha_t[i] * beta_t[i];
      norm += row[i];
    }
    if (norm <= 0.0) {
      // Degenerate; fall back to uniform.
      for (double& g : row) g = 1.0 / static_cast<double>(n);
      continue;
    }
    for (double& g : row) g /= norm;
  }
  return gamma;
}

common::Result<BaumWelchResult> BaumWelch(
    const HmmModel& initial_model, const std::vector<EmissionMatrix>& sequences,
    const BaumWelchOptions& options) {
  SEMITRI_RETURN_IF_ERROR(ValidateModel(initial_model));
  for (const EmissionMatrix& seq : sequences) {
    SEMITRI_RETURN_IF_ERROR(CheckEmissions(initial_model, seq));
  }
  const size_t n = initial_model.num_states();
  BaumWelchResult result;
  result.model = initial_model;
  double previous_ll = -std::numeric_limits<double>::infinity();

  // Expected-count accumulators and the xi buffer, flat n*n, allocated
  // once for the whole EM run.
  std::vector<double> initial_counts(n);
  std::vector<double> transition_counts(n * n);
  std::vector<double> gamma0(n);
  std::vector<double> xi(n * n);
  ForwardBackwardWork work;

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::fill(initial_counts.begin(), initial_counts.end(),
              options.smoothing);
    std::fill(transition_counts.begin(), transition_counts.end(),
              options.smoothing);
    double total_ll = 0.0;
    size_t used_sequences = 0;

    // semitri-lint: allow(exec-checkpoint-coverage) — offline training
    // path with no ExecControl plumbed; bounded by max_iterations and
    // the caller's sequence count, not a serving deadline.
    for (const EmissionMatrix& emissions : sequences) {
      if (emissions.empty()) continue;
      ++used_sequences;
      total_ll += ForwardBackward(result.model, emissions, &work);
      const size_t t_max = emissions.rows();
      const double* a = work.a.data();
      const double* b = work.b_eff.data();
      const double* alpha = work.alpha.data();
      const double* beta = work.beta.data();
      // gamma_0 for π.
      double norm = 0.0;
      for (size_t i = 0; i < n; ++i) {
        gamma0[i] = alpha[i] * beta[i];
        norm += gamma0[i];
      }
      if (norm > 0.0) {
        for (size_t i = 0; i < n; ++i) initial_counts[i] += gamma0[i] / norm;
      }
      // xi_t for A.
      for (size_t t = 0; t + 1 < t_max; ++t) {
        const double* alpha_t = alpha + t * n;
        const double* b_next = b + (t + 1) * n;
        const double* beta_next = beta + (t + 1) * n;
        double xi_norm = 0.0;
        for (size_t i = 0; i < n; ++i) {
          const double* a_row = a + i * n;
          double* xi_row = xi.data() + i * n;
          for (size_t j = 0; j < n; ++j) {
            xi_row[j] = alpha_t[i] * a_row[j] * b_next[j] * beta_next[j];
            xi_norm += xi_row[j];
          }
        }
        if (xi_norm <= 0.0) continue;
        for (size_t k = 0; k < n * n; ++k) {
          transition_counts[k] += xi[k] / xi_norm;
        }
      }
    }
    if (used_sequences == 0) {
      return common::Status::InvalidArgument(
          "Baum-Welch needs at least one non-empty sequence");
    }

    // M step.
    if (options.learn_initial) {
      double pi_sum = 0.0;
      for (double c : initial_counts) pi_sum += c;
      for (size_t i = 0; i < n; ++i) {
        result.model.initial[i] = initial_counts[i] / pi_sum;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      const double* counts_row = transition_counts.data() + i * n;
      double row_sum = 0.0;
      for (size_t j = 0; j < n; ++j) row_sum += counts_row[j];
      SEMITRI_DCHECK(row_sum > 0.0)
          << "transition row " << i << " has zero expected count; "
          << "BaumWelchOptions::smoothing must be > 0 when a state can "
          << "go unobserved";
      for (size_t j = 0; j < n; ++j) {
        result.model.transition[i][j] = counts_row[j] / row_sum;
      }
    }
    result.log_likelihood = total_ll;
    result.iterations = iter + 1;
    if (total_ll - previous_ll < options.tolerance && iter > 0) break;
    previous_ll = total_ll;
  }
  return result;
}

}  // namespace semitri::hmm
