#include "hmm/hmm.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/strings.h"

namespace semitri::hmm {

namespace {

constexpr double kNegInf = -std::numeric_limits<double>::infinity();

double SafeLog(double p) { return p > 0.0 ? std::log(p) : kNegInf; }

// Validates emissions shape against the model; normalizes all-zero rows
// to uniform in log space.
common::Status CheckEmissions(
    const HmmModel& model, const std::vector<std::vector<double>>& emissions) {
  // semitri-lint: allow(exec-checkpoint-coverage) — O(T·N) shape
  // validation before decoding starts; Viterbi itself polls the
  // checkpoint every check_interval steps.
  for (size_t t = 0; t < emissions.size(); ++t) {
    if (emissions[t].size() != model.num_states()) {
      return common::Status::InvalidArgument(common::StrFormat(
          "emission row %zu has %zu entries, model has %zu states", t,
          emissions[t].size(), model.num_states()));
    }
    for (double e : emissions[t]) {
      if (e < 0.0 || !std::isfinite(e)) {
        return common::Status::InvalidArgument(
            "emission probabilities must be finite and nonnegative");
      }
    }
  }
  return common::Status::OK();
}

double RowEmission(const std::vector<double>& row, size_t i) {
  double sum = 0.0;
  for (double e : row) sum += e;
  if (sum <= 0.0) return 1.0 / static_cast<double>(row.size());
  return row[i];
}

}  // namespace

common::Status ValidateModel(const HmmModel& model) {
  const size_t n = model.num_states();
  if (n == 0) {
    return common::Status::InvalidArgument("model has no states");
  }
  if (model.transition.size() != n) {
    return common::Status::InvalidArgument(common::StrFormat(
        "transition matrix has %zu rows, expected %zu",
        model.transition.size(), n));
  }
  double pi_sum = 0.0;
  for (double p : model.initial) {
    if (p < 0.0) {
      return common::Status::InvalidArgument("negative initial probability");
    }
    pi_sum += p;
  }
  if (std::abs(pi_sum - 1.0) > 1e-6) {
    return common::Status::InvalidArgument(
        common::StrFormat("initial probabilities sum to %f, not 1", pi_sum));
  }
  for (size_t i = 0; i < n; ++i) {
    if (model.transition[i].size() != n) {
      return common::Status::InvalidArgument(common::StrFormat(
          "transition row %zu has %zu entries, expected %zu", i,
          model.transition[i].size(), n));
    }
    double row_sum = 0.0;
    for (double p : model.transition[i]) {
      if (p < 0.0) {
        return common::Status::InvalidArgument(
            "negative transition probability");
      }
      row_sum += p;
    }
    if (std::abs(row_sum - 1.0) > 1e-6) {
      return common::Status::InvalidArgument(common::StrFormat(
          "transition row %zu sums to %f, not 1", i, row_sum));
    }
  }
  return common::Status::OK();
}

std::vector<std::vector<double>> MakeDefaultTransition(size_t num_states,
                                                       double self_prob) {
  std::vector<std::vector<double>> a(num_states,
                                     std::vector<double>(num_states));
  double off = num_states > 1
                   ? (1.0 - self_prob) / static_cast<double>(num_states - 1)
                   : 0.0;
  for (size_t i = 0; i < num_states; ++i) {
    for (size_t j = 0; j < num_states; ++j) {
      a[i][j] = i == j ? (num_states == 1 ? 1.0 : self_prob) : off;
    }
  }
  return a;
}

common::Result<ViterbiResult> Viterbi(
    const HmmModel& model,
    const std::vector<std::vector<double>>& emissions,
    const common::ExecControl* exec) {
  SEMITRI_RETURN_IF_ERROR(ValidateModel(model));
  SEMITRI_RETURN_IF_ERROR(CheckEmissions(model, emissions));
  ViterbiResult result;
  if (emissions.empty()) return result;

  const size_t n = model.num_states();
  const size_t t_max = emissions.size();
  common::ExecCheckpoint checkpoint(exec);
  // delta[t][i] (Eq. 5–6) and backpointers psi[t][i] (Eq. 7).
  std::vector<std::vector<double>> delta(t_max, std::vector<double>(n));
  std::vector<std::vector<size_t>> psi(t_max, std::vector<size_t>(n, 0));

  for (size_t i = 0; i < n; ++i) {
    delta[0][i] =
        SafeLog(model.initial[i]) + SafeLog(RowEmission(emissions[0], i));
  }
  for (size_t t = 1; t < t_max; ++t) {
    SEMITRI_RETURN_IF_ERROR(checkpoint.Check("hmm_viterbi"));
    for (size_t j = 0; j < n; ++j) {
      double best = kNegInf;
      size_t best_i = 0;
      for (size_t i = 0; i < n; ++i) {
        double v = delta[t - 1][i] + SafeLog(model.transition[i][j]);
        if (v > best) {
          best = v;
          best_i = i;
        }
      }
      delta[t][j] = best + SafeLog(RowEmission(emissions[t], j));
      psi[t][j] = best_i;
    }
  }
  // Termination + backtracking (Algorithm 3 lines 12–16).
  size_t best_state = 0;
  double best = kNegInf;
  for (size_t i = 0; i < n; ++i) {
    if (delta[t_max - 1][i] > best) {
      best = delta[t_max - 1][i];
      best_state = i;
    }
  }
  SEMITRI_DCHECK(best_state < n)
      << "Viterbi termination chose state " << best_state << " of " << n;
  result.log_probability = best;
  result.states.resize(t_max);
  result.states[t_max - 1] = best_state;
  for (size_t t = t_max - 1; t > 0; --t) {
    result.states[t - 1] = psi[t][result.states[t]];
  }
  return result;
}

common::Result<double> ForwardLogLikelihood(
    const HmmModel& model,
    const std::vector<std::vector<double>>& emissions) {
  SEMITRI_RETURN_IF_ERROR(ValidateModel(model));
  SEMITRI_RETURN_IF_ERROR(CheckEmissions(model, emissions));
  if (emissions.empty()) return 0.0;

  const size_t n = model.num_states();
  // Scaled forward recursion: alpha is renormalized each step and the
  // log of the scale factors accumulates into the total likelihood.
  std::vector<double> alpha(n);
  double log_likelihood = 0.0;
  for (size_t i = 0; i < n; ++i) {
    alpha[i] = model.initial[i] * RowEmission(emissions[0], i);
  }
  for (size_t t = 0;; ++t) {
    double scale = 0.0;
    for (double a : alpha) scale += a;
    if (scale <= 0.0) {
      return common::Status::InvalidArgument(
          "observation sequence has zero likelihood under the model");
    }
    for (double& a : alpha) a /= scale;
    log_likelihood += std::log(scale);
    if (t + 1 == emissions.size()) break;
    std::vector<double> next(n, 0.0);
    for (size_t j = 0; j < n; ++j) {
      double acc = 0.0;
      for (size_t i = 0; i < n; ++i) {
        acc += alpha[i] * model.transition[i][j];
      }
      next[j] = acc * RowEmission(emissions[t + 1], j);
    }
    alpha.swap(next);
  }
  return log_likelihood;
}

namespace {

// Per-timestep-normalized forward/backward variables for one sequence.
// Returns the sequence log-likelihood.
double ForwardBackward(const HmmModel& model,
                       const std::vector<std::vector<double>>& emissions,
                       std::vector<std::vector<double>>* alpha,
                       std::vector<std::vector<double>>* beta) {
  // Callers validate the model and skip empty sequences; the backward
  // recursion below would index emissions[t_max - 1] otherwise.
  SEMITRI_DCHECK(!emissions.empty())
      << "ForwardBackward requires a non-empty observation sequence";
  const size_t n = model.num_states();
  const size_t t_max = emissions.size();
  alpha->assign(t_max, std::vector<double>(n, 0.0));
  beta->assign(t_max, std::vector<double>(n, 1.0));
  std::vector<double> scale(t_max, 0.0);

  for (size_t i = 0; i < n; ++i) {
    (*alpha)[0][i] = model.initial[i] * RowEmission(emissions[0], i);
  }
  double log_likelihood = 0.0;
  for (size_t t = 0; t < t_max; ++t) {
    if (t > 0) {
      for (size_t j = 0; j < n; ++j) {
        double acc = 0.0;
        for (size_t i = 0; i < n; ++i) {
          acc += (*alpha)[t - 1][i] * model.transition[i][j];
        }
        (*alpha)[t][j] = acc * RowEmission(emissions[t], j);
      }
    }
    double c = 0.0;
    for (double a : (*alpha)[t]) c += a;
    if (c <= 0.0) c = 1e-300;
    for (double& a : (*alpha)[t]) a /= c;
    scale[t] = c;
    log_likelihood += std::log(c);
  }
  for (size_t t = t_max - 1; t-- > 0;) {
    for (size_t i = 0; i < n; ++i) {
      double acc = 0.0;
      for (size_t j = 0; j < n; ++j) {
        acc += model.transition[i][j] * RowEmission(emissions[t + 1], j) *
               (*beta)[t + 1][j];
      }
      (*beta)[t][i] = acc / scale[t + 1];
    }
  }
  return log_likelihood;
}

}  // namespace

common::Result<std::vector<std::vector<double>>> PosteriorDecode(
    const HmmModel& model,
    const std::vector<std::vector<double>>& emissions) {
  SEMITRI_RETURN_IF_ERROR(ValidateModel(model));
  SEMITRI_RETURN_IF_ERROR(CheckEmissions(model, emissions));
  std::vector<std::vector<double>> gamma;
  if (emissions.empty()) return gamma;
  std::vector<std::vector<double>> alpha, beta;
  ForwardBackward(model, emissions, &alpha, &beta);
  const size_t n = model.num_states();
  gamma.assign(emissions.size(), std::vector<double>(n, 0.0));
  // semitri-lint: allow(exec-checkpoint-coverage) — O(T·N)
  // normalization right after ForwardBackward; no checkpoint is in
  // scope in this free training-path function.
  for (size_t t = 0; t < emissions.size(); ++t) {
    double norm = 0.0;
    for (size_t i = 0; i < n; ++i) {
      gamma[t][i] = alpha[t][i] * beta[t][i];
      norm += gamma[t][i];
    }
    if (norm <= 0.0) {
      // Degenerate; fall back to uniform.
      for (double& g : gamma[t]) g = 1.0 / static_cast<double>(n);
      continue;
    }
    for (double& g : gamma[t]) g /= norm;
  }
  return gamma;
}

common::Result<BaumWelchResult> BaumWelch(
    const HmmModel& initial_model,
    const std::vector<std::vector<std::vector<double>>>& sequences,
    const BaumWelchOptions& options) {
  SEMITRI_RETURN_IF_ERROR(ValidateModel(initial_model));
  for (const auto& seq : sequences) {
    SEMITRI_RETURN_IF_ERROR(CheckEmissions(initial_model, seq));
  }
  const size_t n = initial_model.num_states();
  BaumWelchResult result;
  result.model = initial_model;
  double previous_ll = -std::numeric_limits<double>::infinity();

  for (size_t iter = 0; iter < options.max_iterations; ++iter) {
    std::vector<double> initial_counts(n, options.smoothing);
    std::vector<std::vector<double>> transition_counts(
        n, std::vector<double>(n, options.smoothing));
    double total_ll = 0.0;
    size_t used_sequences = 0;

    std::vector<std::vector<double>> alpha, beta;
    // semitri-lint: allow(exec-checkpoint-coverage) — offline training
    // path with no ExecControl plumbed; bounded by max_iterations and
    // the caller's sequence count, not a serving deadline.
    for (const auto& emissions : sequences) {
      if (emissions.empty()) continue;
      ++used_sequences;
      total_ll += ForwardBackward(result.model, emissions, &alpha, &beta);
      const size_t t_max = emissions.size();
      // gamma_0 for π.
      double norm = 0.0;
      std::vector<double> gamma0(n);
      for (size_t i = 0; i < n; ++i) {
        gamma0[i] = alpha[0][i] * beta[0][i];
        norm += gamma0[i];
      }
      if (norm > 0.0) {
        for (size_t i = 0; i < n; ++i) initial_counts[i] += gamma0[i] / norm;
      }
      // xi_t for A.
      for (size_t t = 0; t + 1 < t_max; ++t) {
        double xi_norm = 0.0;
        std::vector<std::vector<double>> xi(n, std::vector<double>(n));
        for (size_t i = 0; i < n; ++i) {
          for (size_t j = 0; j < n; ++j) {
            xi[i][j] = alpha[t][i] * result.model.transition[i][j] *
                       RowEmission(emissions[t + 1], j) * beta[t + 1][j];
            xi_norm += xi[i][j];
          }
        }
        if (xi_norm <= 0.0) continue;
        for (size_t i = 0; i < n; ++i) {
          for (size_t j = 0; j < n; ++j) {
            transition_counts[i][j] += xi[i][j] / xi_norm;
          }
        }
      }
    }
    if (used_sequences == 0) {
      return common::Status::InvalidArgument(
          "Baum-Welch needs at least one non-empty sequence");
    }

    // M step.
    if (options.learn_initial) {
      double pi_sum = 0.0;
      for (double c : initial_counts) pi_sum += c;
      for (size_t i = 0; i < n; ++i) {
        result.model.initial[i] = initial_counts[i] / pi_sum;
      }
    }
    for (size_t i = 0; i < n; ++i) {
      double row_sum = 0.0;
      for (double c : transition_counts[i]) row_sum += c;
      SEMITRI_DCHECK(row_sum > 0.0)
          << "transition row " << i << " has zero expected count; "
          << "BaumWelchOptions::smoothing must be > 0 when a state can "
          << "go unobserved";
      for (size_t j = 0; j < n; ++j) {
        result.model.transition[i][j] = transition_counts[i][j] / row_sum;
      }
    }
    result.log_likelihood = total_ll;
    result.iterations = iter + 1;
    if (total_ll - previous_ll < options.tolerance && iter > 0) break;
    previous_ll = total_ll;
  }
  return result;
}

}  // namespace semitri::hmm
