#ifndef SEMITRI_HMM_EMISSION_MATRIX_H_
#define SEMITRI_HMM_EMISSION_MATRIX_H_

// Flat row-major T×N matrix for HMM emissions and posteriors.
//
// The decode hot loops (Viterbi, forward, forward-backward) walk one
// contiguous double array instead of chasing T separate vector
// allocations; Reset()/AppendRow() reuse capacity so a streaming
// session fills the same storage run after run (the zero
// steady-state-allocation contract of the annotation scratch).

#include <cstddef>
#include <span>
#include <vector>

#include "common/status.h"

namespace semitri::hmm {

class EmissionMatrix {
 public:
  EmissionMatrix() = default;
  EmissionMatrix(size_t rows, size_t cols)
      : rows_(rows), cols_(cols), data_(rows * cols, 0.0) {}

  // Validated conversion from ragged nested rows (tests, model-fitting
  // call sites that assemble sequences by hand). Errors on rows of
  // unequal width — the shape error CheckEmissions used to report
  // per-row now surfaces here, at construction.
  static common::Result<EmissionMatrix> FromRows(
      const std::vector<std::vector<double>>& rows);

  // Clears to 0 rows of `cols` columns, keeping capacity.
  void Reset(size_t cols) {
    rows_ = 0;
    cols_ = cols;
    data_.clear();
  }

  // Appends a zero-filled row and returns it for in-place fill.
  std::span<double> AppendRow() {
    data_.resize(data_.size() + cols_, 0.0);
    ++rows_;
    return Row(rows_ - 1);
  }

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }
  bool empty() const { return rows_ == 0; }

  std::span<double> Row(size_t t) {
    return {data_.data() + t * cols_, cols_};
  }
  std::span<const double> Row(size_t t) const {
    return {data_.data() + t * cols_, cols_};
  }

  double At(size_t t, size_t i) const { return data_[t * cols_ + i]; }
  double& At(size_t t, size_t i) { return data_[t * cols_ + i]; }

  const std::vector<double>& data() const { return data_; }

  bool operator==(const EmissionMatrix&) const = default;

 private:
  size_t rows_ = 0;
  size_t cols_ = 0;
  std::vector<double> data_;  // data_[t * cols_ + i]
};

}  // namespace semitri::hmm

#endif  // SEMITRI_HMM_EMISSION_MATRIX_H_
