#include "stream/session_manager.h"

#include <algorithm>
#include <utility>

#include "common/check.h"

namespace semitri::stream {

namespace {

void Accumulate(const AnnotationSession::Stats& from,
                SessionManager::Stats* to) {
  to->points_fed += from.detector.points_fed;
  to->points_rejected += from.detector.points_rejected;
  to->episodes_closed += from.detector.episodes_closed;
  to->trajectories_closed += from.detector.trajectories_closed;
  to->trajectories_discarded += from.detector.trajectories_discarded;
  to->forced_splits += from.detector.forced_splits;
  to->annotation_passes += from.annotation_passes;
}

void Accumulate(const AnnotationSession::Stats& from,
                AnnotationSession::Stats* to) {
  to->detector.points_fed += from.detector.points_fed;
  to->detector.points_rejected += from.detector.points_rejected;
  to->detector.episodes_closed += from.detector.episodes_closed;
  to->detector.trajectories_closed += from.detector.trajectories_closed;
  to->detector.trajectories_discarded += from.detector.trajectories_discarded;
  to->detector.forced_splits += from.detector.forced_splits;
  to->annotation_passes += from.annotation_passes;
}

}  // namespace

SessionManager::SessionManager(const core::SemiTriPipeline* pipeline,
                               SessionManagerConfig config)
    : pipeline_(pipeline), config_(config) {
  SEMITRI_CHECK(config_.num_shards > 0) << "num_shards must be positive";
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SessionManager::Shard& SessionManager::ShardFor(
    core::ObjectId object_id) const {
  // Fibonacci mixing: consecutive object ids spread across shards.
  uint64_t h = static_cast<uint64_t>(object_id) * 0x9E3779B97F4A7C15ull;
  return *shards_[h % shards_.size()];
}

common::Result<AnnotationSession::FeedResult> SessionManager::Feed(
    core::ObjectId object_id, const core::GpsPoint& fix) {
  Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.sessions.try_emplace(object_id);
  if (inserted) {
    it->second.session = std::make_unique<AnnotationSession>(
        pipeline_, object_id, config_.session,
        object_id * config_.ids_per_object);
    ++shard.opened;
  }
  it->second.last_feed = std::chrono::steady_clock::now();
  return it->second.session->Feed(fix);
}

common::Status SessionManager::Flush(core::ObjectId object_id) {
  Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sessions.find(object_id);
  if (it == shard.sessions.end()) {
    return common::Status::NotFound("no live session for this object");
  }
  return it->second.session->Flush();
}

common::Status SessionManager::RetireLocked(
    Shard& shard, std::map<core::ObjectId, Entry>::iterator it) {
  common::Status status = it->second.session->Flush();
  Accumulate(it->second.session->stats(), &shard.retired);
  ++shard.evicted;
  shard.sessions.erase(it);
  return status;
}

common::Status SessionManager::Close(core::ObjectId object_id) {
  Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sessions.find(object_id);
  if (it == shard.sessions.end()) {
    return common::Status::NotFound("no live session for this object");
  }
  return RetireLocked(shard, it);
}

common::Status SessionManager::CloseAll() {
  common::Status first = common::Status::OK();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    while (!shard->sessions.empty()) {
      common::Status status =
          RetireLocked(*shard, shard->sessions.begin());
      if (!status.ok() && first.ok()) first = status;
    }
  }
  return first;
}

common::Result<size_t> SessionManager::EvictIdle(double max_idle_seconds) {
  const auto now = std::chrono::steady_clock::now();
  common::Status first = common::Status::OK();
  size_t evicted = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->sessions.begin(); it != shard->sessions.end();) {
      std::chrono::duration<double> idle = now - it->second.last_feed;
      if (idle.count() < max_idle_seconds) {
        ++it;
        continue;
      }
      auto next = std::next(it);
      common::Status status = RetireLocked(*shard, it);
      if (!status.ok() && first.ok()) first = status;
      ++evicted;
      it = next;
    }
  }
  if (!first.ok()) return first;
  return evicted;
}

size_t SessionManager::ActiveSessions() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->sessions.size();
  }
  return total;
}

SessionManager::Stats SessionManager::stats() const {
  Stats out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.active_sessions += shard->sessions.size();
    out.sessions_opened += shard->opened;
    out.sessions_evicted += shard->evicted;
    Accumulate(shard->retired, &out);
    for (const auto& [id, entry] : shard->sessions) {
      Accumulate(entry.session->stats(), &out);
    }
  }
  return out;
}

}  // namespace semitri::stream
