#include "stream/session_manager.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/serial.h"

namespace semitri::stream {

namespace {

// Streaming-checkpoint file: u32 magic, u32 version, then the
// serialized payload, all wrapped as u32 payload size + u32 crc32 so a
// torn or bit-flipped file is rejected as Corruption, never half-read.
constexpr uint32_t kCheckpointMagic = 0x534D434Bu;  // "SMCK"
// v2 adds the trajectory-id resume cursors of retired objects (the
// eviction × reconnect seam must survive a restart too). v1 files
// (no cursor map) are still readable.
constexpr uint32_t kCheckpointVersion = 2;

void Accumulate(const AnnotationSession::Stats& from,
                SessionManager::Stats* to) {
  to->points_fed += from.detector.points_fed;
  to->points_rejected += from.detector.points_rejected;
  to->episodes_closed += from.detector.episodes_closed;
  to->trajectories_closed += from.detector.trajectories_closed;
  to->trajectories_discarded += from.detector.trajectories_discarded;
  to->forced_splits += from.detector.forced_splits;
  to->annotation_passes += from.annotation_passes;
}

void Accumulate(const AnnotationSession::Stats& from,
                AnnotationSession::Stats* to) {
  to->detector.points_fed += from.detector.points_fed;
  to->detector.points_rejected += from.detector.points_rejected;
  to->detector.episodes_closed += from.detector.episodes_closed;
  to->detector.trajectories_closed += from.detector.trajectories_closed;
  to->detector.trajectories_discarded += from.detector.trajectories_discarded;
  to->detector.forced_splits += from.detector.forced_splits;
  to->annotation_passes += from.annotation_passes;
}

}  // namespace

// --- ActivityTracker --------------------------------------------------

void SessionManager::ActivityTracker::Touch(core::ObjectId id,
                                            int64_t tick) {
  std::lock_guard<std::mutex> lock(mutex_);
  auto [it, inserted] = latest_.try_emplace(id, tick);
  if (inserted) {
    // First sighting: the object's single heap entry.
    heap_.push({tick, id});
    return;
  }
  // Known object: only advance the authoritative tick. Its existing
  // heap entry goes stale and is re-pushed lazily on pop, keeping the
  // one-entry-per-object invariant (heap size stays O(live sessions)).
  if (tick > it->second) it->second = tick;
}

void SessionManager::ActivityTracker::Remove(core::ObjectId id) {
  std::lock_guard<std::mutex> lock(mutex_);
  latest_.erase(id);
}

std::optional<std::pair<core::ObjectId, int64_t>>
SessionManager::ActivityTracker::PopOldest(int64_t cutoff) {
  std::lock_guard<std::mutex> lock(mutex_);
  while (!heap_.empty()) {
    HeapEntry top = heap_.top();
    auto it = latest_.find(top.id);
    if (it == latest_.end()) {
      heap_.pop();  // removed object: drop the dead entry
      continue;
    }
    if (it->second > top.tick) {
      heap_.pop();  // stale: re-push with the authoritative tick
      heap_.push({it->second, top.id});
      continue;
    }
    if (top.tick > cutoff) return std::nullopt;  // oldest is too fresh
    heap_.pop();
    latest_.erase(it);
    return std::make_pair(top.id, top.tick);
  }
  return std::nullopt;
}

void SessionManager::ActivityTracker::Clear() {
  std::lock_guard<std::mutex> lock(mutex_);
  heap_ = {};
  latest_.clear();
}

// --- SessionManager ---------------------------------------------------

SessionManager::SessionManager(const core::SemiTriPipeline* pipeline,
                               SessionManagerConfig config,
                               const common::Clock* clock)
    : pipeline_(pipeline),
      config_(config),
      env_(common::ResolveEnv(config_.env)),
      clock_(clock != nullptr ? clock : common::Clock::Real()) {
  SEMITRI_CHECK(config_.num_shards > 0) << "num_shards must be positive";
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SessionManager::Shard& SessionManager::ShardFor(
    core::ObjectId object_id) const {
  // Fibonacci mixing: consecutive object ids spread across shards.
  uint64_t h = static_cast<uint64_t>(object_id) * 0x9E3779B97F4A7C15ull;
  return *shards_[h % shards_.size()];
}

bool SessionManager::OverBudget() const {
  const AdmissionConfig& adm = config_.admission;
  size_t sessions = live_sessions_.load(std::memory_order_relaxed);
  int64_t fixes = buffered_fixes_.load(std::memory_order_relaxed);
  size_t fixes_u = fixes > 0 ? static_cast<size_t>(fixes) : 0;
  if (adm.max_sessions > 0 && sessions > adm.max_sessions) return true;
  if (adm.max_buffered_fixes > 0 && fixes_u > adm.max_buffered_fixes) {
    return true;
  }
  if (adm.max_buffered_bytes > 0 &&
      ApproxBytes(fixes_u, sessions) > adm.max_buffered_bytes) {
    return true;
  }
  return false;
}

bool SessionManager::ShedOldestIdle(core::ObjectId exclude) {
  for (;;) {
    std::optional<std::pair<core::ObjectId, int64_t>> oldest =
        activity_.PopOldest();
    if (!oldest.has_value()) return false;
    if (oldest->first == exclude) {
      // Never shed the session we are admitting work for; put it back
      // and look for the next-oldest candidate once, below.
      std::optional<std::pair<core::ObjectId, int64_t>> next =
          activity_.PopOldest();
      activity_.Touch(oldest->first, oldest->second);
      if (!next.has_value()) return false;
      oldest = next;
    }
    Shard& shard = ShardFor(oldest->first);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.sessions.find(oldest->first);
    if (it == shard.sessions.end()) continue;  // raced with Close
    // Shedding goes through the flushing Close path: the open
    // trajectory is finalized into the (durable) store before the
    // session is dropped, so shed rows survive and nothing is lost.
    // Shedding is best-effort; a flush failure must not abort the
    // overload response, so the status is deliberately dropped.
    (void)RetireLocked(shard, it);
    sessions_shed_.fetch_add(1, std::memory_order_relaxed);
    return true;
  }
}

common::Status SessionManager::ResolveOverload(core::ObjectId exclude) {
  const AdmissionConfig& adm = config_.admission;
  switch (adm.overload_policy) {
    case OverloadPolicy::kRejectNew:
      return common::Status::ResourceExhausted(
          "admission budget exceeded (policy: reject-new)");
    case OverloadPolicy::kShedOldestIdle:
      while (OverBudget()) {
        if (!ShedOldestIdle(exclude)) {
          return common::Status::ResourceExhausted(
              "admission budget exceeded and nothing left to shed");
        }
      }
      return common::Status::OK();
    case OverloadPolicy::kBlockWithDeadline: {
      admission_deferred_.fetch_add(1, std::memory_order_relaxed);
      const int64_t give_up =
          clock_->NowNanos() +
          static_cast<int64_t>(adm.block_deadline_seconds * 1e9);
      while (OverBudget()) {
        if (clock_->NowNanos() >= give_up) {
          admission_timeouts_.fetch_add(1, std::memory_order_relaxed);
          return common::Status::DeadlineExceeded(
              "admission blocked past block_deadline_seconds");
        }
        // Clock-paced poll: under a FakeClock SleepFor advances fake
        // time, so a test that never frees capacity resolves to the
        // timeout deterministically and in zero wall time.
        clock_->SleepFor(std::max(adm.block_poll_seconds, 1e-4));
      }
      return common::Status::OK();
    }
  }
  return common::Status::Internal("unknown overload policy");
}

bool SessionManager::ConsumeToken(Entry& entry, int64_t now) const {
  const AdmissionConfig& adm = config_.admission;
  if (adm.fix_rate_per_second <= 0.0) return true;
  if (!entry.bucket_primed) {
    entry.tokens = adm.fix_burst;
    entry.token_refill_nanos = now;
    entry.bucket_primed = true;
  }
  double elapsed = static_cast<double>(now - entry.token_refill_nanos) * 1e-9;
  if (elapsed > 0.0) {
    entry.tokens = std::min(adm.fix_burst,
                            entry.tokens + elapsed * adm.fix_rate_per_second);
    entry.token_refill_nanos = now;
  }
  if (entry.tokens < 1.0) return false;
  entry.tokens -= 1.0;
  return true;
}

common::Result<AnnotationSession::FeedResult> SessionManager::Feed(
    core::ObjectId object_id, const core::GpsPoint& fix) {
  // Deterministic overload simulation: an armed "admission_reject" site
  // turns this feed away exactly as a full system would.
  if (SEMITRI_FAULT_FIRE("admission_reject") != common::FaultAction::kNone) {
    overload_rejected_fixes_.fetch_add(1, std::memory_order_relaxed);
    return common::Status::ResourceExhausted(
        "injected admission rejection (fault site admission_reject)");
  }

  Shard& shard = ShardFor(object_id);

  // Optimistically claim one buffered fix (reconciled to the true delta
  // after the detector consumed it, rolled back on rejection).
  buffered_fixes_.fetch_add(1, std::memory_order_relaxed);
  bool claimed_session = false;
  auto rollback = [&]() {
    buffered_fixes_.fetch_sub(1, std::memory_order_relaxed);
    if (claimed_session) {
      live_sessions_.fetch_sub(1, std::memory_order_relaxed);
    }
  };

  // Does the session exist yet? (Short lock; admission must not hold a
  // shard lock, since shedding locks *other* shards.)
  bool exists;
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    exists = shard.sessions.find(object_id) != shard.sessions.end();
  }
  if (!exists) {
    live_sessions_.fetch_add(1, std::memory_order_relaxed);
    claimed_session = true;
  }
  if (OverBudget()) {
    common::Status admitted = ResolveOverload(object_id);
    if (!admitted.ok()) {
      rollback();
      if (claimed_session) {
        admission_rejected_sessions_.fetch_add(1, std::memory_order_relaxed);
      } else {
        overload_rejected_fixes_.fetch_add(1, std::memory_order_relaxed);
      }
      return admitted;
    }
  }

  const int64_t now = clock_->NowNanos();
  common::Result<AnnotationSession::FeedResult> result(
      AnnotationSession::FeedResult{});
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto [it, inserted] = shard.sessions.try_emplace(object_id);
    if (inserted) {
      // A reconnecting object resumes its trajectory-id cursor where
      // the retired session stopped; only a genuinely new object
      // starts at the base of its id block.
      core::TrajectoryId first_id = object_id * config_.ids_per_object;
      auto resume = shard.resume_ids.find(object_id);
      if (resume != shard.resume_ids.end()) first_id = resume->second;
      it->second.session = std::make_unique<AnnotationSession>(
          pipeline_, object_id, config_.session, first_id);
      ++shard.opened;
      if (!claimed_session) {
        // The session vanished between the existence check and now
        // (closed/shed concurrently); account for the re-creation.
        live_sessions_.fetch_add(1, std::memory_order_relaxed);
      }
    } else if (claimed_session) {
      // Raced with a concurrent creator: give the claim back.
      live_sessions_.fetch_sub(1, std::memory_order_relaxed);
      claimed_session = false;
    }
    Entry& entry = it->second;
    if (!ConsumeToken(entry, now)) {
      rate_limited_fixes_.fetch_add(1, std::memory_order_relaxed);
      buffered_fixes_.fetch_sub(1, std::memory_order_relaxed);
      return common::Status::ResourceExhausted(
          "fix rate limit exceeded for this object (token bucket empty)");
    }
    entry.last_feed_nanos = now;
    result = entry.session->Feed(fix);
    // Reconcile the optimistic +1 claim to the session's true buffered
    // count (a rejected fix adds nothing; a trajectory close releases
    // the whole buffer).
    size_t buffered = entry.session->buffered_points();
    int64_t delta = static_cast<int64_t>(buffered) -
                    static_cast<int64_t>(entry.charged_fixes);
    entry.charged_fixes = buffered;
    buffered_fixes_.fetch_add(delta - 1, std::memory_order_relaxed);
  }
  activity_.Touch(object_id, now);
  return result;
}

common::Status SessionManager::Flush(core::ObjectId object_id) {
  Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sessions.find(object_id);
  if (it == shard.sessions.end()) {
    return common::Status::NotFound("no live session for this object");
  }
  common::Status status = it->second.session->Flush();
  // A flush finalizes the open trajectory: release its buffer charge.
  size_t buffered = it->second.session->buffered_points();
  int64_t delta = static_cast<int64_t>(buffered) -
                  static_cast<int64_t>(it->second.charged_fixes);
  it->second.charged_fixes = buffered;
  buffered_fixes_.fetch_add(delta, std::memory_order_relaxed);
  return status;
}

common::Status SessionManager::RetireLocked(
    Shard& shard, std::map<core::ObjectId, Entry>::iterator it) {
  // Eviction goes through the flushing Close path: provisional rows of
  // the open trajectory are finalized before the session is dropped.
  // Only when that flush itself fails is buffered work actually lost —
  // counted so operators can see degraded evictions in stats().
  bool had_open = it->second.session->has_open_state();
  common::Status status = it->second.session->Flush();
  if (!status.ok() && had_open) ++shard.evicted_with_data_loss;
  Accumulate(it->second.session->stats(), &shard.retired);
  ++shard.evicted;
  // Post-flush cursor (the flush may have consumed an id finalizing
  // the open trajectory): where a reconnecting session resumes.
  shard.resume_ids[it->first] =
      it->second.session->detector().next_trajectory_id();
  // Release the session's global budget charges and drop it from the
  // activity heap (shard -> tracker lock order, same as Feed).
  buffered_fixes_.fetch_sub(static_cast<int64_t>(it->second.charged_fixes),
                            std::memory_order_relaxed);
  live_sessions_.fetch_sub(1, std::memory_order_relaxed);
  activity_.Remove(it->first);
  shard.sessions.erase(it);
  return status;
}

common::Status SessionManager::Close(core::ObjectId object_id) {
  Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sessions.find(object_id);
  if (it == shard.sessions.end()) {
    return common::Status::NotFound("no live session for this object");
  }
  return RetireLocked(shard, it);
}

common::Status SessionManager::CloseAll() {
  common::Status first = common::Status::OK();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    while (!shard->sessions.empty()) {
      common::Status status =
          RetireLocked(*shard, shard->sessions.begin());
      if (!status.ok() && first.ok()) first = status;
    }
  }
  return first;
}

common::Result<size_t> SessionManager::EvictIdle(double max_idle_seconds) {
  const int64_t cutoff =
      clock_->NowNanos() - static_cast<int64_t>(max_idle_seconds * 1e9);
  common::Status first = common::Status::OK();
  size_t evicted = 0;
  // Heap-driven: pop candidates whose last activity predates the
  // cutoff; the shard's own last_feed is re-checked under the lock (a
  // feed may have slipped in after the pop — such a session is put
  // back, not evicted).
  for (;;) {
    std::optional<std::pair<core::ObjectId, int64_t>> oldest =
        activity_.PopOldest(cutoff);
    if (!oldest.has_value()) break;
    Shard& shard = ShardFor(oldest->first);
    std::lock_guard<std::mutex> lock(shard.mutex);
    auto it = shard.sessions.find(oldest->first);
    if (it == shard.sessions.end()) continue;  // raced with Close
    if (it->second.last_feed_nanos > cutoff) {
      activity_.Touch(oldest->first, it->second.last_feed_nanos);
      continue;
    }
    common::Status status = RetireLocked(shard, it);
    if (!status.ok() && first.ok()) first = status;
    ++evicted;
  }
  if (!first.ok()) return first;
  return evicted;
}

bool SessionManager::HasLiveSession(core::ObjectId object_id) const {
  Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  return shard.sessions.find(object_id) != shard.sessions.end();
}

size_t SessionManager::ActiveSessions() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->sessions.size();
  }
  return total;
}

common::Status SessionManager::Checkpoint(const std::string& path) const {
  common::StateWriter payload;
  payload.PutU32(kCheckpointMagic);
  payload.PutU32(kCheckpointVersion);

  // Retired counters, aggregated across shards (shard assignment is a
  // function of object id, so per-shard attribution is reconstructed
  // implicitly on restore; the aggregates land in shard 0).
  size_t opened = 0;
  size_t evicted = 0;
  size_t data_loss = 0;
  AnnotationSession::Stats retired;
  size_t live = 0;
  std::map<core::ObjectId, core::TrajectoryId> resume;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    opened += shard->opened;
    evicted += shard->evicted;
    data_loss += shard->evicted_with_data_loss;
    Accumulate(shard->retired, &retired);
    live += shard->sessions.size();
    for (const auto& [object_id, next_id] : shard->resume_ids) {
      resume[object_id] = next_id;
    }
  }
  payload.PutU64(opened);
  payload.PutU64(evicted);
  payload.PutU64(data_loss);
  payload.PutU64(retired.detector.points_fed);
  payload.PutU64(retired.detector.points_rejected);
  payload.PutU64(retired.detector.episodes_closed);
  payload.PutU64(retired.detector.trajectories_closed);
  payload.PutU64(retired.detector.trajectories_discarded);
  payload.PutU64(retired.detector.forced_splits);
  payload.PutU64(retired.annotation_passes);

  payload.PutU64(resume.size());
  for (const auto& [object_id, next_id] : resume) {
    payload.PutI64(object_id);
    payload.PutI64(next_id);
  }

  payload.PutU64(live);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [object_id, entry] : shard->sessions) {
      payload.PutI64(object_id);
      entry.session->SaveState(&payload);
    }
  }

  common::StateWriter framed;
  framed.PutU32(static_cast<uint32_t>(payload.data().size()));
  framed.PutU32(common::Crc32(payload.data()));
  std::string bytes = framed.Release() + payload.Release();

  // tmp + fsync + rename: the previous checkpoint stays intact until
  // the new one is fully on disk. A failed write or flip sweeps its
  // own tmp so retries start clean (and a full disk is not made worse
  // by staging garbage).
  std::string tmp = path + ".tmp";
  common::Status wrote = env_->WriteStringToFile(tmp, bytes, /*sync=*/true);
  if (wrote.ok()) {
    wrote = env_->RenameFile(tmp, path);
    if (!wrote.ok()) {
      wrote = common::Status::IoError("cannot commit checkpoint " + path +
                                      ": " + wrote.message());
    }
  }
  if (!wrote.ok()) {
    (void)env_->RemoveFile(tmp);
    return wrote;
  }
  return common::Status::OK();
}

common::Status SessionManager::Restore(const std::string& path) {
  std::string bytes;
  {
    common::Status read = env_->ReadFileToString(path, &bytes);
    if (!read.ok()) {
      return common::Status::IoError("cannot open " + path + ": " +
                                     read.message());
    }
  }
  common::StateReader frame(bytes);
  uint32_t size = 0;
  uint32_t crc = 0;
  SEMITRI_RETURN_IF_ERROR(frame.GetU32(&size));
  SEMITRI_RETURN_IF_ERROR(frame.GetU32(&crc));
  if (frame.remaining() != size) {
    return common::Status::Corruption("checkpoint size mismatch (torn file)");
  }
  std::string_view payload(bytes.data() + bytes.size() - size, size);
  if (common::Crc32(payload) != crc) {
    return common::Status::Corruption("checkpoint crc mismatch");
  }

  common::StateReader r(payload);
  uint32_t magic = 0;
  uint32_t version = 0;
  SEMITRI_RETURN_IF_ERROR(r.GetU32(&magic));
  SEMITRI_RETURN_IF_ERROR(r.GetU32(&version));
  if (magic != kCheckpointMagic) {
    return common::Status::Corruption("not a session checkpoint file");
  }
  if (version < 1 || version > kCheckpointVersion) {
    return common::Status::Corruption("unsupported checkpoint version");
  }

  uint64_t opened = 0;
  uint64_t evicted = 0;
  uint64_t data_loss = 0;
  AnnotationSession::Stats retired;
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&opened));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&evicted));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&data_loss));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&retired.detector.points_fed));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&retired.detector.points_rejected));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&retired.detector.episodes_closed));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&retired.detector.trajectories_closed));
  SEMITRI_RETURN_IF_ERROR(
      r.GetU64(&retired.detector.trajectories_discarded));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&retired.detector.forced_splits));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&retired.annotation_passes));

  std::map<core::ObjectId, core::TrajectoryId> resume;
  if (version >= 2) {
    uint64_t resume_count = 0;
    SEMITRI_RETURN_IF_ERROR(r.GetU64(&resume_count));
    if (resume_count > r.remaining()) {
      return common::Status::Corruption("resume cursor count exceeds data");
    }
    for (uint64_t i = 0; i < resume_count; ++i) {
      int64_t object_id = 0;
      int64_t next_id = 0;
      SEMITRI_RETURN_IF_ERROR(r.GetI64(&object_id));
      SEMITRI_RETURN_IF_ERROR(r.GetI64(&next_id));
      resume[object_id] = next_id;
    }
  }

  uint64_t live = 0;
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&live));
  if (live > r.remaining()) {
    return common::Status::Corruption("session count exceeds data");
  }

  const int64_t now = clock_->NowNanos();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->sessions.clear();
    shard->opened = 0;
    shard->evicted = 0;
    shard->evicted_with_data_loss = 0;
    shard->retired = {};
    shard->resume_ids.clear();
  }
  for (const auto& [object_id, next_id] : resume) {
    Shard& shard = ShardFor(object_id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    shard.resume_ids[object_id] = next_id;
  }
  // Budget accounting and the activity heap restart from the restored
  // population (recharged below, per session).
  activity_.Clear();
  live_sessions_.store(0, std::memory_order_relaxed);
  buffered_fixes_.store(0, std::memory_order_relaxed);
  {
    Shard& first = *shards_.front();
    std::lock_guard<std::mutex> lock(first.mutex);
    first.opened = static_cast<size_t>(opened);
    first.evicted = static_cast<size_t>(evicted);
    first.evicted_with_data_loss = static_cast<size_t>(data_loss);
    first.retired = retired;
  }

  for (uint64_t i = 0; i < live; ++i) {
    int64_t object_id = 0;
    SEMITRI_RETURN_IF_ERROR(r.GetI64(&object_id));
    auto session = std::make_unique<AnnotationSession>(
        pipeline_, object_id, config_.session,
        object_id * config_.ids_per_object);
    SEMITRI_RETURN_IF_ERROR(session->RestoreState(&r));
    size_t buffered = session->buffered_points();
    Shard& shard = ShardFor(object_id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    Entry& entry = shard.sessions[object_id];
    entry.session = std::move(session);
    entry.last_feed_nanos = now;
    entry.charged_fixes = buffered;
    live_sessions_.fetch_add(1, std::memory_order_relaxed);
    buffered_fixes_.fetch_add(static_cast<int64_t>(buffered),
                              std::memory_order_relaxed);
    activity_.Touch(object_id, now);
  }
  sessions_restored_.store(static_cast<size_t>(live),
                           std::memory_order_relaxed);
  resume_cursors_restored_.store(resume.size(), std::memory_order_relaxed);
  if (!r.AtEnd()) {
    return common::Status::Corruption("trailing bytes in checkpoint");
  }
  return common::Status::OK();
}

common::Status SessionManager::PackSession(core::ObjectId object_id,
                                           common::StateWriter* out) const {
  Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sessions.find(object_id);
  auto resume = shard.resume_ids.find(object_id);
  if (it == shard.sessions.end() && resume == shard.resume_ids.end()) {
    return common::Status::NotFound(
        "no live session or resume cursor for this object");
  }
  out->PutI64(object_id);
  if (it != shard.sessions.end()) {
    out->PutU8(1);
    it->second.session->SaveState(out);
  } else {
    // Idle object: only the trajectory-id cursor moves — the
    // destination must keep ascending through the id block when the
    // object reconnects there.
    out->PutU8(0);
    out->PutI64(resume->second);
  }
  return common::Status::OK();
}

common::Status SessionManager::AdoptSession(core::ObjectId object_id,
                                            common::StateReader* in) {
  int64_t packed_object = 0;
  SEMITRI_RETURN_IF_ERROR(in->GetI64(&packed_object));
  if (packed_object != object_id) {
    return common::Status::Corruption(
        "packed session belongs to a different object");
  }
  uint8_t has_session = 0;
  SEMITRI_RETURN_IF_ERROR(in->GetU8(&has_session));
  Shard& shard = ShardFor(object_id);

  if (has_session == 0) {
    int64_t resume_id = 0;
    SEMITRI_RETURN_IF_ERROR(in->GetI64(&resume_id));
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.sessions.find(object_id) != shard.sessions.end()) {
      return common::Status::AlreadyExists(
          "a live session already exists for this object");
    }
    shard.resume_ids[object_id] = resume_id;
    return common::Status::OK();
  }

  auto session = std::make_unique<AnnotationSession>(
      pipeline_, object_id, config_.session,
      object_id * config_.ids_per_object);
  SEMITRI_RETURN_IF_ERROR(session->RestoreState(in));
  size_t buffered = session->buffered_points();
  const int64_t now = clock_->NowNanos();
  {
    std::lock_guard<std::mutex> lock(shard.mutex);
    if (shard.sessions.find(object_id) != shard.sessions.end()) {
      return common::Status::AlreadyExists(
          "a live session already exists for this object");
    }
    Entry& entry = shard.sessions[object_id];
    entry.session = std::move(session);
    entry.last_feed_nanos = now;
    entry.charged_fixes = buffered;
    ++shard.opened;
    // The adopted state is authoritative; a stale cursor from a prior
    // ownership stint here must not shadow it.
    shard.resume_ids.erase(object_id);
  }
  live_sessions_.fetch_add(1, std::memory_order_relaxed);
  buffered_fixes_.fetch_add(static_cast<int64_t>(buffered),
                            std::memory_order_relaxed);
  activity_.Touch(object_id, now);
  return common::Status::OK();
}

SessionManager::Stats SessionManager::stats() const {
  Stats out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.active_sessions += shard->sessions.size();
    out.sessions_opened += shard->opened;
    out.sessions_evicted += shard->evicted;
    out.evictions_with_data_loss += shard->evicted_with_data_loss;
    Accumulate(shard->retired, &out);
    for (const auto& [id, entry] : shard->sessions) {
      Accumulate(entry.session->stats(), &out);
    }
  }
  int64_t fixes = buffered_fixes_.load(std::memory_order_relaxed);
  out.buffered_fixes = fixes > 0 ? static_cast<size_t>(fixes) : 0;
  out.sessions_shed = sessions_shed_.load(std::memory_order_relaxed);
  out.admission_rejected_sessions =
      admission_rejected_sessions_.load(std::memory_order_relaxed);
  out.rate_limited_fixes =
      rate_limited_fixes_.load(std::memory_order_relaxed);
  out.overload_rejected_fixes =
      overload_rejected_fixes_.load(std::memory_order_relaxed);
  out.admission_deferred =
      admission_deferred_.load(std::memory_order_relaxed);
  out.admission_timeouts =
      admission_timeouts_.load(std::memory_order_relaxed);
  out.sessions_restored = sessions_restored_.load(std::memory_order_relaxed);
  out.resume_cursors_restored =
      resume_cursors_restored_.load(std::memory_order_relaxed);
  return out;
}

core::HealthSnapshot SessionManager::Health() const {
  core::HealthSnapshot snapshot = pipeline_->Health();
  const AdmissionConfig& adm = config_.admission;
  size_t sessions = live_sessions_.load(std::memory_order_relaxed);
  int64_t fixes = buffered_fixes_.load(std::memory_order_relaxed);
  size_t fixes_u = fixes > 0 ? static_cast<size_t>(fixes) : 0;
  snapshot.sessions = {sessions, adm.max_sessions};
  snapshot.buffered_fixes = {fixes_u, adm.max_buffered_fixes};
  snapshot.buffered_bytes = {ApproxBytes(fixes_u, sessions),
                             adm.max_buffered_bytes};
  snapshot.sessions_shed = sessions_shed_.load(std::memory_order_relaxed);
  snapshot.admission_rejected_sessions =
      admission_rejected_sessions_.load(std::memory_order_relaxed);
  snapshot.rate_limited_fixes =
      rate_limited_fixes_.load(std::memory_order_relaxed);
  snapshot.overload_rejected_fixes =
      overload_rejected_fixes_.load(std::memory_order_relaxed);
  snapshot.admission_deferred =
      admission_deferred_.load(std::memory_order_relaxed);
  snapshot.admission_timeouts =
      admission_timeouts_.load(std::memory_order_relaxed);
  size_t data_loss = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    data_loss += shard->evicted_with_data_loss;
  }
  snapshot.evictions_with_data_loss = data_loss;
  return snapshot;
}

}  // namespace semitri::stream
