#include "stream/session_manager.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/check.h"
#include "common/serial.h"

namespace semitri::stream {

namespace {

// Streaming-checkpoint file: u32 magic, u32 version, then the
// serialized payload, all wrapped as u32 payload size + u32 crc32 so a
// torn or bit-flipped file is rejected as Corruption, never half-read.
constexpr uint32_t kCheckpointMagic = 0x534D434Bu;  // "SMCK"
constexpr uint32_t kCheckpointVersion = 1;

void Accumulate(const AnnotationSession::Stats& from,
                SessionManager::Stats* to) {
  to->points_fed += from.detector.points_fed;
  to->points_rejected += from.detector.points_rejected;
  to->episodes_closed += from.detector.episodes_closed;
  to->trajectories_closed += from.detector.trajectories_closed;
  to->trajectories_discarded += from.detector.trajectories_discarded;
  to->forced_splits += from.detector.forced_splits;
  to->annotation_passes += from.annotation_passes;
}

void Accumulate(const AnnotationSession::Stats& from,
                AnnotationSession::Stats* to) {
  to->detector.points_fed += from.detector.points_fed;
  to->detector.points_rejected += from.detector.points_rejected;
  to->detector.episodes_closed += from.detector.episodes_closed;
  to->detector.trajectories_closed += from.detector.trajectories_closed;
  to->detector.trajectories_discarded += from.detector.trajectories_discarded;
  to->detector.forced_splits += from.detector.forced_splits;
  to->annotation_passes += from.annotation_passes;
}

}  // namespace

SessionManager::SessionManager(const core::SemiTriPipeline* pipeline,
                               SessionManagerConfig config)
    : pipeline_(pipeline), config_(config) {
  SEMITRI_CHECK(config_.num_shards > 0) << "num_shards must be positive";
  shards_.reserve(config_.num_shards);
  for (size_t i = 0; i < config_.num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

SessionManager::Shard& SessionManager::ShardFor(
    core::ObjectId object_id) const {
  // Fibonacci mixing: consecutive object ids spread across shards.
  uint64_t h = static_cast<uint64_t>(object_id) * 0x9E3779B97F4A7C15ull;
  return *shards_[h % shards_.size()];
}

common::Result<AnnotationSession::FeedResult> SessionManager::Feed(
    core::ObjectId object_id, const core::GpsPoint& fix) {
  Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto [it, inserted] = shard.sessions.try_emplace(object_id);
  if (inserted) {
    it->second.session = std::make_unique<AnnotationSession>(
        pipeline_, object_id, config_.session,
        object_id * config_.ids_per_object);
    ++shard.opened;
  }
  it->second.last_feed = std::chrono::steady_clock::now();
  return it->second.session->Feed(fix);
}

common::Status SessionManager::Flush(core::ObjectId object_id) {
  Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sessions.find(object_id);
  if (it == shard.sessions.end()) {
    return common::Status::NotFound("no live session for this object");
  }
  return it->second.session->Flush();
}

common::Status SessionManager::RetireLocked(
    Shard& shard, std::map<core::ObjectId, Entry>::iterator it) {
  // Eviction goes through the flushing Close path: provisional rows of
  // the open trajectory are finalized before the session is dropped.
  // Only when that flush itself fails is buffered work actually lost —
  // counted so operators can see degraded evictions in stats().
  bool had_open = it->second.session->has_open_state();
  common::Status status = it->second.session->Flush();
  if (!status.ok() && had_open) ++shard.evicted_with_data_loss;
  Accumulate(it->second.session->stats(), &shard.retired);
  ++shard.evicted;
  shard.sessions.erase(it);
  return status;
}

common::Status SessionManager::Close(core::ObjectId object_id) {
  Shard& shard = ShardFor(object_id);
  std::lock_guard<std::mutex> lock(shard.mutex);
  auto it = shard.sessions.find(object_id);
  if (it == shard.sessions.end()) {
    return common::Status::NotFound("no live session for this object");
  }
  return RetireLocked(shard, it);
}

common::Status SessionManager::CloseAll() {
  common::Status first = common::Status::OK();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    while (!shard->sessions.empty()) {
      common::Status status =
          RetireLocked(*shard, shard->sessions.begin());
      if (!status.ok() && first.ok()) first = status;
    }
  }
  return first;
}

common::Result<size_t> SessionManager::EvictIdle(double max_idle_seconds) {
  const auto now = std::chrono::steady_clock::now();
  common::Status first = common::Status::OK();
  size_t evicted = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (auto it = shard->sessions.begin(); it != shard->sessions.end();) {
      std::chrono::duration<double> idle = now - it->second.last_feed;
      if (idle.count() < max_idle_seconds) {
        ++it;
        continue;
      }
      auto next = std::next(it);
      common::Status status = RetireLocked(*shard, it);
      if (!status.ok() && first.ok()) first = status;
      ++evicted;
      it = next;
    }
  }
  if (!first.ok()) return first;
  return evicted;
}

size_t SessionManager::ActiveSessions() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    total += shard->sessions.size();
  }
  return total;
}

common::Status SessionManager::Checkpoint(const std::string& path) const {
  common::StateWriter payload;
  payload.PutU32(kCheckpointMagic);
  payload.PutU32(kCheckpointVersion);

  // Retired counters, aggregated across shards (shard assignment is a
  // function of object id, so per-shard attribution is reconstructed
  // implicitly on restore; the aggregates land in shard 0).
  size_t opened = 0;
  size_t evicted = 0;
  size_t data_loss = 0;
  AnnotationSession::Stats retired;
  size_t live = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    opened += shard->opened;
    evicted += shard->evicted;
    data_loss += shard->evicted_with_data_loss;
    Accumulate(shard->retired, &retired);
    live += shard->sessions.size();
  }
  payload.PutU64(opened);
  payload.PutU64(evicted);
  payload.PutU64(data_loss);
  payload.PutU64(retired.detector.points_fed);
  payload.PutU64(retired.detector.points_rejected);
  payload.PutU64(retired.detector.episodes_closed);
  payload.PutU64(retired.detector.trajectories_closed);
  payload.PutU64(retired.detector.trajectories_discarded);
  payload.PutU64(retired.detector.forced_splits);
  payload.PutU64(retired.annotation_passes);

  payload.PutU64(live);
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    for (const auto& [object_id, entry] : shard->sessions) {
      payload.PutI64(object_id);
      entry.session->SaveState(&payload);
    }
  }

  common::StateWriter framed;
  framed.PutU32(static_cast<uint32_t>(payload.data().size()));
  framed.PutU32(common::Crc32(payload.data()));
  std::string bytes = framed.Release() + payload.Release();

  // tmp + fsync + rename: the previous checkpoint stays intact until
  // the new one is fully on disk.
  std::string tmp = path + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return common::Status::IoError("cannot open " + tmp + ": " +
                                   std::strerror(errno));
  }
  size_t written = 0;
  while (written < bytes.size()) {
    ssize_t n = ::write(fd, bytes.data() + written, bytes.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return common::Status::IoError("write failed for " + tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return common::Status::IoError("fsync failed for " + tmp);
  }
  ::close(fd);
  std::error_code ec;
  std::filesystem::rename(tmp, path, ec);
  if (ec) {
    return common::Status::IoError("cannot commit checkpoint " + path);
  }
  return common::Status::OK();
}

common::Status SessionManager::Restore(const std::string& path) {
  std::string bytes;
  {
    std::ifstream in(path, std::ios::binary);
    if (!in) return common::Status::IoError("cannot open " + path);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    bytes = buffer.str();
  }
  common::StateReader frame(bytes);
  uint32_t size = 0;
  uint32_t crc = 0;
  SEMITRI_RETURN_IF_ERROR(frame.GetU32(&size));
  SEMITRI_RETURN_IF_ERROR(frame.GetU32(&crc));
  if (frame.remaining() != size) {
    return common::Status::Corruption("checkpoint size mismatch (torn file)");
  }
  std::string_view payload(bytes.data() + bytes.size() - size, size);
  if (common::Crc32(payload) != crc) {
    return common::Status::Corruption("checkpoint crc mismatch");
  }

  common::StateReader r(payload);
  uint32_t magic = 0;
  uint32_t version = 0;
  SEMITRI_RETURN_IF_ERROR(r.GetU32(&magic));
  SEMITRI_RETURN_IF_ERROR(r.GetU32(&version));
  if (magic != kCheckpointMagic) {
    return common::Status::Corruption("not a session checkpoint file");
  }
  if (version != kCheckpointVersion) {
    return common::Status::Corruption("unsupported checkpoint version");
  }

  uint64_t opened = 0;
  uint64_t evicted = 0;
  uint64_t data_loss = 0;
  AnnotationSession::Stats retired;
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&opened));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&evicted));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&data_loss));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&retired.detector.points_fed));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&retired.detector.points_rejected));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&retired.detector.episodes_closed));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&retired.detector.trajectories_closed));
  SEMITRI_RETURN_IF_ERROR(
      r.GetU64(&retired.detector.trajectories_discarded));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&retired.detector.forced_splits));
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&retired.annotation_passes));

  uint64_t live = 0;
  SEMITRI_RETURN_IF_ERROR(r.GetU64(&live));
  if (live > r.remaining()) {
    return common::Status::Corruption("session count exceeds data");
  }

  const auto now = std::chrono::steady_clock::now();
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    shard->sessions.clear();
    shard->opened = 0;
    shard->evicted = 0;
    shard->evicted_with_data_loss = 0;
    shard->retired = {};
  }
  {
    Shard& first = *shards_.front();
    std::lock_guard<std::mutex> lock(first.mutex);
    first.opened = static_cast<size_t>(opened);
    first.evicted = static_cast<size_t>(evicted);
    first.evicted_with_data_loss = static_cast<size_t>(data_loss);
    first.retired = retired;
  }

  for (uint64_t i = 0; i < live; ++i) {
    int64_t object_id = 0;
    SEMITRI_RETURN_IF_ERROR(r.GetI64(&object_id));
    auto session = std::make_unique<AnnotationSession>(
        pipeline_, object_id, config_.session,
        object_id * config_.ids_per_object);
    SEMITRI_RETURN_IF_ERROR(session->RestoreState(&r));
    Shard& shard = ShardFor(object_id);
    std::lock_guard<std::mutex> lock(shard.mutex);
    Entry& entry = shard.sessions[object_id];
    entry.session = std::move(session);
    entry.last_feed = now;
  }
  if (!r.AtEnd()) {
    return common::Status::Corruption("trailing bytes in checkpoint");
  }
  return common::Status::OK();
}

SessionManager::Stats SessionManager::stats() const {
  Stats out;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mutex);
    out.active_sessions += shard->sessions.size();
    out.sessions_opened += shard->opened;
    out.sessions_evicted += shard->evicted;
    out.evictions_with_data_loss += shard->evicted_with_data_loss;
    Accumulate(shard->retired, &out);
    for (const auto& [id, entry] : shard->sessions) {
      Accumulate(entry.session->stats(), &out);
    }
  }
  return out;
}

}  // namespace semitri::stream
