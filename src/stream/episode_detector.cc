#include "stream/episode_detector.h"

#include <algorithm>
#include <cmath>
#include <utility>

#include "common/check.h"
#include "core/state_serialization.h"

namespace semitri::stream {

EpisodeDetector::EpisodeDetector(core::ObjectId object_id,
                                 EpisodeDetectorConfig config,
                                 core::TrajectoryId first_id)
    : config_(config),
      object_id_(object_id),
      next_id_(first_id),
      density_(config_.segmentation) {}

size_t EpisodeDetector::SmoothHalf() const {
  const traj::PreprocessConfig& pre = config_.preprocess;
  if (pre.smoothing_bandwidth_seconds <= 0.0) return 0;
  return pre.smoothing_half_window;
}

void EpisodeDetector::ResetTrajectory() {
  raw_count_ = 0;
  raw_first_time_ = 0.0;
  qualified_ = false;
  open_id_ = 0;
  have_dedup_ = false;
  dedup_last_time_ = 0.0;
  have_kept_ = false;
  kept_count_ = 0;
  kept_tail_.clear();
  cleaned_.clear();
  is_stop_.clear();
  density_.Reset();
  runs_.clear();
  run_open_ = false;
  episodes_.clear();
  begin_emitted_ = false;
}

void EpisodeDetector::Feed(const core::GpsPoint& fix, DetectorEvents* events) {
  *events = DetectorEvents();
  ++stats_.points_fed;
  const bool finite = std::isfinite(fix.time) &&
                      std::isfinite(fix.position.x) &&
                      std::isfinite(fix.position.y);
  if (!finite || (has_accepted_ && fix.time < last_accepted_time_)) {
    ++stats_.points_rejected;
    events->accepted = false;
    return;
  }
  has_accepted_ = true;
  last_accepted_time_ = fix.time;

  // Split detection is causal (previous raw fix only) — the offline
  // TrajectoryIdentifier checks, applied per fix.
  const traj::IdentificationConfig& ident = config_.identification;
  if (raw_count_ > 0) {
    bool gap = ident.max_gap_seconds > 0.0 &&
               fix.time - last_raw_.time > ident.max_gap_seconds;
    bool jump = ident.max_spatial_gap_meters > 0.0 &&
                fix.position.DistanceTo(last_raw_.position) >
                    ident.max_spatial_gap_meters;
    bool new_period =
        ident.period_seconds > 0.0 &&
        traj::PeriodIndex(fix.time, ident.period_seconds) !=
            traj::PeriodIndex(last_raw_.time, ident.period_seconds);
    if (gap || jump || new_period) FinalizeTrajectory(events);
  }

  ++raw_count_;
  if (raw_count_ == 1) raw_first_time_ = fix.time;
  last_raw_ = fix;

  CleanFix(fix);
  AdvanceClassification(/*end_of_data=*/false);
  ExtendRuns();

  // The identification noise filter (>= min_points raw fixes, >=
  // min_duration) is monotone in both count and duration, so it can be
  // latched the moment it first holds; the trajectory id is assigned
  // here, which reproduces the offline sequential assignment because at
  // most one trajectory is ever open.
  if (!qualified_ && raw_count_ >= ident.min_points &&
      last_raw_.time - raw_first_time_ >= ident.min_duration_seconds) {
    qualified_ = true;
    open_id_ = next_id_++;
  }
  if (qualified_) MaybeEmit(events);

  if (config_.max_buffered_points > 0 &&
      raw_count_ >= config_.max_buffered_points) {
    ++stats_.forced_splits;
    FinalizeTrajectory(events);
  }
}

void EpisodeDetector::Close(DetectorEvents* events) {
  *events = DetectorEvents();
  FinalizeTrajectory(events);
}

void EpisodeDetector::CleanFix(const core::GpsPoint& fix) {
  const traj::PreprocessConfig& pre = config_.preprocess;
  // Duplicate removal: causal, compares against the last survivor.
  if (have_dedup_ &&
      fix.time - dedup_last_time_ < pre.min_time_step_seconds) {
    return;
  }
  have_dedup_ = true;
  dedup_last_time_ = fix.time;

  // Outlier speed gate: causal, compares against the last kept fix.
  if (pre.max_speed_mps > 0.0 && have_kept_) {
    double dt = fix.time - outlier_last_.time;
    if (dt <= 0.0) return;
    double speed = fix.position.DistanceTo(outlier_last_.position) / dt;
    if (speed > pre.max_speed_mps) return;
  }
  have_kept_ = true;
  outlier_last_ = fix;
  AppendKept(fix);
}

void EpisodeDetector::AppendKept(const core::GpsPoint& fix) {
  ++kept_count_;
  const size_t half = SmoothHalf();
  kept_tail_.push_back(fix);
  while (kept_tail_.size() > 2 * half + 1) kept_tail_.pop_front();
  if (half == 0) {
    // Smoothing disabled: the kept fix is final as-is.
    cleaned_.push_back(fix);
    return;
  }
  // Offline Smooth() is skipped entirely below 3 points, so nothing is
  // final until the third kept fix; past that, a point's kernel window
  // is complete once `half` kept fixes exist to its right.
  while (kept_count_ >= 3 && cleaned_.size() + half <= kept_count_ - 1) {
    FinalizeSmoothedPoint(cleaned_.size(), /*end_of_data=*/false);
  }
}

const core::GpsPoint& EpisodeDetector::Kept(size_t index) const {
  const size_t first = kept_count_ - kept_tail_.size();
  SEMITRI_DCHECK(index >= first && index < kept_count_)
      << "kept index " << index << " outside retained tail [" << first
      << ", " << kept_count_ << ")";
  return kept_tail_[index - first];
}

void EpisodeDetector::FinalizeSmoothedPoint(size_t index, bool end_of_data) {
  const size_t half = SmoothHalf();
  const double bandwidth = config_.preprocess.smoothing_bandwidth_seconds;
  const double two_sigma2 = 2.0 * bandwidth * bandwidth;
  size_t lo = index >= half ? index - half : 0;
  size_t hi = end_of_data ? std::min(kept_count_ - 1, index + half)
                          : index + half;
  const core::GpsPoint& center = Kept(index);
  geo::Point acc{0.0, 0.0};
  double weight_sum = 0.0;
  for (size_t j = lo; j <= hi; ++j) {
    const core::GpsPoint& neighbor = Kept(j);
    double dt = neighbor.time - center.time;
    double w = std::exp(-(dt * dt) / two_sigma2);
    acc = acc + neighbor.position * w;
    weight_sum += w;
  }
  cleaned_.push_back({acc / weight_sum, center.time});
}

void EpisodeDetector::FinalizeCleaning() {
  const size_t half = SmoothHalf();
  if (half == 0) return;  // cleaned_ is already complete
  if (kept_count_ < 3) {
    // Offline skips smoothing entirely below 3 points.
    SEMITRI_DCHECK(cleaned_.empty());
    for (const core::GpsPoint& p : kept_tail_) cleaned_.push_back(p);
    return;
  }
  while (cleaned_.size() < kept_count_) {
    FinalizeSmoothedPoint(cleaned_.size(), /*end_of_data=*/true);
  }
}

void EpisodeDetector::AdvanceClassification(bool end_of_data) {
  const traj::SegmentationConfig& seg = config_.segmentation;
  const size_t n = cleaned_.size();
  if (seg.policy == traj::StopPolicy::kDensity) {
    density_.Advance(cleaned_, n, end_of_data);
    const std::vector<bool>& flags = density_.flags();
    for (size_t i = is_stop_.size(); i < flags.size(); ++i) {
      is_stop_.push_back(flags[i]);
    }
    return;
  }
  const size_t half = seg.speed_smoothing_half_window;
  auto instantaneous = [this](size_t k) {
    double dt = cleaned_[k].time - cleaned_[k - 1].time;
    return dt > 0.0
               ? cleaned_[k].position.DistanceTo(cleaned_[k - 1].position) / dt
               : 0.0;
  };
  while (true) {
    const size_t i = is_stop_.size();
    if (i >= n) return;
    double speed;
    if (half == 0) {
      // Instantaneous consecutive-point speed; element 0 copies 1.
      if (i == 0) {
        if (n >= 2) {
          speed = instantaneous(1);
        } else if (end_of_data) {
          speed = 0.0;  // single-point trajectory
        } else {
          return;
        }
      } else {
        speed = instantaneous(i);
      }
    } else {
      // Windowed displacement speed over [i - half, i + half]; final
      // once the right edge is inside the cleaned prefix (offline
      // truncates it at the trajectory end, so end_of_data may too).
      if (!end_of_data && i + half > n - 1) return;
      size_t lo = i >= half ? i - half : 0;
      size_t hi = std::min(n - 1, i + half);
      speed = traj::WindowedSpeed(cleaned_, lo, hi);
    }
    is_stop_.push_back(speed < seg.velocity_threshold_mps);
  }
}

void EpisodeDetector::ExtendRuns() {
  for (size_t i = run_open_ ? open_run_.end : 0; i < is_stop_.size(); ++i) {
    bool stop = is_stop_[i];
    if (!run_open_) {
      open_run_ = {stop, i, i + 1};
      run_open_ = true;
    } else if (stop == open_run_.stop) {
      open_run_.end = i + 1;
    } else {
      runs_.push_back(open_run_);
      open_run_ = {stop, i, i + 1};
    }
  }
}

bool EpisodeDetector::StopRunSolid(const traj::ClassifiedRun& run) const {
  SEMITRI_DCHECK(run.stop);
  if (config_.segmentation.policy == traj::StopPolicy::kDensity) {
    // The density policy enforces dwell while clustering; there is no
    // demote step, so every stop run is final-as-stop.
    return true;
  }
  return cleaned_[run.end - 1].time - cleaned_[run.begin].time >=
         config_.segmentation.min_stop_duration_seconds;
}

bool EpisodeDetector::MoveRunSolid(const traj::ClassifiedRun& run) const {
  SEMITRI_DCHECK(!run.stop);
  double duration = cleaned_[run.end - 1].time - cleaned_[run.begin].time;
  double displacement = cleaned_[run.end - 1].position.DistanceTo(
      cleaned_[run.begin].position);
  return duration >= config_.segmentation.min_move_duration_seconds &&
         displacement >= config_.segmentation.min_move_displacement_meters;
}

void EpisodeDetector::MaybeEmit(DetectorEvents* events) {
  if (runs_.size() < 2) return;
  // Find the latest barrier: a solid move flanked by solid stops. The
  // run-smoothing passes can never absorb such a move (it fails both
  // absorb predicates) nor demote its neighbors, so every run before it
  // is independent of all future fixes. The right flank may be the
  // still-open run — stop dwell only grows, so "solid" is latched.
  size_t cut = 0;  // emit runs_[0, cut); 0 = no barrier found
  for (size_t m = runs_.size() - 1; m >= 1; --m) {
    const traj::ClassifiedRun& move = runs_[m];
    if (move.stop || !MoveRunSolid(move)) continue;
    if (!runs_[m - 1].stop || !StopRunSolid(runs_[m - 1])) continue;
    bool right_solid =
        m + 1 < runs_.size()
            ? StopRunSolid(runs_[m + 1])
            : (run_open_ && open_run_.stop && StopRunSolid(open_run_));
    if (right_solid) {
      cut = m;
      break;
    }
  }
  if (cut == 0) return;
  std::vector<traj::ClassifiedRun> window(runs_.begin(),
                                          runs_.begin() + cut);
  runs_.erase(runs_.begin(), runs_.begin() + cut);
  EmitRuns(std::move(window), events);
}

void EpisodeDetector::EmitRuns(std::vector<traj::ClassifiedRun> window,
                               DetectorEvents* events) {
  // The shared offline smoothing, over the emitted window only. The
  // barrier move that now heads runs_ plays offline's "left neighbor is
  // a solid stop" role for the next window: as window run 0 it is
  // absorb-exempt, exactly as the offline gate would make it.
  traj::SmoothClassifiedRuns(cleaned_, config_.segmentation, &window);
  if (config_.segmentation.emit_begin_end && !begin_emitted_) {
    EmitMarker(core::EpisodeKind::kBegin, 0, events);
    begin_emitted_ = true;
  }
  for (const traj::ClassifiedRun& r : window) {
    core::Episode ep;
    ep.kind = r.stop ? core::EpisodeKind::kStop : core::EpisodeKind::kMove;
    ep.begin = r.begin;
    ep.end = r.end;
    traj::FinalizeEpisode(cleaned_, &ep);
    episodes_.push_back(ep);
    events->closed_episodes.push_back(ep);
    ++stats_.episodes_closed;
  }
}

void EpisodeDetector::EmitMarker(core::EpisodeKind kind, size_t index,
                                 DetectorEvents* events) {
  core::Episode ep;
  ep.kind = kind;
  ep.begin = index;
  ep.end = index + 1;
  traj::FinalizeEpisode(cleaned_, &ep);
  episodes_.push_back(ep);
  events->closed_episodes.push_back(ep);
}

void EpisodeDetector::FinalizeTrajectory(DetectorEvents* events) {
  if (raw_count_ == 0) return;  // nothing open
  if (!qualified_) {
    // The offline identification filter drops it as noise; no
    // trajectory id was consumed and no episode was emitted.
    ++stats_.trajectories_discarded;
    events->discarded_trajectory = true;
    ResetTrajectory();
    return;
  }
  FinalizeCleaning();
  AdvanceClassification(/*end_of_data=*/true);
  ExtendRuns();
  if (run_open_) {
    runs_.push_back(open_run_);
    run_open_ = false;
  }
  std::vector<traj::ClassifiedRun> window = std::move(runs_);
  runs_.clear();
  EmitRuns(std::move(window), events);
  if (config_.segmentation.emit_begin_end) {
    EmitMarker(core::EpisodeKind::kEnd, cleaned_.size() - 1, events);
  }
  ClosedTrajectory closed;
  closed.cleaned.id = open_id_;
  closed.cleaned.object_id = object_id_;
  closed.cleaned.points = std::move(cleaned_);
  closed.episodes = std::move(episodes_);
  events->closed_trajectory = std::move(closed);
  // Everything this call closed is delivered via closed_trajectory;
  // closed_episodes only ever describes the trajectory still open at
  // return time.
  events->closed_episodes.clear();
  ++stats_.trajectories_closed;
  ResetTrajectory();
}

namespace {

void SavePoints(const std::vector<core::GpsPoint>& points,
                common::StateWriter* w) {
  w->PutU64(points.size());
  for (const core::GpsPoint& p : points) core::SaveState(p, w);
}

common::Status RestorePoints(common::StateReader* r,
                             std::vector<core::GpsPoint>* points) {
  uint64_t n = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&n));
  if (n > r->remaining()) {
    return common::Status::Corruption("point count exceeds data");
  }
  points->clear();
  points->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    core::GpsPoint p;
    SEMITRI_RETURN_IF_ERROR(core::RestoreState(r, &p));
    points->push_back(p);
  }
  return common::Status::OK();
}

void SaveRun(const traj::ClassifiedRun& run, common::StateWriter* w) {
  w->PutBool(run.stop);
  w->PutU64(run.begin);
  w->PutU64(run.end);
}

common::Status RestoreRun(common::StateReader* r, traj::ClassifiedRun* run) {
  SEMITRI_RETURN_IF_ERROR(r->GetBool(&run->stop));
  uint64_t begin = 0;
  uint64_t end = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&begin));
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&end));
  run->begin = static_cast<size_t>(begin);
  run->end = static_cast<size_t>(end);
  return common::Status::OK();
}

}  // namespace

void EpisodeDetector::SaveState(common::StateWriter* w) const {
  w->PutI64(object_id_);
  w->PutI64(next_id_);
  w->PutU64(stats_.points_fed);
  w->PutU64(stats_.points_rejected);
  w->PutU64(stats_.episodes_closed);
  w->PutU64(stats_.trajectories_closed);
  w->PutU64(stats_.trajectories_discarded);
  w->PutU64(stats_.forced_splits);
  w->PutBool(has_accepted_);
  w->PutDouble(last_accepted_time_);
  w->PutU64(raw_count_);
  w->PutDouble(raw_first_time_);
  core::SaveState(last_raw_, w);
  w->PutBool(qualified_);
  w->PutI64(open_id_);
  w->PutBool(have_dedup_);
  w->PutDouble(dedup_last_time_);
  w->PutBool(have_kept_);
  core::SaveState(outlier_last_, w);
  w->PutU64(kept_count_);
  w->PutU64(kept_tail_.size());
  for (const core::GpsPoint& p : kept_tail_) core::SaveState(p, w);
  SavePoints(cleaned_, w);
  w->PutU64(is_stop_.size());
  for (bool s : is_stop_) w->PutBool(s);
  density_.SaveState(w);
  w->PutU64(runs_.size());
  for (const traj::ClassifiedRun& run : runs_) SaveRun(run, w);
  w->PutBool(run_open_);
  SaveRun(open_run_, w);
  core::SaveState(episodes_, w);
  w->PutBool(begin_emitted_);
}

common::Status EpisodeDetector::RestoreState(common::StateReader* r) {
  int64_t object_id = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetI64(&object_id));
  if (object_id != object_id_) {
    return common::Status::InvalidArgument(
        "detector checkpoint is for a different object");
  }
  SEMITRI_RETURN_IF_ERROR(r->GetI64(&next_id_));
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&stats_.points_fed));
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&stats_.points_rejected));
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&stats_.episodes_closed));
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&stats_.trajectories_closed));
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&stats_.trajectories_discarded));
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&stats_.forced_splits));
  SEMITRI_RETURN_IF_ERROR(r->GetBool(&has_accepted_));
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&last_accepted_time_));
  uint64_t raw_count = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&raw_count));
  raw_count_ = static_cast<size_t>(raw_count);
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&raw_first_time_));
  SEMITRI_RETURN_IF_ERROR(core::RestoreState(r, &last_raw_));
  SEMITRI_RETURN_IF_ERROR(r->GetBool(&qualified_));
  SEMITRI_RETURN_IF_ERROR(r->GetI64(&open_id_));
  SEMITRI_RETURN_IF_ERROR(r->GetBool(&have_dedup_));
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&dedup_last_time_));
  SEMITRI_RETURN_IF_ERROR(r->GetBool(&have_kept_));
  SEMITRI_RETURN_IF_ERROR(core::RestoreState(r, &outlier_last_));
  uint64_t kept_count = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&kept_count));
  kept_count_ = static_cast<size_t>(kept_count);
  uint64_t tail_size = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&tail_size));
  if (tail_size > r->remaining()) {
    return common::Status::Corruption("kept tail count exceeds data");
  }
  kept_tail_.clear();
  for (uint64_t i = 0; i < tail_size; ++i) {
    core::GpsPoint p;
    SEMITRI_RETURN_IF_ERROR(core::RestoreState(r, &p));
    kept_tail_.push_back(p);
  }
  SEMITRI_RETURN_IF_ERROR(RestorePoints(r, &cleaned_));
  uint64_t stop_count = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&stop_count));
  if (stop_count > r->remaining()) {
    return common::Status::Corruption("stop flag count exceeds data");
  }
  is_stop_.clear();
  is_stop_.reserve(stop_count);
  for (uint64_t i = 0; i < stop_count; ++i) {
    bool s = false;
    SEMITRI_RETURN_IF_ERROR(r->GetBool(&s));
    is_stop_.push_back(s);
  }
  SEMITRI_RETURN_IF_ERROR(density_.RestoreState(r));
  uint64_t run_count = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&run_count));
  if (run_count > r->remaining()) {
    return common::Status::Corruption("run count exceeds data");
  }
  runs_.clear();
  runs_.reserve(run_count);
  for (uint64_t i = 0; i < run_count; ++i) {
    traj::ClassifiedRun run;
    SEMITRI_RETURN_IF_ERROR(RestoreRun(r, &run));
    runs_.push_back(run);
  }
  SEMITRI_RETURN_IF_ERROR(r->GetBool(&run_open_));
  SEMITRI_RETURN_IF_ERROR(RestoreRun(r, &open_run_));
  SEMITRI_RETURN_IF_ERROR(core::RestoreState(r, &episodes_));
  return r->GetBool(&begin_emitted_);
}

}  // namespace semitri::stream
