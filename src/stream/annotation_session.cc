#include "stream/annotation_session.h"

#include <chrono>
#include <optional>
#include <string>
#include <utility>

#include "analytics/latency_profiler.h"
#include "core/stages.h"
#include "core/state_serialization.h"

namespace semitri::stream {

namespace {

EpisodeDetectorConfig DetectorConfigFrom(const core::PipelineConfig& pipeline,
                                         const SessionConfig& session) {
  EpisodeDetectorConfig config;
  config.preprocess = pipeline.preprocess;
  config.identification = pipeline.identification;
  config.segmentation = pipeline.segmentation;
  config.max_buffered_points = session.max_buffered_points;
  return config;
}

}  // namespace

AnnotationSession::AnnotationSession(const core::SemiTriPipeline* pipeline,
                                     core::ObjectId object_id,
                                     SessionConfig config,
                                     core::TrajectoryId first_id)
    : pipeline_(pipeline),
      object_id_(object_id),
      config_(config),
      detector_(object_id, DetectorConfigFrom(pipeline->config(), config),
                first_id) {}

common::Result<AnnotationSession::FeedResult> AnnotationSession::Feed(
    const core::GpsPoint& fix) {
  DetectorEvents events;
  detector_.Feed(fix, &events);
  FeedResult result;
  result.accepted = events.accepted;
  result.episodes_closed = events.closed_episodes.size();
  result.trajectory_closed = events.closed_trajectory.has_value();
  result.trajectory_discarded = events.discarded_trajectory;
  if (!events.accepted) return result;
  if (events.discarded_trajectory) partial_ = core::PipelineResult();
  if (events.closed_trajectory.has_value()) {
    SEMITRI_RETURN_IF_ERROR(
        FinalizeClosed(std::move(*events.closed_trajectory)));
  }
  if (!events.closed_episodes.empty()) {
    SyncPartial(events.closed_episodes);
    if (config_.annotate_on_episode) {
      SEMITRI_RETURN_IF_ERROR(AnnotatePrefix(events.closed_episodes.size()));
    }
  }
  return result;
}

common::Status AnnotationSession::Flush() {
  DetectorEvents events;
  detector_.Close(&events);
  partial_ = core::PipelineResult();
  if (events.closed_trajectory.has_value()) {
    SEMITRI_RETURN_IF_ERROR(
        FinalizeClosed(std::move(*events.closed_trajectory)));
  }
  return common::Status::OK();
}

void AnnotationSession::SyncPartial(
    const std::vector<core::Episode>& closed) {
  partial_.cleaned.id = detector_.open_trajectory_id();
  partial_.cleaned.object_id = object_id_;
  const std::vector<core::GpsPoint>& prefix = detector_.cleaned_prefix();
  for (size_t i = partial_.cleaned.points.size(); i < prefix.size(); ++i) {
    partial_.cleaned.points.push_back(prefix[i]);
  }
  partial_.episodes.insert(partial_.episodes.end(), closed.begin(),
                           closed.end());
}

common::Status AnnotationSession::AnnotatePrefix(size_t episodes_closed) {
  auto start = std::chrono::steady_clock::now();
  // Same downstream stage sequence as AnnotateComputed, but with the
  // pipeline profiler detached: provisional passes repeat per closed
  // episode, so letting them record under the Fig. 17 stage names would
  // skew the per-trajectory semantics of those series. Their latency is
  // accounted under the stream_* stage below instead.
  core::AnnotationContext context;
  context.result = std::move(partial_);
  context.store = pipeline_->store();
  context.scratch = &scratch_;
  for (const std::string& name : pipeline_->graph().ExecutionOrder()) {
    if (name == core::kStageComputeEpisode) continue;
    SEMITRI_RETURN_IF_ERROR(pipeline_->graph().RunStage(name, context));
  }
  partial_ = std::move(context.result);
  ++annotation_passes_;
  if (analytics::LatencyProfiler* profiler = pipeline_->profiler()) {
    std::chrono::duration<double> elapsed =
        std::chrono::steady_clock::now() - start;
    // One sample per episode this pass covered: the pass latency is the
    // close-to-annotated latency of each of them.
    for (size_t i = 0; i < episodes_closed; ++i) {
      profiler->Record(kStreamStageEpisodeAnnotation, elapsed.count());
    }
  }
  return common::Status::OK();
}

common::Status AnnotationSession::FinalizeClosed(ClosedTrajectory closed) {
  core::PipelineResult computed;
  computed.cleaned = std::move(closed.cleaned);
  computed.episodes = std::move(closed.episodes);
  std::optional<analytics::LatencyProfiler::Scope> scope;
  if (pipeline_->profiler() != nullptr) {
    scope.emplace(pipeline_->profiler(), kStreamStageFinalizeTrajectory);
  }
  core::RunControls controls;
  controls.scratch = &scratch_;
  common::Result<core::PipelineResult> annotated =
      pipeline_->AnnotateComputed(std::move(computed), controls);
  if (!annotated.ok()) return annotated.status();
  if (config_.keep_results) results_.push_back(std::move(*annotated));
  partial_ = core::PipelineResult();
  return common::Status::OK();
}

void AnnotationSession::SaveState(common::StateWriter* w) const {
  w->PutI64(object_id_);
  detector_.SaveState(w);
  core::SaveState(partial_, w);
  w->PutU64(annotation_passes_);
  w->PutU64(results_.size());
  for (const core::PipelineResult& result : results_) {
    core::SaveState(result, w);
  }
}

common::Status AnnotationSession::RestoreState(common::StateReader* r) {
  int64_t object_id = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetI64(&object_id));
  if (object_id != object_id_) {
    return common::Status::InvalidArgument(
        "session checkpoint is for a different object");
  }
  SEMITRI_RETURN_IF_ERROR(detector_.RestoreState(r));
  SEMITRI_RETURN_IF_ERROR(core::RestoreState(r, &partial_));
  uint64_t passes = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&passes));
  annotation_passes_ = static_cast<size_t>(passes);
  uint64_t n = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&n));
  if (n > r->remaining()) {
    return common::Status::Corruption("result count exceeds data");
  }
  results_.clear();
  results_.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    core::PipelineResult result;
    SEMITRI_RETURN_IF_ERROR(core::RestoreState(r, &result));
    results_.push_back(std::move(result));
  }
  return common::Status::OK();
}

}  // namespace semitri::stream
