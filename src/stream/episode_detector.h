#ifndef SEMITRI_STREAM_EPISODE_DETECTOR_H_
#define SEMITRI_STREAM_EPISODE_DETECTOR_H_

// Incremental stop/move episode detection: the streaming port of the
// Trajectory Computation Layer (traj/identification + traj/preprocess +
// traj/segmentation), consuming one GpsPoint at a time.
//
// Correctness contract: feeding a time-ordered stream fix by fix and
// then calling Close() produces exactly the raw-trajectory splits,
// cleaned traces and episode tables that the offline
//
//   for (t : TrajectoryIdentifier::Identify(stream))
//     StopMoveSegmenter::Segment(Preprocessor::Clean(t))
//
// pipeline produces on the same stream — bit for bit, including every
// floating-point summary. The detector achieves this by running the
// *same code* on bounded windows:
//
//   * split detection (gap / spatial jump / period boundary) is causal —
//     it only inspects the previous raw fix — so it is applied per fix;
//   * duplicate removal and the outlier speed gate are causal filters;
//   * Gaussian position smoothing needs `smoothing_half_window` future
//     kept fixes, so a point's smoothed position is finalized once that
//     lookahead exists (or at close, where windows truncate exactly as
//     offline);
//   * per-point stop classification has bounded lookahead as well
//     (velocity: the ±half sample window; density: the resumable greedy
//     cluster scan of traj::DensityStopClassifier);
//   * run-level smoothing (absorb/demote passes) is *not* causal, but it
//     can never cross a "solid move flanked by solid stops": such a move
//     is never absorbed (both neighbors classify as stops but the move
//     fails both absorb predicates) and its neighbors are never demoted,
//     so runs on either side evolve independently. The detector emits
//     closed episodes up to such a barrier by running the shared
//     traj::SmoothClassifiedRuns on the prefix window, and carries the
//     barrier move forward as the first run of the next window.
//
// Episodes therefore close with bounded delay (roughly one episode plus
// the classification lookahead behind real time), and everything emitted
// is final — a later fix never revises a closed episode.
//
// Memory per open trajectory is O(window) for cleaning/classification
// state plus O(unclosed episode span) for the cleaned trace (the cleaned
// prefix is retained so downstream annotators can run over it; see
// stream::AnnotationSession). `max_buffered_points` bounds the latter by
// force-closing pathological never-splitting trajectories.

#include <deque>
#include <optional>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "core/types.h"
#include "traj/identification.h"
#include "traj/preprocess.h"
#include "traj/segmentation.h"

namespace semitri::stream {

struct EpisodeDetectorConfig {
  traj::PreprocessConfig preprocess;
  traj::IdentificationConfig identification;
  traj::SegmentationConfig segmentation;
  // Hard cap on raw points buffered for one open trajectory; reaching it
  // force-closes the trajectory as if the stream had ended. This bounds
  // per-session memory for streams that never hit a gap/period split. A
  // forced split is the one place streaming output may diverge from the
  // offline pipeline and is counted in Stats::forced_splits. 0 disables.
  size_t max_buffered_points = 0;
};

// A raw trajectory closed by the detector: its full cleaned trace plus
// the complete episode table (identical to the offline Segment output).
struct ClosedTrajectory {
  core::RawTrajectory cleaned;
  std::vector<core::Episode> episodes;
};

// Everything one Feed()/Close() call made final.
struct DetectorEvents {
  // False when the fix was rejected (out-of-order or non-finite) and
  // nothing else in this struct was touched.
  bool accepted = true;
  // Episodes of the still-open trajectory that closed in this call;
  // begin/end index its cleaned points (cleaned_prefix()).
  std::vector<core::Episode> closed_episodes;
  // Set when a raw trajectory closed (gap/jump/period split, forced
  // split, or Close()). Its tail episodes appear in `episodes` here, not
  // in closed_episodes.
  std::optional<ClosedTrajectory> closed_trajectory;
  // An open trajectory was discarded as noise (fewer than min_points
  // raw fixes or too short — the offline identification filter); it
  // consumed no trajectory id.
  bool discarded_trajectory = false;
};

class EpisodeDetector {
 public:
  explicit EpisodeDetector(core::ObjectId object_id,
                           EpisodeDetectorConfig config = {},
                           core::TrajectoryId first_id = 0);

  // Consumes one fix. Fixes must be fed in non-decreasing time order;
  // an out-of-order fix is rejected (events->accepted = false), matching
  // the offline contract that Identify consumes a time-ordered stream.
  // `events` is overwritten, not appended to.
  void Feed(const core::GpsPoint& fix, DetectorEvents* events);

  // Ends the stream: finalizes and closes the open trajectory (or
  // discards it if it never met the identification thresholds). The
  // detector stays usable — a subsequent Feed starts a new trajectory,
  // as if a fresh offline run began at that fix.
  void Close(DetectorEvents* events);

  // --- open-trajectory observers -------------------------------------

  // Finalized cleaned points of the open trajectory (grows as fixes
  // arrive; closed episodes' [begin, end) index into this).
  const std::vector<core::GpsPoint>& cleaned_prefix() const {
    return cleaned_;
  }
  // True once the open trajectory passed the identification noise
  // filter (>= min_points raw fixes and >= min_duration). Episodes only
  // close after qualification, and only qualified trajectories consume
  // trajectory ids.
  bool open_trajectory_qualified() const { return qualified_; }
  // Id the open trajectory will close with; only meaningful once
  // open_trajectory_qualified().
  core::TrajectoryId open_trajectory_id() const { return open_id_; }

  struct Stats {
    size_t points_fed = 0;
    size_t points_rejected = 0;
    size_t episodes_closed = 0;  // excludes Begin/End markers
    size_t trajectories_closed = 0;
    size_t trajectories_discarded = 0;
    size_t forced_splits = 0;
  };
  const Stats& stats() const { return stats_; }
  core::ObjectId object_id() const { return object_id_; }
  core::TrajectoryId next_trajectory_id() const { return next_id_; }
  const EpisodeDetectorConfig& config() const { return config_; }

  // True while raw fixes of an unfinished trajectory are buffered —
  // exactly the state a checkpoint must capture, and what is lost when
  // the detector is dropped without Close().
  bool has_open_trajectory() const { return raw_count_ > 0; }

  // Raw fixes buffered for the open trajectory — the quantity bounded
  // per session by max_buffered_points and charged against the global
  // SessionManager admission budgets.
  size_t buffered_points() const { return raw_count_; }

  // --- checkpoint support ---------------------------------------------
  // Serializes every mutable member bit-exactly (stream gate, open-
  // trajectory windows, classifier, emitted episodes, counters). A
  // detector constructed with the same object id and config, restored
  // from these bytes, continues the stream exactly where the saved one
  // stopped — converging to the identical offline-equivalent output.
  // Config is NOT serialized: the owner reconstructs it.
  void SaveState(common::StateWriter* w) const;
  [[nodiscard]] common::Status RestoreState(common::StateReader* r);

 private:
  // Effective smoothing half-window (0 when smoothing is disabled).
  size_t SmoothHalf() const;
  void ResetTrajectory();
  // Dedup + outlier gates; appends survivors to the kept tail.
  void CleanFix(const core::GpsPoint& fix);
  void AppendKept(const core::GpsPoint& fix);
  // Kept point `index` (global, within the open trajectory) from the
  // bounded raw tail.
  const core::GpsPoint& Kept(size_t index) const;
  // Pushes the smoothed position of kept point `index` onto cleaned_;
  // `end_of_data` truncates the right window edge at the last kept fix.
  void FinalizeSmoothedPoint(size_t index, bool end_of_data);
  void FinalizeCleaning();  // close-time tail (truncated windows)
  // Extends is_stop_ with every classification decidable from the
  // finalized cleaned prefix.
  void AdvanceClassification(bool end_of_data);
  void ExtendRuns();  // folds new classifications into closed runs
  // Dwell/extent tests on closed runs (velocity policy; density stops
  // are solid by construction — there is no demote step).
  bool StopRunSolid(const traj::ClassifiedRun& run) const;
  bool MoveRunSolid(const traj::ClassifiedRun& run) const;
  // Emits every episode before the latest barrier move, if any.
  void MaybeEmit(DetectorEvents* events);
  void EmitRuns(std::vector<traj::ClassifiedRun> window,
                DetectorEvents* events);
  void EmitMarker(core::EpisodeKind kind, size_t index,
                  DetectorEvents* events);
  void FinalizeTrajectory(DetectorEvents* events);

  EpisodeDetectorConfig config_;
  core::ObjectId object_id_;
  core::TrajectoryId next_id_;
  Stats stats_;

  // Stream-level monotonicity gate (survives trajectory splits).
  bool has_accepted_ = false;
  double last_accepted_time_ = 0.0;

  // --- open-trajectory state (reset by ResetTrajectory) --------------
  // Raw-fix bookkeeping for split checks and the identification filter.
  size_t raw_count_ = 0;
  double raw_first_time_ = 0.0;
  core::GpsPoint last_raw_;
  bool qualified_ = false;
  core::TrajectoryId open_id_ = 0;

  // Cleaning: duplicate filter, outlier gate, smoothing lookahead.
  bool have_dedup_ = false;
  double dedup_last_time_ = 0.0;
  bool have_kept_ = false;
  core::GpsPoint outlier_last_;
  size_t kept_count_ = 0;
  // Raw positions of the last <= 2*half+1 kept fixes (smoothing reads
  // raw neighbors). Front corresponds to kept index
  // kept_count_ - kept_tail_.size().
  std::deque<core::GpsPoint> kept_tail_;
  // Finalized cleaned (smoothed) points.
  std::vector<core::GpsPoint> cleaned_;

  // Classification and run assembly over cleaned_.
  std::vector<bool> is_stop_;  // final per-point classes [0, class_n)
  traj::DensityStopClassifier density_;
  std::vector<traj::ClassifiedRun> runs_;  // closed, unemitted runs
  bool run_open_ = false;
  traj::ClassifiedRun open_run_;  // trailing run, still growing

  // Episodes already emitted for the open trajectory.
  std::vector<core::Episode> episodes_;
  bool begin_emitted_ = false;
};

}  // namespace semitri::stream

#endif  // SEMITRI_STREAM_EPISODE_DETECTOR_H_
