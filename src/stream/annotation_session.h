#ifndef SEMITRI_STREAM_ANNOTATION_SESSION_H_
#define SEMITRI_STREAM_ANNOTATION_SESSION_H_

// A live semantic-annotation session for one moving object: an
// EpisodeDetector feeding the downstream annotation stages of an
// existing SemiTriPipeline (the paper's "annotation is even required in
// real-time" requirement, §1.2).
//
// On every *closed* episode the session re-runs only the annotation
// layers (region spatial join, line map-matching, point HMM — the
// Viterbi pass covers the stop sequence seen so far) over the cleaned
// prefix, and writes the provisional rows through to the pipeline's
// store. When a raw trajectory closes (gap/period split or Flush), the
// session runs the full downstream stage sequence once more via
// SemiTriPipeline::AnnotateComputed; because every store table is
// keyed-overwrite, that final pass leaves the store in exactly the
// state an offline ProcessTrajectory run would have produced.
//
// Not thread-safe; stream::SessionManager provides the sharded,
// lock-protected multi-object front end.

#include <memory>
#include <vector>

#include "common/serial.h"
#include "common/status.h"
#include "core/annotation_context.h"
#include "core/annotation_scratch.h"
#include "core/pipeline.h"
#include "core/types.h"
#include "stream/episode_detector.h"

namespace semitri::stream {

// Latency-profiler stage names recorded by sessions (extending the
// Fig. 17 per-stage view with the streaming path):
//   * one sample per closed episode, covering the provisional
//     annotation pass that followed its closure;
inline constexpr char kStreamStageEpisodeAnnotation[] =
    "stream_episode_annotation";
//   * one sample per closed trajectory, covering the finalization run
//     (AnnotateComputed: all annotation layers + store write-back).
inline constexpr char kStreamStageFinalizeTrajectory[] =
    "stream_finalize_trajectory";

struct SessionConfig {
  // Forwarded to EpisodeDetectorConfig::max_buffered_points: bounds the
  // raw points buffered per open trajectory (0 = unbounded).
  size_t max_buffered_points = 0;
  // Run the provisional annotation pass after each closed episode. When
  // false the session only annotates at trajectory close — final store
  // state is identical either way, the live view just lags.
  bool annotate_on_episode = true;
  // Retain the final PipelineResult of every closed trajectory in the
  // session (results()); unbounded, so off by default.
  bool keep_results = false;
};

class AnnotationSession {
 public:
  // Everything but the detector-policy configs comes from `pipeline`
  // (which must outlive the session): preprocessing / identification /
  // segmentation settings are taken from pipeline->config(), so the
  // streaming output is comparable to the same pipeline's offline path
  // by construction. Trajectory ids are assigned sequentially from
  // `first_id`, exactly as ProcessStream(object_id, stream, first_id).
  AnnotationSession(const core::SemiTriPipeline* pipeline,
                    core::ObjectId object_id, SessionConfig config = {},
                    core::TrajectoryId first_id = 0);

  struct FeedResult {
    // False when the detector rejected the fix (out-of-order or
    // non-finite); nothing else happened.
    bool accepted = true;
    // Episodes of the open trajectory that closed on this fix.
    size_t episodes_closed = 0;
    // A raw trajectory was finalized (split) by this fix.
    bool trajectory_closed = false;
    bool trajectory_discarded = false;
  };

  // Feeds one fix; errors only from annotation stages (a rejected fix
  // is a non-error FeedResult).
  [[nodiscard]] common::Result<FeedResult> Feed(const core::GpsPoint& fix);

  // Stream end: finalizes (or discards) the dangling open trajectory.
  // The session stays usable; a later Feed starts a new trajectory.
  [[nodiscard]] common::Status Flush();

  // Live view of the open trajectory: cleaned prefix, closed episodes,
  // and — when annotate_on_episode — the provisional annotation layers
  // over that prefix. Reset whenever a trajectory closes.
  const core::PipelineResult& partial() const { return partial_; }

  // Final results of closed trajectories (only with
  // SessionConfig::keep_results).
  const std::vector<core::PipelineResult>& results() const {
    return results_;
  }

  struct Stats {
    EpisodeDetector::Stats detector;
    // Provisional annotation passes run (>= 1 closed episode each).
    size_t annotation_passes = 0;
  };
  Stats stats() const { return {detector_.stats(), annotation_passes_}; }

  const EpisodeDetector& detector() const { return detector_; }
  core::ObjectId object_id() const { return object_id_; }

  // True while an unfinished trajectory is buffered: dropping the
  // session now (without Flush) loses its un-finalized rows.
  bool has_open_state() const { return detector_.has_open_trajectory(); }

  // Raw fixes currently buffered for the open trajectory (what the
  // SessionManager charges against its global buffered-fix budget).
  size_t buffered_points() const { return detector_.buffered_points(); }

  // The session's reusable data-plane working memory: every provisional
  // and finalization annotation pass runs out of it, so per-fix work
  // stops allocating once buffers reach the workload's high-water mark
  // (asserted by tests/stream_scratch_test.cc).
  const core::AnnotationScratch& scratch() const { return scratch_; }

  // --- checkpoint support ---------------------------------------------
  // Serializes the live session (detector state, partial result,
  // retained results, counters) so a session constructed against the
  // same pipeline/config/object resumes mid-stream and converges to
  // the exact store state an uninterrupted run would produce.
  void SaveState(common::StateWriter* w) const;
  [[nodiscard]] common::Status RestoreState(common::StateReader* r);

 private:
  // Folds newly finalized cleaned points + closed episodes into
  // partial_.
  void SyncPartial(const std::vector<core::Episode>& closed);
  // Provisional downstream pass over partial_ (store writes included,
  // latency recorded per closed episode under
  // kStreamStageEpisodeAnnotation).
  [[nodiscard]] common::Status AnnotatePrefix(size_t episodes_closed);
  // Full downstream pass + store write-back for a closed trajectory.
  [[nodiscard]] common::Status FinalizeClosed(ClosedTrajectory closed);

  const core::SemiTriPipeline* pipeline_;
  core::ObjectId object_id_;
  SessionConfig config_;
  EpisodeDetector detector_;
  core::PipelineResult partial_;
  std::vector<core::PipelineResult> results_;
  core::AnnotationScratch scratch_;
  size_t annotation_passes_ = 0;
};

}  // namespace semitri::stream

#endif  // SEMITRI_STREAM_ANNOTATION_SESSION_H_
