#ifndef SEMITRI_STREAM_SESSION_MANAGER_H_
#define SEMITRI_STREAM_SESSION_MANAGER_H_

// Thread-safe multi-object front end over stream::AnnotationSession:
// one live session per ObjectId, sharded so concurrent feeders of
// different objects rarely contend. All shared state is mutex-guarded
// and annotated for Clang's -Wthread-safety analysis; the pipeline's
// store and profiler sinks are internally synchronized, so a single
// SessionManager over a single pipeline is safe to hammer from many
// ingestion threads.
//
// Per-session memory is bounded by
// SessionConfig::max_buffered_points; idle sessions can be finalized
// and evicted (EvictIdle), and Flush()/Close() finalize the dangling
// open trajectory on demand.
//
// --- overload & admission control ------------------------------------
//
// AdmissionConfig adds *global* budgets on top of the per-session
// bounds: max live sessions, max buffered fixes across every open
// trajectory, and an approximate byte ceiling derived from both. When
// admitting a new session or fix would exceed a budget, the configured
// OverloadPolicy decides what happens:
//
//   * kRejectNew       — fail fast with Status::ResourceExhausted;
//   * kShedOldestIdle  — evict the globally least-recently-fed session
//                        (through the flushing Close path, so shedding
//                        never loses durably-written rows) until the
//                        budget fits, then admit;
//   * kBlockWithDeadline — poll (clock-paced, so deterministic under a
//                        FakeClock) until capacity frees up or
//                        block_deadline_seconds elapses, then give up
//                        with DeadlineExceeded.
//
// Per-object fix-rate token buckets bound how fast any single feeder
// can consume the shared budgets. Every shed / reject / rate-limit /
// defer decision is counted in stats() and surfaced via Health().
//
// The "least-recently-fed" order is maintained in a global min-heap of
// last-activity ticks with lazy invalidation (at most one heap entry
// per live session), so shedding and EvictIdle cost O(log n) per
// eviction instead of scanning every shard.
//
// Correctness contract (enforced by tests/stream_test.cc and the fuzz
// harness): feeding each object's stream in order — from any thread
// interleaving across objects — then CloseAll() leaves the store
// bit-identical to running the offline
// SemiTriPipeline::ProcessStream(object_id, stream, first_id) per
// object, with first_id = object_id * ids_per_object (the
// core::BatchProcessor id-block convention). Admission budgets shrink
// *which* fixes are accepted under overload, never the handling of the
// accepted ones.

#include <atomic>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <queue>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/clock.h"
#include "common/env.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/health.h"
#include "core/pipeline.h"
#include "core/types.h"
#include "stream/annotation_session.h"

namespace semitri::stream {

// What Feed does when admitting more work would exceed a global budget.
enum class OverloadPolicy {
  kRejectNew = 0,
  kShedOldestIdle,
  kBlockWithDeadline,
};

struct AdmissionConfig {
  // Global budgets; 0 = unbounded.
  size_t max_sessions = 0;
  // Total raw fixes buffered across every open trajectory.
  size_t max_buffered_fixes = 0;
  // Approximate bytes: buffered fixes * sizeof(GpsPoint) plus a fixed
  // per-session overhead (see kSessionOverheadBytes).
  size_t max_buffered_bytes = 0;

  OverloadPolicy overload_policy = OverloadPolicy::kRejectNew;
  // kBlockWithDeadline: how long one Feed may wait for capacity, and
  // how often it re-checks (sleeps go through the injected Clock, so a
  // FakeClock resolves the wait deterministically).
  double block_deadline_seconds = 0.5;
  double block_poll_seconds = 0.01;

  // Per-object token bucket: sustained fixes/second and burst capacity.
  // A fix arriving with an empty bucket is rejected with
  // ResourceExhausted and counted in rate_limited_fixes. 0 disables.
  double fix_rate_per_second = 0.0;
  double fix_burst = 32.0;
};

struct SessionManagerConfig {
  SessionConfig session;
  // Lock shards; feeds for objects on different shards proceed in
  // parallel.
  size_t num_shards = 16;
  // Trajectory-id block reserved per object (ids start at
  // object_id * ids_per_object), mirroring core::BatchProcessor.
  core::TrajectoryId ids_per_object = 1000;
  // Global overload budgets & policies (default: everything unbounded).
  AdmissionConfig admission;
  // Filesystem for Checkpoint()/Restore(); null = the real filesystem.
  // Tests pass a common::FaultFs to inject disk faults.
  common::Env* env = nullptr;
};

class SessionManager {
 public:
  // Fixed per-session overhead charged against max_buffered_bytes in
  // addition to the buffered fixes themselves (detector windows,
  // cleaned prefix bookkeeping, map nodes).
  static constexpr size_t kSessionOverheadBytes = 512;

  // `pipeline` must outlive the manager. `clock` drives idle ticks,
  // token-bucket refill and block-with-deadline waits (null = real
  // clock; tests inject common::FakeClock).
  SessionManager(const core::SemiTriPipeline* pipeline,
                 SessionManagerConfig config = {},
                 const common::Clock* clock = nullptr);

  // Feeds one fix to `object_id`'s session, creating it on first use.
  // Feeds for the same object must be time-ordered (out-of-order fixes
  // are rejected in the FeedResult); different objects are independent.
  // Under overload returns ResourceExhausted (reject/shed-failed/rate-
  // limited) or DeadlineExceeded (block-with-deadline timed out).
  [[nodiscard]] common::Result<AnnotationSession::FeedResult> Feed(
      core::ObjectId object_id, const core::GpsPoint& fix);

  // Finalizes the object's dangling open trajectory; the session stays
  // live. NotFound when no session exists.
  [[nodiscard]] common::Status Flush(core::ObjectId object_id);

  // Flush + evict the session (its detector/annotation counters are
  // folded into stats()). NotFound when no session exists.
  [[nodiscard]] common::Status Close(core::ObjectId object_id);

  // Closes every session (stream end). Keeps going on stage errors and
  // returns the first one.
  [[nodiscard]] common::Status CloseAll();

  // Closes sessions that have not been fed for at least
  // `max_idle_seconds`; returns how many were evicted. Driven by the
  // global activity heap — cost is O(log n) per evicted session, not a
  // scan of every shard. Keeps going on stage errors and returns the
  // first one.
  [[nodiscard]] common::Result<size_t> EvictIdle(double max_idle_seconds);

  size_t ActiveSessions() const;

  // True when a live (unretired) session exists for the object.
  bool HasLiveSession(core::ObjectId object_id) const;

  struct Stats {
    size_t active_sessions = 0;
    size_t sessions_opened = 0;
    size_t sessions_evicted = 0;
    // Evictions whose final Flush failed while the session still held
    // an unfinished trajectory: its un-finalized rows are gone. Every
    // other eviction goes through the flushing Close path losslessly.
    size_t evictions_with_data_loss = 0;
    size_t points_fed = 0;
    size_t points_rejected = 0;
    size_t episodes_closed = 0;
    size_t trajectories_closed = 0;
    size_t trajectories_discarded = 0;
    size_t forced_splits = 0;
    size_t annotation_passes = 0;
    // --- overload decisions -------------------------------------------
    // Raw fixes currently buffered across all open trajectories.
    size_t buffered_fixes = 0;
    // Sessions evicted by kShedOldestIdle to make room.
    size_t sessions_shed = 0;
    // New sessions turned away (budget + kRejectNew, or a failed shed /
    // timed-out block).
    size_t admission_rejected_sessions = 0;
    // Fixes turned away by the per-object token bucket.
    size_t rate_limited_fixes = 0;
    // Fixes to *existing* sessions turned away by the global budgets.
    size_t overload_rejected_fixes = 0;
    // Feeds that had to wait under kBlockWithDeadline...
    size_t admission_deferred = 0;
    // ...and how many of those gave up at the deadline.
    size_t admission_timeouts = 0;
    // --- checkpoint restore (re-adoption after restart/failover) ------
    // What the most recent Restore() rebuilt: live sessions resumed
    // mid-stream, and idle objects whose trajectory-id cursors came
    // back (both reject already-consumed re-fed fixes per-fix). Zero
    // until a Restore runs.
    size_t sessions_restored = 0;
    size_t resume_cursors_restored = 0;
  };
  // Aggregated over live and evicted sessions.
  Stats stats() const;

  // One-call operator view: per-stage breaker/latency health from the
  // pipeline plus this manager's budget gauges and overload counters.
  core::HealthSnapshot Health() const;

  // --- checkpoint / restore -------------------------------------------

  // Serializes every live session plus the retired counters into one
  // CRC-framed file (written to `path`.tmp, then renamed — a crash
  // leaves either the previous checkpoint or the new one, never a torn
  // file). Callers must quiesce feeders for a cross-object-consistent
  // snapshot; each shard is locked while serialized.
  [[nodiscard]] common::Status Checkpoint(const std::string& path) const;

  // Rebuilds live sessions from a Checkpoint file, replacing current
  // state (budget accounting and the activity heap are rebuilt to match
  // the restored sessions). The manager must wrap the same pipeline and
  // configuration that produced the checkpoint. Restored sessions
  // resume mid-stream: feeding the remaining fixes and closing
  // converges the store to the exact state an uninterrupted run would
  // have produced. Corruption on a CRC mismatch or malformed state.
  [[nodiscard]] common::Status Restore(const std::string& path);

  // --- live migration hooks (shard::ShardCluster) ----------------------

  // Serializes `object_id`'s state for a migration handoff: the live
  // session mid-stream (open trajectory included) when one exists,
  // otherwise just the trajectory-id resume cursor a previous
  // eviction/close left behind. The session is NOT removed or flushed
  // here — the source drains afterwards through the flushing Close(),
  // whose truncated rows the destination's completed trajectory
  // overwrites at merge time (keyed-overwrite store semantics). The
  // caller must quiesce feeds for the object from pack to handoff.
  // NotFound when the manager knows nothing about the object.
  [[nodiscard]] common::Status PackSession(core::ObjectId object_id,
                                           common::StateWriter* out) const;

  // Installs state packed by PackSession on another manager: the
  // session resumes mid-stream exactly where the source stopped
  // (trajectory ids continue, the open trajectory keeps buffering).
  // Budgets are charged unconditionally — migration admission is the
  // router's decision, not this manager's. AlreadyExists when the
  // object already has a live session here (state unchanged);
  // Corruption when the bytes are not a pack of `object_id`.
  [[nodiscard]] common::Status AdoptSession(core::ObjectId object_id,
                                            common::StateReader* in);

 private:
  // Global least-recently-fed index: a min-heap of (tick, object) with
  // lazy invalidation. Invariant: at most one heap entry per tracked
  // object (stale entries are re-pushed with the latest tick when
  // popped), so the heap never outgrows the live-session count plus
  // transient pops. Internally locked; never calls back into shards.
  class ActivityTracker {
   public:
    // Records activity at `tick` (monotonic nanos). Inserts the object
    // if unknown.
    void Touch(core::ObjectId id, int64_t tick) SEMITRI_EXCLUDES(mutex_);
    // Forgets the object (its heap entry dies lazily).
    void Remove(core::ObjectId id) SEMITRI_EXCLUDES(mutex_);
    // Claims and returns the least-recently-active object (and its
    // tick); the object is forgotten — the caller re-Touches it if the
    // claim is not acted upon. With `cutoff`, only returns objects
    // whose last activity is <= cutoff. nullopt when empty / none idle.
    std::optional<std::pair<core::ObjectId, int64_t>> PopOldest(
        int64_t cutoff = std::numeric_limits<int64_t>::max())
        SEMITRI_EXCLUDES(mutex_);
    void Clear() SEMITRI_EXCLUDES(mutex_);

   private:
    struct HeapEntry {
      int64_t tick;
      core::ObjectId id;
      bool operator>(const HeapEntry& o) const {
        return tick != o.tick ? tick > o.tick : id > o.id;
      }
    };
    mutable std::mutex mutex_;
    std::priority_queue<HeapEntry, std::vector<HeapEntry>,
                        std::greater<HeapEntry>>
        heap_ SEMITRI_GUARDED_BY(mutex_);
    // Latest observed tick per live object (authoritative).
    std::unordered_map<core::ObjectId, int64_t> latest_
        SEMITRI_GUARDED_BY(mutex_);
  };

  struct Entry {
    std::unique_ptr<AnnotationSession> session;
    int64_t last_feed_nanos = 0;
    // Buffered fixes this session is currently charged for against the
    // global budget.
    size_t charged_fixes = 0;
    // Per-object rate-limit token bucket.
    double tokens = 0.0;
    int64_t token_refill_nanos = 0;
    bool bucket_primed = false;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<core::ObjectId, Entry> sessions SEMITRI_GUARDED_BY(mutex);
    // Counters carried over from evicted sessions so stats() survives
    // eviction.
    size_t opened SEMITRI_GUARDED_BY(mutex) = 0;
    size_t evicted SEMITRI_GUARDED_BY(mutex) = 0;
    size_t evicted_with_data_loss SEMITRI_GUARDED_BY(mutex) = 0;
    AnnotationSession::Stats retired SEMITRI_GUARDED_BY(mutex) = {};
    // Next trajectory id for objects whose session was retired
    // (eviction / Close / shed): a reconnecting object must keep
    // ascending through its id block, or the fresh session would
    // restart at object_id * ids_per_object and overwrite the durable
    // rows its predecessor already finalized.
    std::map<core::ObjectId, core::TrajectoryId> resume_ids
        SEMITRI_GUARDED_BY(mutex);
  };

  Shard& ShardFor(core::ObjectId object_id) const;
  // Flushes `entry`'s session, folds its counters into the shard,
  // releases its budget charges, and removes it. Returns the flush
  // status.
  [[nodiscard]] common::Status RetireLocked(Shard& shard,
                              std::map<core::ObjectId, Entry>::iterator it)
      SEMITRI_REQUIRES(shard.mutex);

  // Approximate resident bytes for the given budget usage.
  size_t ApproxBytes(size_t fixes, size_t sessions) const {
    return fixes * sizeof(core::GpsPoint) +
           sessions * kSessionOverheadBytes;
  }
  // True while any configured budget is exceeded by current usage.
  bool OverBudget() const;
  // Applies the overload policy until the budgets fit (shedding spares
  // `exclude`). OK = admitted; ResourceExhausted / DeadlineExceeded =
  // give up (the caller rolls its optimistic claims back).
  [[nodiscard]] common::Status ResolveOverload(core::ObjectId exclude);
  // Evicts the least-recently-fed session other than `exclude`; false
  // when no candidate exists.
  bool ShedOldestIdle(core::ObjectId exclude);
  // Token-bucket admission for one fix of `entry` at `now`.
  bool ConsumeToken(Entry& entry, int64_t now) const;

  const core::SemiTriPipeline* pipeline_;
  SessionManagerConfig config_;
  common::Env* const env_;  // resolved from config_.env, never null
  const common::Clock* clock_;
  std::vector<std::unique_ptr<Shard>> shards_;
  ActivityTracker activity_;

  // Global budget usage (claim-then-rollback accounting: Feed claims
  // optimistically with fetch_add, reconciles to the true delta after
  // the session consumed the fix, and rolls back on rejection).
  std::atomic<size_t> live_sessions_{0};
  std::atomic<int64_t> buffered_fixes_{0};
  // What the most recent Restore() rebuilt (see Stats).
  std::atomic<size_t> sessions_restored_{0};
  std::atomic<size_t> resume_cursors_restored_{0};

  // Overload decision counters (monotonic).
  std::atomic<size_t> sessions_shed_{0};
  std::atomic<size_t> admission_rejected_sessions_{0};
  std::atomic<size_t> rate_limited_fixes_{0};
  std::atomic<size_t> overload_rejected_fixes_{0};
  std::atomic<size_t> admission_deferred_{0};
  std::atomic<size_t> admission_timeouts_{0};
};

}  // namespace semitri::stream

#endif  // SEMITRI_STREAM_SESSION_MANAGER_H_
