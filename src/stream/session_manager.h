#ifndef SEMITRI_STREAM_SESSION_MANAGER_H_
#define SEMITRI_STREAM_SESSION_MANAGER_H_

// Thread-safe multi-object front end over stream::AnnotationSession:
// one live session per ObjectId, sharded so concurrent feeders of
// different objects rarely contend. All shared state is mutex-guarded
// and annotated for Clang's -Wthread-safety analysis; the pipeline's
// store and profiler sinks are internally synchronized, so a single
// SessionManager over a single pipeline is safe to hammer from many
// ingestion threads.
//
// Per-session memory is bounded by
// SessionConfig::max_buffered_points; idle sessions can be finalized
// and evicted (EvictIdle), and Flush()/Close() finalize the dangling
// open trajectory on demand.
//
// Correctness contract (enforced by tests/stream_test.cc and the fuzz
// harness): feeding each object's stream in order — from any thread
// interleaving across objects — then CloseAll() leaves the store
// bit-identical to running the offline
// SemiTriPipeline::ProcessStream(object_id, stream, first_id) per
// object, with first_id = object_id * ids_per_object (the
// core::BatchProcessor id-block convention).

#include <chrono>
#include <map>
#include <memory>
#include <mutex>
#include <vector>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/pipeline.h"
#include "core/types.h"
#include "stream/annotation_session.h"

namespace semitri::stream {

struct SessionManagerConfig {
  SessionConfig session;
  // Lock shards; feeds for objects on different shards proceed in
  // parallel.
  size_t num_shards = 16;
  // Trajectory-id block reserved per object (ids start at
  // object_id * ids_per_object), mirroring core::BatchProcessor.
  core::TrajectoryId ids_per_object = 1000;
};

class SessionManager {
 public:
  // `pipeline` must outlive the manager.
  SessionManager(const core::SemiTriPipeline* pipeline,
                 SessionManagerConfig config = {});

  // Feeds one fix to `object_id`'s session, creating it on first use.
  // Feeds for the same object must be time-ordered (out-of-order fixes
  // are rejected in the FeedResult); different objects are independent.
  common::Result<AnnotationSession::FeedResult> Feed(
      core::ObjectId object_id, const core::GpsPoint& fix);

  // Finalizes the object's dangling open trajectory; the session stays
  // live. NotFound when no session exists.
  common::Status Flush(core::ObjectId object_id);

  // Flush + evict the session (its detector/annotation counters are
  // folded into stats()). NotFound when no session exists.
  common::Status Close(core::ObjectId object_id);

  // Closes every session (stream end). Keeps going on stage errors and
  // returns the first one.
  common::Status CloseAll();

  // Closes sessions that have not been fed for at least
  // `max_idle_seconds`; returns how many were evicted. Keeps going on
  // stage errors and returns the first one.
  common::Result<size_t> EvictIdle(double max_idle_seconds);

  size_t ActiveSessions() const;

  struct Stats {
    size_t active_sessions = 0;
    size_t sessions_opened = 0;
    size_t sessions_evicted = 0;
    // Evictions whose final Flush failed while the session still held
    // an unfinished trajectory: its un-finalized rows are gone. Every
    // other eviction goes through the flushing Close path losslessly.
    size_t evictions_with_data_loss = 0;
    size_t points_fed = 0;
    size_t points_rejected = 0;
    size_t episodes_closed = 0;
    size_t trajectories_closed = 0;
    size_t trajectories_discarded = 0;
    size_t forced_splits = 0;
    size_t annotation_passes = 0;
  };
  // Aggregated over live and evicted sessions.
  Stats stats() const;

  // --- checkpoint / restore -------------------------------------------

  // Serializes every live session plus the retired counters into one
  // CRC-framed file (written to `path`.tmp, then renamed — a crash
  // leaves either the previous checkpoint or the new one, never a torn
  // file). Callers must quiesce feeders for a cross-object-consistent
  // snapshot; each shard is locked while serialized.
  common::Status Checkpoint(const std::string& path) const;

  // Rebuilds live sessions from a Checkpoint file, replacing current
  // state. The manager must wrap the same pipeline and configuration
  // that produced the checkpoint. Restored sessions resume mid-stream:
  // feeding the remaining fixes and closing converges the store to the
  // exact state an uninterrupted run would have produced. Corruption on
  // a CRC mismatch or malformed state.
  common::Status Restore(const std::string& path);

 private:
  struct Entry {
    std::unique_ptr<AnnotationSession> session;
    std::chrono::steady_clock::time_point last_feed;
  };
  struct Shard {
    mutable std::mutex mutex;
    std::map<core::ObjectId, Entry> sessions SEMITRI_GUARDED_BY(mutex);
    // Counters carried over from evicted sessions so stats() survives
    // eviction.
    size_t opened SEMITRI_GUARDED_BY(mutex) = 0;
    size_t evicted SEMITRI_GUARDED_BY(mutex) = 0;
    size_t evicted_with_data_loss SEMITRI_GUARDED_BY(mutex) = 0;
    AnnotationSession::Stats retired SEMITRI_GUARDED_BY(mutex) = {};
  };

  Shard& ShardFor(core::ObjectId object_id) const;
  // Flushes `entry`'s session, folds its counters into the shard, and
  // removes it. Returns the flush status.
  common::Status RetireLocked(Shard& shard,
                              std::map<core::ObjectId, Entry>::iterator it)
      SEMITRI_REQUIRES(shard.mutex);

  const core::SemiTriPipeline* pipeline_;
  SessionManagerConfig config_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace semitri::stream

#endif  // SEMITRI_STREAM_SESSION_MANAGER_H_
