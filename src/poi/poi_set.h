#ifndef SEMITRI_POI_POI_SET_H_
#define SEMITRI_POI_POI_SET_H_

// Points of interest (P_point, Def. 2) grouped into a small number of
// categories — the hidden states of the Semantic Point Annotation HMM.
// The paper's Milan dataset has 5 top categories: services, feedings,
// item sale, person life, unknown.

#include <memory>
#include <string>
#include <vector>

#include "core/types.h"
#include "geo/point.h"
#include "index/spatial_index.h"

namespace semitri::poi {

// The Milan POI top-categories used throughout the paper's §4.3/§5.2.
enum class MilanCategory {
  kServices = 0,
  kFeedings = 1,
  kItemSale = 2,
  kPersonLife = 3,
  kUnknown = 4,
};

inline constexpr int kNumMilanCategories = 5;

const char* MilanCategoryName(MilanCategory category);

struct Poi {
  core::PlaceId id = core::kInvalidPlaceId;
  geo::Point position;
  int category = 0;  // index into PoiSet::category_names()
  std::string name;
};

class PoiSet {
 public:
  // `category_names` fixes the category space (HMM state space);
  // `index_config` selects the spatial-index backend for the repository.
  explicit PoiSet(std::vector<std::string> category_names,
                  index::SpatialIndexConfig index_config = {});

  // A PoiSet over the paper's five Milan categories.
  static PoiSet MilanCategories(index::SpatialIndexConfig index_config = {});

  core::PlaceId Add(const geo::Point& position, int category,
                    std::string name = "");

  size_t size() const { return pois_.size(); }
  bool empty() const { return pois_.empty(); }
  const Poi& Get(core::PlaceId id) const {
    return pois_[static_cast<size_t>(id)];
  }
  const std::vector<Poi>& pois() const { return pois_; }

  size_t num_categories() const { return category_names_.size(); }
  const std::vector<std::string>& category_names() const {
    return category_names_;
  }

  // POIs per category.
  const std::vector<size_t>& category_counts() const {
    return category_counts_;
  }

  // π: category share of the repository (the paper's initial-state
  // estimate, e.g. {4339, 7036, 12510, 15371, 516} / 39772 for Milan).
  std::vector<double> CategoryPriors() const;

  // Nearest POI to p (kInvalidPlaceId when empty).
  core::PlaceId Nearest(const geo::Point& p) const;

  // Nearest POI of a given category.
  core::PlaceId NearestOfCategory(const geo::Point& p, int category) const;

  // All POIs within `radius` of p.
  std::vector<core::PlaceId> WithinRadius(const geo::Point& p,
                                          double radius) const;

  geo::BoundingBox Bounds() const { return index_->Bounds(); }

  const index::SpatialIndex<core::PlaceId>& spatial_index() const {
    return *index_;
  }

 private:
  std::vector<std::string> category_names_;
  std::vector<Poi> pois_;
  std::vector<size_t> category_counts_;
  std::unique_ptr<index::SpatialIndex<core::PlaceId>> index_;
};

}  // namespace semitri::poi

#endif  // SEMITRI_POI_POI_SET_H_
