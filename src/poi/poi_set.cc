#include "poi/poi_set.h"

#include <limits>

namespace semitri::poi {

const char* MilanCategoryName(MilanCategory category) {
  switch (category) {
    case MilanCategory::kServices: return "services";
    case MilanCategory::kFeedings: return "feedings";
    case MilanCategory::kItemSale: return "item sale";
    case MilanCategory::kPersonLife: return "person life";
    case MilanCategory::kUnknown: return "unknown";
  }
  return "unknown";
}

PoiSet::PoiSet(std::vector<std::string> category_names,
               index::SpatialIndexConfig index_config)
    : category_names_(std::move(category_names)),
      category_counts_(category_names_.size(), 0),
      index_(index::MakeSpatialIndex<core::PlaceId>(index_config)) {}

PoiSet PoiSet::MilanCategories(index::SpatialIndexConfig index_config) {
  std::vector<std::string> names;
  names.reserve(kNumMilanCategories);
  for (int c = 0; c < kNumMilanCategories; ++c) {
    names.push_back(MilanCategoryName(static_cast<MilanCategory>(c)));
  }
  return PoiSet(std::move(names), index_config);
}

core::PlaceId PoiSet::Add(const geo::Point& position, int category,
                          std::string name) {
  Poi p;
  p.id = static_cast<core::PlaceId>(pois_.size());
  p.position = position;
  p.category = category;
  p.name = std::move(name);
  pois_.push_back(std::move(p));
  ++category_counts_[static_cast<size_t>(category)];
  index_->Insert(geo::BoundingBox::FromPoint(position), pois_.back().id);
  return pois_.back().id;
}

std::vector<double> PoiSet::CategoryPriors() const {
  std::vector<double> priors(category_names_.size(), 0.0);
  if (pois_.empty()) {
    // Uninformative prior over an empty repository.
    double u = 1.0 / static_cast<double>(category_names_.size());
    for (double& p : priors) p = u;
    return priors;
  }
  for (size_t c = 0; c < priors.size(); ++c) {
    priors[c] = static_cast<double>(category_counts_[c]) /
                static_cast<double>(pois_.size());
  }
  return priors;
}

core::PlaceId PoiSet::Nearest(const geo::Point& p) const {
  auto nn = index_->NearestNeighbors(p, 1);
  return nn.empty() ? core::kInvalidPlaceId : nn.front().value;
}

core::PlaceId PoiSet::NearestOfCategory(const geo::Point& p,
                                        int category) const {
  // Expanding-k search; POI boxes are points so box distance is exact.
  size_t k = 8;
  while (true) {
    auto nn = index_->NearestNeighbors(p, std::min(k, pois_.size()));
    for (const auto& entry : nn) {
      if (Get(entry.value).category == category) return entry.value;
    }
    if (nn.size() >= pois_.size()) return core::kInvalidPlaceId;
    k *= 2;
  }
}

std::vector<core::PlaceId> PoiSet::WithinRadius(const geo::Point& p,
                                                double radius) const {
  return index_->QueryRadius(p, radius);
}

}  // namespace semitri::poi
