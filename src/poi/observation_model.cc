#include "poi/observation_model.h"

#include <cmath>

namespace semitri::poi {

namespace {

geo::BoundingBox GridExtent(const PoiSet& pois, double cell) {
  geo::BoundingBox extent = pois.Bounds();
  if (extent.IsEmpty()) {
    extent = geo::BoundingBox({0.0, 0.0}, {cell, cell});
  }
  // Pad so stops slightly outside the POI hull still land on the grid.
  return extent.Inflated(2.0 * cell);
}

}  // namespace

PoiObservationModel::PoiObservationModel(const PoiSet* pois,
                                         ObservationModelConfig config)
    : pois_(pois),
      config_(std::move(config)),
      grid_(GridExtent(*pois, config_.grid_cell_meters),
            config_.grid_cell_meters) {
  // Register POIs in grid cells.
  for (const Poi& p : pois_->pois()) {
    grid_.Insert(p.position, p.id);
  }
  // Precompute Pr(grid_jk | Ci) for every cell: sum of Gaussian
  // influences of the POIs in the neighborhood box of that cell.
  const size_t cols = grid_.cols();
  const size_t rows = grid_.rows();
  cell_densities_.assign(cols * rows,
                         std::vector<double>(pois_->num_categories(), 0.0));
  for (size_t cy = 0; cy < rows; ++cy) {
    for (size_t cx = 0; cx < cols; ++cx) {
      geo::Point center = grid_.CellCenter(cx, cy);
      std::vector<double>& densities = cell_densities_[cy * cols + cx];
      for (core::PlaceId id :
           grid_.Neighborhood(center, config_.neighbor_ring)) {
        const Poi& p = pois_->Get(id);
        densities[static_cast<size_t>(p.category)] +=
            GaussianInfluence(center, p);
      }
    }
  }
}

double PoiObservationModel::SigmaFor(int category) const {
  size_t c = static_cast<size_t>(category);
  if (c < config_.category_sigma.size() && config_.category_sigma[c] > 0.0) {
    return config_.category_sigma[c];
  }
  return config_.default_sigma_meters;
}

double PoiObservationModel::GaussianInfluence(const geo::Point& at,
                                              const Poi& poi) const {
  double sigma = SigmaFor(poi.category);
  double d2 = at.SquaredDistanceTo(poi.position);
  // Isotropic 2-D Gaussian with covariance diag(σ_c², σ_c²).
  return std::exp(-d2 / (2.0 * sigma * sigma)) /
         (2.0 * M_PI * sigma * sigma);
}

const std::vector<double>& PoiObservationModel::CellDensities(
    size_t cx, size_t cy) const {
  return cell_densities_[cy * grid_.cols() + cx];
}

std::vector<double> PoiObservationModel::EmissionsAt(
    const geo::Point& center) const {
  auto [cx, cy] = grid_.CellOf(center);
  return CellDensities(cx, cy);
}

std::vector<double> PoiObservationModel::EmissionsFor(
    const geo::BoundingBox& box) const {
  auto [x0, y0] = grid_.CellOf(box.min);
  auto [x1, y1] = grid_.CellOf(box.max);
  std::vector<double> out(pois_->num_categories(), 0.0);
  size_t count = 0;
  for (size_t cy = y0; cy <= y1; ++cy) {
    for (size_t cx = x0; cx <= x1; ++cx) {
      const std::vector<double>& cell = CellDensities(cx, cy);
      for (size_t c = 0; c < out.size(); ++c) out[c] += cell[c];
      ++count;
    }
  }
  if (count > 0) {
    for (double& v : out) v /= static_cast<double>(count);
  }
  return out;
}

std::vector<double> PoiObservationModel::EmissionsExact(
    const geo::Point& center) const {
  std::vector<double> out(pois_->num_categories(), 0.0);
  for (const Poi& p : pois_->pois()) {
    out[static_cast<size_t>(p.category)] += GaussianInfluence(center, p);
  }
  return out;
}

}  // namespace semitri::poi
