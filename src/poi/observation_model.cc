#include "poi/observation_model.h"

#include <algorithm>
#include <cmath>

namespace semitri::poi {

namespace {

geo::BoundingBox GridExtent(const PoiSet& pois, double cell) {
  geo::BoundingBox extent = pois.Bounds();
  if (extent.IsEmpty()) {
    extent = geo::BoundingBox({0.0, 0.0}, {cell, cell});
  }
  // Pad so stops slightly outside the POI hull still land on the grid.
  return extent.Inflated(2.0 * cell);
}

}  // namespace

// semitri-lint: allow(exec-checkpoint-coverage) — straight-line batched
// kernel; deadline polling happens at the call sites' granularity.
void AccumulateGaussianDensities(const double* px, const double* py,
                                 const double* two_sigma2, const double* norm,
                                 const int32_t* cat, size_t n, double qx,
                                 double qy, double* out) {
  for (size_t i = 0; i < n; ++i) {
    double dx = qx - px[i];
    double dy = qy - py[i];
    double d2 = dx * dx + dy * dy;
    // Isotropic 2-D Gaussian with covariance diag(σ_c², σ_c²).
    out[static_cast<size_t>(cat[i])] +=
        std::exp(-d2 / two_sigma2[i]) / norm[i];
  }
}

PoiObservationModel::PoiObservationModel(const PoiSet* pois,
                                         ObservationModelConfig config)
    : pois_(pois),
      config_(std::move(config)),
      grid_(GridExtent(*pois, config_.grid_cell_meters),
            config_.grid_cell_meters) {
  // Mirror the POIs into SoA form (indexed by PlaceId) and register them
  // in grid cells.
  const std::vector<Poi>& all = pois_->pois();
  poi_x_.reserve(all.size());
  poi_y_.reserve(all.size());
  poi_two_sigma2_.reserve(all.size());
  poi_norm_.reserve(all.size());
  poi_cat_.reserve(all.size());
  for (const Poi& p : all) {
    double sigma = SigmaFor(p.category);
    poi_x_.push_back(p.position.x);
    poi_y_.push_back(p.position.y);
    poi_two_sigma2_.push_back(2.0 * sigma * sigma);
    poi_norm_.push_back(2.0 * M_PI * sigma * sigma);
    poi_cat_.push_back(static_cast<int32_t>(p.category));
    grid_.Insert(p.position, p.id);
  }
  // Precompute Pr(grid_jk | Ci) for every cell: sum of Gaussian
  // influences of the POIs in the neighborhood box of that cell. The
  // SoA mirror is re-ordered into a slab sorted by (grid row, grid
  // column, insertion order) with per-bucket offsets, so a cell's
  // neighborhood is one contiguous slice per box row — no per-cell
  // gather or bucket walk. The slice concatenation visits POIs in
  // exactly the order GridIndex::Neighborhood yields them (box rows
  // ascending, buckets left to right, insertion order within a
  // bucket), so the accumulated densities are bit-identical to the
  // gather-per-cell pass this replaces.
  const size_t cols = grid_.cols();
  const size_t rows = grid_.rows();
  const size_t num_cat = pois_->num_categories();
  cell_densities_.assign(cols * rows * num_cat, 0.0);
  const size_t num_pois = all.size();
  std::vector<size_t> bucket_begin(rows * cols + 1, 0);
  std::vector<size_t> bucket_of(num_pois);
  for (size_t p = 0; p < num_pois; ++p) {
    auto [bx, by] = grid_.CellOf(all[p].position);
    bucket_of[p] = by * cols + bx;
    ++bucket_begin[bucket_of[p] + 1];
  }
  for (size_t b = 1; b <= rows * cols; ++b) {
    bucket_begin[b] += bucket_begin[b - 1];
  }
  std::vector<double> sx(num_pois), sy(num_pois), ss2(num_pois),
      sn(num_pois);
  std::vector<int32_t> sc(num_pois);
  std::vector<size_t> fill(bucket_begin.begin(), bucket_begin.end() - 1);
  for (size_t p = 0; p < num_pois; ++p) {
    size_t at = fill[bucket_of[p]]++;
    sx[at] = poi_x_[p];
    sy[at] = poi_y_[p];
    ss2[at] = poi_two_sigma2_[p];
    sn[at] = poi_norm_[p];
    sc[at] = poi_cat_[p];
  }
  const size_t ring = config_.neighbor_ring;
  for (size_t cy = 0; cy < rows; ++cy) {
    const size_t y0 = cy >= ring ? cy - ring : 0;
    const size_t y1 = std::min(rows - 1, cy + ring);
    for (size_t cx = 0; cx < cols; ++cx) {
      const size_t x0 = cx >= ring ? cx - ring : 0;
      const size_t x1 = std::min(cols - 1, cx + ring);
      geo::Point center = grid_.CellCenter(cx, cy);
      double* out = cell_densities_.data() + (cy * cols + cx) * num_cat;
      for (size_t y = y0; y <= y1; ++y) {
        const size_t first = bucket_begin[y * cols + x0];
        const size_t last = bucket_begin[y * cols + x1 + 1];
        if (first == last) continue;
        AccumulateGaussianDensities(sx.data() + first, sy.data() + first,
                                    ss2.data() + first, sn.data() + first,
                                    sc.data() + first, last - first,
                                    center.x, center.y, out);
      }
    }
  }
}

double PoiObservationModel::SigmaFor(int category) const {
  size_t c = static_cast<size_t>(category);
  if (c < config_.category_sigma.size() && config_.category_sigma[c] > 0.0) {
    return config_.category_sigma[c];
  }
  return config_.default_sigma_meters;
}

std::span<const double> PoiObservationModel::CellDensities(size_t cx,
                                                           size_t cy) const {
  const size_t num_cat = pois_->num_categories();
  return {cell_densities_.data() + (cy * grid_.cols() + cx) * num_cat,
          num_cat};
}

void PoiObservationModel::EmissionsAtInto(const geo::Point& center,
                                          std::span<double> out) const {
  auto [cx, cy] = grid_.CellOf(center);
  std::span<const double> cell = CellDensities(cx, cy);
  std::copy(cell.begin(), cell.end(), out.begin());
}

void PoiObservationModel::EmissionsForInto(const geo::BoundingBox& box,
                                           std::span<double> out) const {
  auto [x0, y0] = grid_.CellOf(box.min);
  auto [x1, y1] = grid_.CellOf(box.max);
  std::fill(out.begin(), out.end(), 0.0);
  size_t count = 0;
  for (size_t cy = y0; cy <= y1; ++cy) {
    for (size_t cx = x0; cx <= x1; ++cx) {
      std::span<const double> cell = CellDensities(cx, cy);
      for (size_t c = 0; c < out.size(); ++c) out[c] += cell[c];
      ++count;
    }
  }
  if (count > 0) {
    for (double& v : out) v /= static_cast<double>(count);
  }
}

void PoiObservationModel::EmissionsExactInto(const geo::Point& center,
                                             std::span<double> out) const {
  std::fill(out.begin(), out.end(), 0.0);
  AccumulateGaussianDensities(poi_x_.data(), poi_y_.data(),
                              poi_two_sigma2_.data(), poi_norm_.data(),
                              poi_cat_.data(), poi_x_.size(), center.x,
                              center.y, out.data());
}

std::vector<double> PoiObservationModel::EmissionsAt(
    const geo::Point& center) const {
  std::vector<double> out(pois_->num_categories());
  EmissionsAtInto(center, out);
  return out;
}

std::vector<double> PoiObservationModel::EmissionsFor(
    const geo::BoundingBox& box) const {
  std::vector<double> out(pois_->num_categories());
  EmissionsForInto(box, out);
  return out;
}

std::vector<double> PoiObservationModel::EmissionsExact(
    const geo::Point& center) const {
  std::vector<double> out(pois_->num_categories());
  EmissionsExactInto(center, out);
  return out;
}

}  // namespace semitri::poi
