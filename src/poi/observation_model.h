#ifndef SEMITRI_POI_OBSERVATION_MODEL_H_
#define SEMITRI_POI_OBSERVATION_MODEL_H_

// The HMM observation model B of the Semantic Point Annotation Layer
// (paper §4.3, Lemma 1).
//
// The influence of a POI on a stop is a 2-D Gaussian centered on the POI
// with category-specific bandwidth σ_c; Pr(o | Ci) is proportional to the
// sum of influences of the category's POIs (Lemma 1). For efficiency the
// model discretizes space into a grid and precomputes per-cell,
// per-category densities, summing only POIs in a neighborhood box of
// cells (the paper's discretization + neighboring pruning). An exact
// (non-discretized, all-POIs) evaluation is kept for the ablation bench.

#include <vector>

#include "geo/box.h"
#include "geo/point.h"
#include "index/grid_index.h"
#include "poi/poi_set.h"

namespace semitri::poi {

struct ObservationModelConfig {
  double grid_cell_meters = 30.0;
  // Neighborhood pruning: POIs within this many cells of the query cell
  // contribute (a (2·ring+1)² cell box). Defaults cover ~2.5σ.
  size_t neighbor_ring = 5;
  // Default Gaussian bandwidth σ_c (meters) applied to every category;
  // override per category via `category_sigma`.
  double default_sigma_meters = 60.0;
  std::vector<double> category_sigma;  // optional, size = num categories
};

class PoiObservationModel {
 public:
  // `pois` must outlive the model. Precomputes the discretized densities.
  PoiObservationModel(const PoiSet* pois, ObservationModelConfig config = {});

  size_t num_categories() const { return pois_->num_categories(); }

  // Pr(o | Ci) up to a common factor, for a stop observed at `center`
  // (discretized: reads the precomputed cell). One entry per category.
  std::vector<double> EmissionsAt(const geo::Point& center) const;

  // Bounding-rectangle form: averages the cells the box covers.
  std::vector<double> EmissionsFor(const geo::BoundingBox& box) const;

  // Exact evaluation (no grid, no pruning) — ablation reference.
  std::vector<double> EmissionsExact(const geo::Point& center) const;

  // Per-category density at a grid cell (testing / visualization).
  const std::vector<double>& CellDensities(size_t cx, size_t cy) const;

  const index::GridIndex<core::PlaceId>& grid() const { return grid_; }
  double SigmaFor(int category) const;

 private:
  double GaussianInfluence(const geo::Point& at, const Poi& poi) const;

  const PoiSet* pois_;
  ObservationModelConfig config_;
  index::GridIndex<core::PlaceId> grid_;
  // cell_densities_[cy * cols + cx][category]
  std::vector<std::vector<double>> cell_densities_;
};

}  // namespace semitri::poi

#endif  // SEMITRI_POI_OBSERVATION_MODEL_H_
