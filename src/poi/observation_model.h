#ifndef SEMITRI_POI_OBSERVATION_MODEL_H_
#define SEMITRI_POI_OBSERVATION_MODEL_H_

// The HMM observation model B of the Semantic Point Annotation Layer
// (paper §4.3, Lemma 1).
//
// The influence of a POI on a stop is a 2-D Gaussian centered on the POI
// with category-specific bandwidth σ_c; Pr(o | Ci) is proportional to the
// sum of influences of the category's POIs (Lemma 1). For efficiency the
// model discretizes space into a grid and precomputes per-cell,
// per-category densities, summing only POIs in a neighborhood box of
// cells (the paper's discretization + neighboring pruning). An exact
// (non-discretized, all-POIs) evaluation is kept for the ablation bench.
//
// Data plane: POIs are mirrored into structure-of-arrays form
// (x/y/2σ²/normalizer/category) at construction and all density sums run
// through the batched AccumulateGaussianDensities kernel; the per-cell
// density table is one flat row-major array with stride num_categories.

#include <cstdint>
#include <span>
#include <vector>

#include "geo/box.h"
#include "geo/point.h"
#include "index/grid_index.h"
#include "poi/poi_set.h"

namespace semitri::poi {

// Batched Lemma-1 kernel: accumulates the Gaussian influence of each POI
// lane i at query (qx, qy) into its category's sum,
//   out[cat[i]] += exp(-d² / two_sigma2[i]) / norm[i],
// with d² = (qx - px[i])² + (qy - py[i])², in lane order (bit-identical
// to the scalar per-POI accumulation it replaces). `out` must hold every
// category in `cat` and is NOT cleared here.
void AccumulateGaussianDensities(const double* px, const double* py,
                                 const double* two_sigma2, const double* norm,
                                 const int32_t* cat, size_t n, double qx,
                                 double qy, double* out);

struct ObservationModelConfig {
  double grid_cell_meters = 30.0;
  // Neighborhood pruning: POIs within this many cells of the query cell
  // contribute (a (2·ring+1)² cell box). Defaults cover ~2.5σ.
  size_t neighbor_ring = 5;
  // Default Gaussian bandwidth σ_c (meters) applied to every category;
  // override per category via `category_sigma`.
  double default_sigma_meters = 60.0;
  std::vector<double> category_sigma;  // optional, size = num categories
};

class PoiObservationModel {
 public:
  // `pois` must outlive the model. Precomputes the discretized densities.
  PoiObservationModel(const PoiSet* pois, ObservationModelConfig config = {});

  size_t num_categories() const { return pois_->num_categories(); }

  // Pr(o | Ci) up to a common factor, for a stop observed at `center`
  // (discretized: reads the precomputed cell), written into `out`
  // (size num_categories()). One entry per category.
  void EmissionsAtInto(const geo::Point& center, std::span<double> out) const;

  // Bounding-rectangle form: averages the cells the box covers.
  void EmissionsForInto(const geo::BoundingBox& box,
                        std::span<double> out) const;

  // Exact evaluation (no grid, no pruning) — ablation reference.
  void EmissionsExactInto(const geo::Point& center,
                          std::span<double> out) const;

  // Allocating conveniences for the Into variants above.
  std::vector<double> EmissionsAt(const geo::Point& center) const;
  std::vector<double> EmissionsFor(const geo::BoundingBox& box) const;
  std::vector<double> EmissionsExact(const geo::Point& center) const;

  // Per-category density at a grid cell (testing / visualization).
  std::span<const double> CellDensities(size_t cx, size_t cy) const;

  const index::GridIndex<core::PlaceId>& grid() const { return grid_; }
  double SigmaFor(int category) const;

 private:
  const PoiSet* pois_;
  ObservationModelConfig config_;
  index::GridIndex<core::PlaceId> grid_;
  // POI mirror in SoA form, indexed by PlaceId (= PoiSet index), feeding
  // the batched kernel.
  std::vector<double> poi_x_, poi_y_, poi_two_sigma2_, poi_norm_;
  std::vector<int32_t> poi_cat_;
  // Flat row-major density table: cell (cx, cy) is the row
  // cell_densities_[(cy * cols + cx) * num_categories ...].
  std::vector<double> cell_densities_;
};

}  // namespace semitri::poi

#endif  // SEMITRI_POI_OBSERVATION_MODEL_H_
