#ifndef SEMITRI_POI_POINT_ANNOTATOR_H_
#define SEMITRI_POI_POINT_ANNOTATOR_H_

// Semantic Point Annotation Layer — paper §4.3, Algorithm 3.
//
// The stop sequence of a trajectory is the observation sequence of an
// HMM whose hidden states are POI categories; π comes from the category
// shares of the repository, A is either supplied (learned from history)
// or defaults to a diagonal-dominant matrix (Fig. 6), and B is the
// discretized Gaussian POI observation model (Lemma 1). Viterbi decoding
// yields the most likely category ("the purpose behind the stop") per
// stop episode.
//
// Data plane: emission probabilities are built row-by-row into a flat
// hmm::EmissionMatrix (one build shared by decoding and the posterior
// pass) and the Viterbi grid runs out of the caller's arena; both live
// in PointScratch so repeated annotation runs reuse their capacity.
//
// NearestPoiAnnotator is the traditional one-to-one baseline ([28]) used
// in the ablation bench.

#include <vector>

#include "common/arena.h"
#include "common/exec_control.h"
#include "common/status.h"
#include "core/types.h"
#include "hmm/emission_matrix.h"
#include "hmm/hmm.h"
#include "poi/observation_model.h"
#include "poi/poi_set.h"

namespace semitri::poi {

struct PointAnnotatorConfig {
  ObservationModelConfig observation;
  // State-transition matrix A; defaults to Fig.6-style diagonal dominance
  // when empty.
  std::vector<std::vector<double>> transition;
  double default_self_transition = 0.8;
  // Observation extent: stop center (paper's Pr(center|Ci)) or bounding
  // rectangle (Pr(boundRectangle|Ci)).
  bool use_bounding_rectangle = false;
  // Ablation switch: evaluate emissions exactly instead of via the grid.
  bool use_discretization = true;
  // Also link each stop to the nearest POI of the decoded category
  // within this radius (0 disables the place link).
  double place_link_radius_meters = 150.0;
};

// Reusable working set of one point-annotation pass, owned by the caller
// (one per annotation run/session — see core::AnnotationScratch). The
// arena backs the Viterbi grid and is Reset (capacity retained) on every
// pass.
struct PointScratch {
  hmm::EmissionMatrix emissions;
  common::Arena arena;

  size_t capacity_bytes() const {
    return emissions.data().capacity() * sizeof(double) +
           arena.capacity_bytes();
  }
};

class PointAnnotator {
 public:
  // `pois` must outlive the annotator.
  PointAnnotator(const PoiSet* pois, PointAnnotatorConfig config = {});

  // Decoded POI category per stop episode (kStop entries of `episodes`,
  // in order). Error if the model is malformed. When `exec` is non-null
  // the emissions loop and the Viterbi grid sweep consult it and abort
  // with DeadlineExceeded. `scratch` (when non-null) supplies the
  // emission matrix and Viterbi working memory.
  [[nodiscard]] common::Result<std::vector<int>> InferStopCategories(
      const std::vector<core::Episode>& episodes,
      const common::ExecControl* exec = nullptr,
      PointScratch* scratch = nullptr) const;

  // Full Algorithm 3: emits one semantic episode per stop, annotated
  // with the decoded category and linked to a concrete POI when one is
  // close enough; interpretation "point". `exec` and `scratch` as above.
  [[nodiscard]] common::Result<core::StructuredSemanticTrajectory> Annotate(
      const core::RawTrajectory& trajectory,
      const std::vector<core::Episode>& episodes,
      const common::ExecControl* exec = nullptr,
      PointScratch* scratch = nullptr) const;

  // Learns a personalized transition matrix (and initial distribution)
  // from an object's stop history via Baum-Welch — the paper's §4.3
  // extension ("learning dynamic and personalized transition matrix A").
  // Each element of `episode_sequences` is one trajectory's episode
  // list; only its stops contribute. Updates the annotator's model.
  [[nodiscard]] common::Result<hmm::BaumWelchResult> FitTransitions(
      const std::vector<std::vector<core::Episode>>& episode_sequences,
      const hmm::BaumWelchOptions& options = {});

  const hmm::HmmModel& model() const { return model_; }
  const PoiObservationModel& observation_model() const {
    return observation_model_;
  }

 private:
  void EmissionsForEpisodeInto(const core::Episode& ep,
                               std::span<double> out) const;
  // Fills `out` with one emission row per stop episode, consulting the
  // "poi_emissions" checkpoint between stops.
  [[nodiscard]] common::Status BuildEmissions(
      const std::vector<core::Episode>& episodes,
      const common::ExecControl* exec, hmm::EmissionMatrix* out) const;

  const PoiSet* pois_;
  PointAnnotatorConfig config_;
  PoiObservationModel observation_model_;
  hmm::HmmModel model_;
};

// The paper's Fig. 6 example state-transition matrix for the five Milan
// categories: diagonal-dominant rows (0.8 self / 0.05 cross) for the
// four meaningful categories, and a weak "unknown" row (0.15 to each
// meaningful category, 0.4 self) — unknown stops readily transition
// into meaningful activities.
std::vector<std::vector<double>> Fig6TransitionMatrix();

// Baseline: each stop takes the category of the single nearest POI.
class NearestPoiAnnotator {
 public:
  explicit NearestPoiAnnotator(const PoiSet* pois) : pois_(pois) {}

  std::vector<int> InferStopCategories(
      const std::vector<core::Episode>& episodes) const;

 private:
  const PoiSet* pois_;
};

}  // namespace semitri::poi

#endif  // SEMITRI_POI_POINT_ANNOTATOR_H_
