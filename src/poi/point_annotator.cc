#include "poi/point_annotator.h"

#include "common/check.h"
#include "common/strings.h"

namespace semitri::poi {

// semitri-lint: allow(hot-path-alloc) — model-construction API: the
// nested shape is the HmmModel::transition contract, built once.
std::vector<std::vector<double>> Fig6TransitionMatrix() {
  return {{0.80, 0.05, 0.05, 0.05, 0.05},
          {0.05, 0.80, 0.05, 0.05, 0.05},
          {0.05, 0.05, 0.80, 0.05, 0.05},
          {0.05, 0.05, 0.05, 0.80, 0.05},
          {0.15, 0.15, 0.15, 0.15, 0.40}};
}

PointAnnotator::PointAnnotator(const PoiSet* pois,
                               PointAnnotatorConfig config)
    : pois_(pois),
      config_(std::move(config)),
      observation_model_(pois, config_.observation) {
  model_.initial = pois_->CategoryPriors();
  if (!config_.transition.empty()) {
    model_.transition = config_.transition;
  } else if (pois_->num_categories() == kNumMilanCategories &&
             config_.default_self_transition == 0.8) {
    // The paper's own default for the Milan category space.
    model_.transition = Fig6TransitionMatrix();
  } else {
    model_.transition = hmm::MakeDefaultTransition(
        pois_->num_categories(), config_.default_self_transition);
  }
}

void PointAnnotator::EmissionsForEpisodeInto(const core::Episode& ep,
                                             std::span<double> out) const {
  if (!config_.use_discretization) {
    observation_model_.EmissionsExactInto(ep.center, out);
    return;
  }
  if (config_.use_bounding_rectangle) {
    observation_model_.EmissionsForInto(ep.bounds, out);
    return;
  }
  observation_model_.EmissionsAtInto(ep.center, out);
}

common::Status PointAnnotator::BuildEmissions(
    const std::vector<core::Episode>& episodes,
    const common::ExecControl* exec, hmm::EmissionMatrix* out) const {
  common::ExecCheckpoint checkpoint(exec);
  out->Reset(pois_->num_categories());
  for (const core::Episode& ep : episodes) {
    if (ep.kind != core::EpisodeKind::kStop) continue;
    SEMITRI_RETURN_IF_ERROR(checkpoint.Check("poi_emissions"));
    EmissionsForEpisodeInto(ep, out->AppendRow());
  }
  return common::Status::OK();
}

common::Result<std::vector<int>> PointAnnotator::InferStopCategories(
    const std::vector<core::Episode>& episodes,
    const common::ExecControl* exec, PointScratch* scratch) const {
  PointScratch local;
  PointScratch& s = scratch != nullptr ? *scratch : local;
  s.arena.Reset();
  SEMITRI_RETURN_IF_ERROR(BuildEmissions(episodes, exec, &s.emissions));
  if (s.emissions.rows() == 0) return std::vector<int>{};
  common::Result<hmm::ViterbiResult> decoded =
      hmm::Viterbi(model_, s.emissions, exec, &s.arena);
  if (!decoded.ok()) return decoded.status();
  std::vector<int> categories;
  categories.reserve(decoded->states.size());
  for (size_t state : decoded->states) {
    categories.push_back(static_cast<int>(state));
  }
  return categories;
}

common::Result<core::StructuredSemanticTrajectory> PointAnnotator::Annotate(
    const core::RawTrajectory& trajectory,
    const std::vector<core::Episode>& episodes,
    const common::ExecControl* exec, PointScratch* scratch) const {
  PointScratch local;
  PointScratch& s = scratch != nullptr ? *scratch : local;

  // One emission build feeds both the Viterbi decode and the posterior
  // confidence pass (the paper's "probabilistic estimates of the purpose
  // behind that stop").
  common::Result<std::vector<int>> categories =
      InferStopCategories(episodes, exec, &s);
  if (!categories.ok()) return categories.status();
  hmm::EmissionMatrix posterior;
  if (s.emissions.rows() > 0) {
    common::Result<hmm::EmissionMatrix> decoded =
        hmm::PosteriorDecode(model_, s.emissions);
    if (!decoded.ok()) return decoded.status();
    posterior = std::move(*decoded);
  }

  core::StructuredSemanticTrajectory out;
  out.trajectory_id = trajectory.id;
  out.object_id = trajectory.object_id;
  out.interpretation = "point";

  size_t stop_index = 0;
  // semitri-lint: allow(exec-checkpoint-coverage) — linear pass
  // attaching categories already computed under the polled path above.
  for (size_t e = 0; e < episodes.size(); ++e) {
    const core::Episode& episode = episodes[e];
    if (episode.kind != core::EpisodeKind::kStop) continue;
    int category = (*categories)[stop_index++];

    core::SemanticEpisode ep;
    ep.kind = core::EpisodeKind::kStop;
    ep.time_in = episode.time_in;
    ep.time_out = episode.time_out;
    ep.source_episode = e;
    ep.AddAnnotation("poi_category",
                     pois_->category_names()[static_cast<size_t>(category)]);
    ep.AddAnnotation("poi_category_id", common::StrFormat("%d", category));
    if (stop_index - 1 < posterior.rows()) {
      ep.AddAnnotation(
          "poi_category_confidence",
          common::StrFormat(
              "%.3f",
              posterior.At(stop_index - 1, static_cast<size_t>(category))));
    }

    ep.place = {core::PlaceKind::kPoint, core::kInvalidPlaceId};
    if (config_.place_link_radius_meters > 0.0) {
      core::PlaceId nearest =
          pois_->NearestOfCategory(episode.center, category);
      if (nearest != core::kInvalidPlaceId &&
          pois_->Get(nearest).position.DistanceTo(episode.center) <=
              config_.place_link_radius_meters) {
        ep.place.id = nearest;
        if (!pois_->Get(nearest).name.empty()) {
          ep.AddAnnotation("poi_name", pois_->Get(nearest).name);
        }
      }
    }
    out.episodes.push_back(std::move(ep));
  }
  return out;
}

common::Result<hmm::BaumWelchResult> PointAnnotator::FitTransitions(
    const std::vector<std::vector<core::Episode>>& episode_sequences,
    const hmm::BaumWelchOptions& options) {
  std::vector<hmm::EmissionMatrix> sequences;
  // semitri-lint: allow(exec-checkpoint-coverage) — offline training
  // marshalling, linear in episodes; no deadline governs model fitting.
  for (const std::vector<core::Episode>& episodes : episode_sequences) {
    hmm::EmissionMatrix emissions;
    SEMITRI_CHECK_OK(BuildEmissions(episodes, /*exec=*/nullptr, &emissions));
    if (emissions.rows() > 0) sequences.push_back(std::move(emissions));
  }
  if (sequences.empty()) {
    return common::Status::InvalidArgument(
        "no stop episodes to learn from");
  }
  common::Result<hmm::BaumWelchResult> fitted =
      hmm::BaumWelch(model_, sequences, options);
  if (!fitted.ok()) return fitted.status();
  model_ = fitted->model;
  return fitted;
}

std::vector<int> NearestPoiAnnotator::InferStopCategories(
    const std::vector<core::Episode>& episodes) const {
  std::vector<int> out;
  // semitri-lint: allow(exec-checkpoint-coverage) — one POI-index
  // probe per stop in a const helper with no ExecControl in scope;
  // episode counts are orders of magnitude below point counts.
  for (const core::Episode& ep : episodes) {
    if (ep.kind != core::EpisodeKind::kStop) continue;
    core::PlaceId nearest = pois_->Nearest(ep.center);
    out.push_back(nearest == core::kInvalidPlaceId
                      ? 0
                      : pois_->Get(nearest).category);
  }
  return out;
}

}  // namespace semitri::poi
