#ifndef SEMITRI_INDEX_RSTAR_TREE_H_
#define SEMITRI_INDEX_RSTAR_TREE_H_

// R*-tree (Beckmann, Kriegel, Schneider, Seeger — SIGMOD 1990), the index
// the paper applies to semantic regions and road segments ([2] in the
// paper). Full variant:
//   * ChooseSubtree: least overlap enlargement at the leaf-parent level,
//     least area enlargement above.
//   * Split: choose split axis by minimum margin sum, then the
//     distribution with minimum overlap (ties: minimum area).
//   * Forced reinsertion of the 30% farthest-from-center entries, once
//     per level per insertion.
//
// The tree stores (BoundingBox, T) pairs. T is typically an integer id
// into an external table. Supports box/point queries, k-nearest-neighbor,
// radius queries, and deletion with tree condensation.

#include <algorithm>
#include <cmath>
#include <cstddef>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/check.h"
#include "geo/box.h"
#include "geo/point.h"

namespace semitri::index {

template <typename T>
class RStarTree {
 public:
  struct Entry {
    geo::BoundingBox box;
    T value;
  };

  // min_entries/max_entries follow the usual m = 40% of M default.
  explicit RStarTree(size_t max_entries = 16)
      : max_entries_(max_entries < 4 ? 4 : max_entries),
        min_entries_(std::max<size_t>(2, max_entries_ * 2 / 5)),
        reinsert_count_(std::max<size_t>(1, max_entries_ * 3 / 10)) {
    root_ = std::make_unique<Node>(/*leaf=*/true);
  }

  RStarTree(const RStarTree&) = delete;
  RStarTree& operator=(const RStarTree&) = delete;
  RStarTree(RStarTree&&) = default;
  RStarTree& operator=(RStarTree&&) = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Height of the tree (1 = single leaf root).
  size_t Height() const {
    size_t h = 1;
    const Node* n = root_.get();
    while (!n->leaf) {
      n = n->children.front().get();
      ++h;
    }
    return h;
  }

  geo::BoundingBox Bounds() const { return NodeBounds(*root_); }

  void Insert(const geo::BoundingBox& box, T value) {
    reinserted_levels_.assign(Height() + 2, false);
    InsertEntry(Entry{box, std::move(value)}, /*target_level=*/0);
    ++size_;
  }

  // Bulk loads a tree with Sort-Tile-Recursive packing (Leutenegger et
  // al.): O(n log n) construction with near-full nodes — much faster
  // than repeated insertion for static datasets (landuse grids, road
  // networks). The resulting tree supports all queries and subsequent
  // dynamic inserts/removals.
  static RStarTree BulkLoad(std::vector<Entry> entries,
                            size_t max_entries = 16) {
    RStarTree tree(max_entries);
    if (entries.empty()) return tree;
    tree.size_ = entries.size();
    const size_t cap = tree.max_entries_;

    // Pack leaves: sort by x-center, slice into vertical strips of
    // ~sqrt(n/cap) * cap entries, sort each strip by y-center, cut runs
    // of `cap`.
    std::vector<std::unique_ptr<Node>> level;
    {
      std::stable_sort(entries.begin(), entries.end(),
                       [](const Entry& a, const Entry& b) {
                         return a.box.Center().x < b.box.Center().x;
                       });
      size_t num_leaves = (entries.size() + cap - 1) / cap;
      size_t strips = static_cast<size_t>(
          std::ceil(std::sqrt(static_cast<double>(num_leaves))));
      size_t strip_size = strips * cap;
      for (size_t s = 0; s < entries.size(); s += strip_size) {
        size_t strip_end = std::min(entries.size(), s + strip_size);
        std::stable_sort(entries.begin() + s, entries.begin() + strip_end,
                         [](const Entry& a, const Entry& b) {
                           return a.box.Center().y < b.box.Center().y;
                         });
        for (size_t i = s; i < strip_end; i += cap) {
          auto leaf = std::make_unique<Node>(/*leaf=*/true);
          size_t end = std::min(strip_end, i + cap);
          for (size_t e = i; e < end; ++e) {
            leaf->entries.push_back(std::move(entries[e]));
          }
          leaf->bounds = ComputeShallowBounds(*leaf);
          level.push_back(std::move(leaf));
        }
      }
    }
    // Pack upper levels the same way over node centers.
    while (level.size() > 1) {
      std::stable_sort(level.begin(), level.end(),
                       [](const std::unique_ptr<Node>& a,
                          const std::unique_ptr<Node>& b) {
                         return a->bounds.Center().x < b->bounds.Center().x;
                       });
      size_t num_parents = (level.size() + cap - 1) / cap;
      size_t strips = static_cast<size_t>(
          std::ceil(std::sqrt(static_cast<double>(num_parents))));
      size_t strip_size = strips * cap;
      std::vector<std::unique_ptr<Node>> parents;
      for (size_t s = 0; s < level.size(); s += strip_size) {
        size_t strip_end = std::min(level.size(), s + strip_size);
        std::stable_sort(level.begin() + s, level.begin() + strip_end,
                         [](const std::unique_ptr<Node>& a,
                            const std::unique_ptr<Node>& b) {
                           return a->bounds.Center().y <
                                  b->bounds.Center().y;
                         });
        for (size_t i = s; i < strip_end; i += cap) {
          auto parent = std::make_unique<Node>(/*leaf=*/false);
          size_t end = std::min(strip_end, i + cap);
          for (size_t c = i; c < end; ++c) {
            level[c]->parent = parent.get();
            parent->children.push_back(std::move(level[c]));
          }
          parent->bounds = ComputeShallowBounds(*parent);
          parents.push_back(std::move(parent));
        }
      }
      level.swap(parents);
    }
    tree.root_ = std::move(level.front());
    tree.root_->parent = nullptr;
    return tree;
  }

  // Removes one entry matching (box, value). Returns false if absent.
  bool Remove(const geo::BoundingBox& box, const T& value) {
    Node* leaf = FindLeaf(root_.get(), box, value);
    if (leaf == nullptr) return false;
    auto it = std::find_if(leaf->entries.begin(), leaf->entries.end(),
                           [&](const Entry& e) {
                             return e.value == value &&
                                    BoxesEqual(e.box, box);
                           });
    SEMITRI_DCHECK(it != leaf->entries.end())
        << "FindLeaf returned a leaf that does not hold the entry";
    leaf->entries.erase(it);
    --size_;
    UpdatePathBounds(leaf);
    CondenseTree(leaf);
    return true;
  }

  // All values whose box intersects `query`.
  std::vector<T> Query(const geo::BoundingBox& query) const {
    std::vector<T> out;
    QueryVisit(query, [&](const Entry& e) { out.push_back(e.value); });
    return out;
  }

  // All values whose box contains the point.
  std::vector<T> QueryPoint(const geo::Point& p) const {
    return Query(geo::BoundingBox::FromPoint(p));
  }

  // Visitor form; `visit` receives each intersecting entry.
  void QueryVisit(const geo::BoundingBox& query,
                  const std::function<void(const Entry&)>& visit) const {
    if (size_ == 0) return;
    QueryNode(*root_, query, visit);
  }

  // Values whose box lies within `radius` of point `p` (box distance).
  std::vector<T> QueryRadius(const geo::Point& p, double radius) const {
    std::vector<T> out;
    geo::BoundingBox window =
        geo::BoundingBox::FromPoint(p).Inflated(radius);
    QueryVisit(window, [&](const Entry& e) {
      if (e.box.DistanceTo(p) <= radius) out.push_back(e.value);
    });
    return out;
  }

  // k nearest entries to `p` by box distance (best-first search).
  std::vector<Entry> NearestNeighbors(const geo::Point& p, size_t k) const {
    std::vector<Entry> out;
    if (size_ == 0 || k == 0) return out;
    struct QueueItem {
      double dist;
      const Node* node;    // nullptr when this is a data entry
      const Entry* entry;  // valid when node == nullptr
      bool operator>(const QueueItem& o) const { return dist > o.dist; }
    };
    std::priority_queue<QueueItem, std::vector<QueueItem>,
                        std::greater<QueueItem>>
        frontier;
    frontier.push({NodeBounds(*root_).DistanceTo(p), root_.get(), nullptr});
    while (!frontier.empty() && out.size() < k) {
      QueueItem item = frontier.top();
      frontier.pop();
      if (item.node == nullptr) {
        out.push_back(*item.entry);
        continue;
      }
      const Node& n = *item.node;
      if (n.leaf) {
        for (const Entry& e : n.entries) {
          frontier.push({e.box.DistanceTo(p), nullptr, &e});
        }
      } else {
        for (const auto& child : n.children) {
          frontier.push({NodeBounds(*child).DistanceTo(p), child.get(),
                         nullptr});
        }
      }
    }
    return out;
  }

 private:
  struct Node {
    explicit Node(bool leaf_in) : leaf(leaf_in) {}
    bool leaf;
    Node* parent = nullptr;
    // Cached bounding box of the node's content; maintained by every
    // mutation (a naive recursive recomputation would make inserts O(n)
    // and bulk construction O(n^2)).
    geo::BoundingBox bounds;
    std::vector<Entry> entries;                   // leaf payload
    std::vector<std::unique_ptr<Node>> children;  // inner payload
  };

  static bool BoxesEqual(const geo::BoundingBox& a,
                         const geo::BoundingBox& b) {
    return a.min == b.min && a.max == b.max;
  }

  // Reads the cached bounds.
  static const geo::BoundingBox& NodeBounds(const Node& n) {
    return n.bounds;
  }

  // Recomputes a single node's bounds from its direct content (children
  // bounds are taken from their caches).
  static geo::BoundingBox ComputeShallowBounds(const Node& n) {
    geo::BoundingBox box;
    if (n.leaf) {
      for (const Entry& e : n.entries) box.ExpandToInclude(e.box);
    } else {
      for (const auto& c : n.children) box.ExpandToInclude(c->bounds);
    }
    return box;
  }

  // Refreshes cached bounds from `n` up to the root.
  static void UpdatePathBounds(Node* n) {
    while (n != nullptr) {
      n->bounds = ComputeShallowBounds(*n);
      n = n->parent;
    }
  }

  size_t NodeLevel(const Node* n) const {
    // Leaf level = 0; root is highest.
    size_t level = 0;
    const Node* cur = n;
    while (!cur->leaf) {
      cur = cur->children.front().get();
      ++level;
    }
    return level;
  }

  void QueryNode(const Node& n, const geo::BoundingBox& query,
                 const std::function<void(const Entry&)>& visit) const {
    if (n.leaf) {
      for (const Entry& e : n.entries) {
        if (e.box.Intersects(query)) visit(e);
      }
      return;
    }
    for (const auto& child : n.children) {
      if (NodeBounds(*child).Intersects(query)) {
        QueryNode(*child, query, visit);
      }
    }
  }

  // --- insertion -----------------------------------------------------

  // Chooses the child of `n` (an inner node) to descend into for a new
  // box, per the R* ChooseSubtree heuristics.
  Node* ChooseChild(Node* n, const geo::BoundingBox& box) const {
    bool children_are_leaves = n->children.front()->leaf;
    Node* best = nullptr;
    double best_primary = std::numeric_limits<double>::infinity();
    double best_secondary = std::numeric_limits<double>::infinity();
    double best_area = std::numeric_limits<double>::infinity();
    for (const auto& child : n->children) {
      geo::BoundingBox cb = NodeBounds(*child);
      double area = cb.Area();
      double enlargement = cb.Enlargement(box);
      double primary;
      if (children_are_leaves) {
        // Overlap enlargement against siblings.
        geo::BoundingBox enlarged = cb.Union(box);
        double overlap_before = 0.0, overlap_after = 0.0;
        for (const auto& other : n->children) {
          if (other.get() == child.get()) continue;
          geo::BoundingBox ob = NodeBounds(*other);
          overlap_before += cb.OverlapArea(ob);
          overlap_after += enlarged.OverlapArea(ob);
        }
        primary = overlap_after - overlap_before;
      } else {
        primary = enlargement;
      }
      double secondary = children_are_leaves ? enlargement : area;
      if (primary < best_primary ||
          (primary == best_primary && secondary < best_secondary) ||
          (primary == best_primary && secondary == best_secondary &&
           area < best_area)) {
        best_primary = primary;
        best_secondary = secondary;
        best_area = area;
        best = child.get();
      }
    }
    return best;
  }

  // Descends to the node at `target_level` (0 = leaf) best suited for box.
  Node* ChooseSubtree(const geo::BoundingBox& box, size_t target_level) {
    Node* n = root_.get();
    size_t level = NodeLevel(n);
    while (level > target_level) {
      n = ChooseChild(n, box);
      --level;
    }
    return n;
  }

  void InsertEntry(Entry entry, size_t target_level) {
    Node* n = ChooseSubtree(entry.box, target_level);
    SEMITRI_DCHECK(n->leaf)
        << "ChooseSubtree(level 0) must land on a leaf for data entries";
    n->entries.push_back(std::move(entry));
    UpdatePathBounds(n);
    HandleOverflow(n);
  }

  // Inserts an orphaned subtree rooted at `subtree` at the given level.
  void InsertSubtree(std::unique_ptr<Node> subtree, size_t target_level) {
    geo::BoundingBox box = NodeBounds(*subtree);
    Node* n = ChooseSubtree(box, target_level);
    SEMITRI_DCHECK(!n->leaf)
        << "subtree reinsertion at level " << target_level
        << " must target an inner node";
    subtree->parent = n;
    n->children.push_back(std::move(subtree));
    UpdatePathBounds(n);
    HandleOverflow(n);
  }

  size_t NodeFill(const Node* n) const {
    return n->leaf ? n->entries.size() : n->children.size();
  }

  void HandleOverflow(Node* n) {
    while (n != nullptr && NodeFill(n) > max_entries_) {
      size_t level = NodeLevel(n);
      if (n != root_.get() && level + 1 < reinserted_levels_.size() &&
          !reinserted_levels_[level]) {
        reinserted_levels_[level] = true;
        Reinsert(n);
        return;  // Reinsert restarts overflow handling per reinserted item.
      }
      Node* parent = n->parent;
      SplitNode(n);
      n = parent;
    }
  }

  // Forced reinsertion: remove the p entries farthest from the node's
  // center and insert them again from the top (close-reinsert order).
  void Reinsert(Node* n) {
    geo::Point center = NodeBounds(*n).Center();
    size_t level = NodeLevel(n);
    if (n->leaf) {
      std::stable_sort(n->entries.begin(), n->entries.end(),
                       [&](const Entry& a, const Entry& b) {
                         return a.box.Center().SquaredDistanceTo(center) <
                                b.box.Center().SquaredDistanceTo(center);
                       });
      std::vector<Entry> evicted;
      size_t keep = n->entries.size() - reinsert_count_;
      evicted.assign(std::make_move_iterator(n->entries.begin() + keep),
                     std::make_move_iterator(n->entries.end()));
      n->entries.resize(keep);
      UpdatePathBounds(n);
      for (Entry& e : evicted) InsertEntry(std::move(e), level);
    } else {
      std::stable_sort(n->children.begin(), n->children.end(),
                       [&](const std::unique_ptr<Node>& a,
                           const std::unique_ptr<Node>& b) {
                         return NodeBounds(*a).Center().SquaredDistanceTo(
                                    center) <
                                NodeBounds(*b).Center().SquaredDistanceTo(
                                    center);
                       });
      std::vector<std::unique_ptr<Node>> evicted;
      size_t keep = n->children.size() - reinsert_count_;
      evicted.assign(std::make_move_iterator(n->children.begin() + keep),
                     std::make_move_iterator(n->children.end()));
      n->children.resize(keep);
      UpdatePathBounds(n);
      for (auto& c : evicted) InsertSubtree(std::move(c), level);
    }
  }

  // --- R* split -------------------------------------------------------

  // A candidate distribution is a prefix/suffix split of a sorted entry
  // ordering. Evaluates margin/overlap/area goodness values.
  template <typename Item, typename BoxOf>
  static std::pair<size_t, bool> ChooseSplit(std::vector<Item>& items,
                                             const BoxOf& box_of,
                                             size_t min_entries,
                                             size_t max_entries) {
    // For each axis and each sort key (by min then by max), compute the
    // margin sum over all legal distributions; the axis with the least
    // total margin wins, then pick the distribution minimizing overlap.
    struct AxisResult {
      double margin_sum = 0.0;
      double best_overlap = std::numeric_limits<double>::infinity();
      double best_area = std::numeric_limits<double>::infinity();
      size_t best_split = 0;
      bool sort_by_max = false;
    };
    size_t total = items.size();
    size_t num_dists = max_entries - 2 * min_entries + 2;
    AxisResult best_axis;
    double best_margin = std::numeric_limits<double>::infinity();
    int best_axis_id = -1;

    for (int axis = 0; axis < 2; ++axis) {
      AxisResult result;
      double margin_sum = 0.0;
      for (int by_max = 0; by_max < 2; ++by_max) {
        std::stable_sort(items.begin(), items.end(),
                         [&](const Item& a, const Item& b) {
                           const geo::BoundingBox& ba = box_of(a);
                           const geo::BoundingBox& bb = box_of(b);
                           double ka = axis == 0
                                           ? (by_max ? ba.max.x : ba.min.x)
                                           : (by_max ? ba.max.y : ba.min.y);
                           double kb = axis == 0
                                           ? (by_max ? bb.max.x : bb.min.x)
                                           : (by_max ? bb.max.y : bb.min.y);
                           return ka < kb;
                         });
        // Prefix/suffix bounding boxes for O(n) distribution evaluation.
        std::vector<geo::BoundingBox> prefix(total), suffix(total);
        geo::BoundingBox acc;
        for (size_t i = 0; i < total; ++i) {
          acc.ExpandToInclude(box_of(items[i]));
          prefix[i] = acc;
        }
        acc = geo::BoundingBox();
        for (size_t i = total; i-- > 0;) {
          acc.ExpandToInclude(box_of(items[i]));
          suffix[i] = acc;
        }
        for (size_t d = 0; d < num_dists; ++d) {
          size_t first_count = min_entries + d;
          const geo::BoundingBox& left = prefix[first_count - 1];
          const geo::BoundingBox& right = suffix[first_count];
          margin_sum += left.Margin() + right.Margin();
          double overlap = left.OverlapArea(right);
          double area = left.Area() + right.Area();
          if (overlap < result.best_overlap ||
              (overlap == result.best_overlap && area < result.best_area)) {
            result.best_overlap = overlap;
            result.best_area = area;
            result.best_split = first_count;
            result.sort_by_max = (by_max == 1);
          }
        }
      }
      result.margin_sum = margin_sum;
      if (margin_sum < best_margin) {
        best_margin = margin_sum;
        best_axis = result;
        best_axis_id = axis;
      }
    }
    // Re-sort items along the winning axis/key so callers can split by
    // index.
    bool by_max = best_axis.sort_by_max;
    std::stable_sort(items.begin(), items.end(),
                     [&](const Item& a, const Item& b) {
                       const geo::BoundingBox& ba = box_of(a);
                       const geo::BoundingBox& bb = box_of(b);
                       double ka = best_axis_id == 0
                                       ? (by_max ? ba.max.x : ba.min.x)
                                       : (by_max ? ba.max.y : ba.min.y);
                       double kb = best_axis_id == 0
                                       ? (by_max ? bb.max.x : bb.min.x)
                                       : (by_max ? bb.max.y : bb.min.y);
                       return ka < kb;
                     });
    return {best_axis.best_split, by_max};
  }

  void SplitNode(Node* n) {
    auto sibling = std::make_unique<Node>(n->leaf);
    if (n->leaf) {
      auto box_of = [](const Entry& e) -> const geo::BoundingBox& {
        return e.box;
      };
      size_t split = ChooseSplit(n->entries, box_of, min_entries_,
                                 max_entries_ + 1)
                         .first;
      sibling->entries.assign(
          std::make_move_iterator(n->entries.begin() + split),
          std::make_move_iterator(n->entries.end()));
      n->entries.resize(split);
    } else {
      auto box_of_node = [](const std::unique_ptr<Node>& c) {
        return NodeBounds(*c);
      };
      // ChooseSplit wants a reference-returning accessor for efficiency;
      // cache child bounds alongside pointers instead.
      struct ChildWithBox {
        std::unique_ptr<Node> node;
        geo::BoundingBox box;
      };
      std::vector<ChildWithBox> items;
      items.reserve(n->children.size());
      for (auto& c : n->children) {
        geo::BoundingBox b = box_of_node(c);
        items.push_back({std::move(c), b});
      }
      n->children.clear();
      auto box_of = [](const ChildWithBox& c) -> const geo::BoundingBox& {
        return c.box;
      };
      size_t split =
          ChooseSplit(items, box_of, min_entries_, max_entries_ + 1).first;
      for (size_t i = 0; i < items.size(); ++i) {
        Node* target = i < split ? n : sibling.get();
        items[i].node->parent = target;
        target->children.push_back(std::move(items[i].node));
      }
    }
    n->bounds = ComputeShallowBounds(*n);
    sibling->bounds = ComputeShallowBounds(*sibling);
    if (n == root_.get()) {
      auto new_root = std::make_unique<Node>(/*leaf=*/false);
      sibling->parent = new_root.get();
      new_root->children.push_back(std::move(root_));
      new_root->children.push_back(std::move(sibling));
      root_ = std::move(new_root);
      root_->children[0]->parent = root_.get();
      root_->bounds = ComputeShallowBounds(*root_);
    } else {
      sibling->parent = n->parent;
      n->parent->children.push_back(std::move(sibling));
      UpdatePathBounds(n->parent);
    }
  }

  // --- deletion -------------------------------------------------------

  Node* FindLeaf(Node* n, const geo::BoundingBox& box, const T& value) {
    if (n->leaf) {
      for (const Entry& e : n->entries) {
        if (e.value == value && BoxesEqual(e.box, box)) return n;
      }
      return nullptr;
    }
    for (auto& child : n->children) {
      if (NodeBounds(*child).Intersects(box)) {
        Node* found = FindLeaf(child.get(), box, value);
        if (found != nullptr) return found;
      }
    }
    return nullptr;
  }

  // Moves every leaf entry under `n` into `out`.
  static void CollectEntries(Node* n, std::vector<Entry>* out) {
    if (n->leaf) {
      for (Entry& e : n->entries) out->push_back(std::move(e));
      return;
    }
    for (auto& c : n->children) CollectEntries(c.get(), out);
  }

  void CondenseTree(Node* n) {
    // Orphaned subtrees are flattened to leaf entries and reinserted at
    // the leaf level: reinserting whole subtrees is fragile when the
    // tree height changes mid-condense, and deletion is not on any hot
    // path of the annotation pipeline.
    std::vector<Entry> orphans;
    while (n != root_.get()) {
      Node* parent = n->parent;
      if (NodeFill(n) < min_entries_) {
        auto it = std::find_if(
            parent->children.begin(), parent->children.end(),
            [&](const std::unique_ptr<Node>& c) { return c.get() == n; });
        SEMITRI_DCHECK(it != parent->children.end())
            << "underfull node is not among its parent's children";
        std::unique_ptr<Node> detached = std::move(*it);
        parent->children.erase(it);
        UpdatePathBounds(parent);
        CollectEntries(detached.get(), &orphans);
      }
      n = parent;
    }
    // Shrink the root while it has a single inner child.
    while (!root_->leaf && root_->children.size() == 1) {
      std::unique_ptr<Node> child = std::move(root_->children.front());
      child->parent = nullptr;
      root_ = std::move(child);
    }
    if (!root_->leaf && root_->children.empty()) {
      root_ = std::make_unique<Node>(/*leaf=*/true);
    }
    reinserted_levels_.assign(Height() + 2, true);  // no reinserts here
    for (Entry& entry : orphans) {
      InsertEntry(std::move(entry), /*target_level=*/0);
    }
  }

  size_t max_entries_;
  size_t min_entries_;
  size_t reinsert_count_;
  size_t size_ = 0;
  std::unique_ptr<Node> root_;
  std::vector<bool> reinserted_levels_;
};

}  // namespace semitri::index

#endif  // SEMITRI_INDEX_RSTAR_TREE_H_
