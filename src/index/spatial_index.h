#ifndef SEMITRI_INDEX_SPATIAL_INDEX_H_
#define SEMITRI_INDEX_SPATIAL_INDEX_H_

// Unified spatial-index interface for the semantic-place repositories.
//
// The paper indexes regions and road segments with an R*-tree ([2]) and
// discretizes the POI observation model over a uniform grid (§4.3); the
// repositories (`PoiSet`, `RoadNetwork`, `RegionSet`) and the store's
// query engine program against this interface so the backend is a
// configuration choice rather than a per-layer hard-coding — the
// R*-vs-grid comparison of `bench_ablation_index` is a config flip.
//
// Both backends implement the same contract:
//   * Insert / BulkLoad of (BoundingBox, T) entries,
//   * box intersection queries (and point/radius convenience forms),
//   * k-nearest-neighbor by box distance, nondecreasing, and
//   * Bounds() over all entries.
//
// Queries are const and thread-safe (no mutable scratch state), matching
// the batch processor's requirement that a shared repository may serve
// many annotation workers at once.

#include <algorithm>
#include <cmath>
#include <limits>
#include <memory>
#include <optional>
#include <vector>

#include "common/check.h"
#include "geo/box.h"
#include "geo/point.h"
#include "index/grid_index.h"
#include "index/rstar_tree.h"

namespace semitri::index {

// Available index implementations.
enum class IndexBackend {
  kRStarTree,    // R*-tree (Beckmann et al. '90), the paper's choice
  kUniformGrid,  // uniform grid buckets over the data extent
};

inline const char* IndexBackendName(IndexBackend backend) {
  switch (backend) {
    case IndexBackend::kRStarTree: return "rstar_tree";
    case IndexBackend::kUniformGrid: return "uniform_grid";
  }
  return "unknown";
}

struct SpatialIndexConfig {
  IndexBackend backend = IndexBackend::kRStarTree;
  // R*-tree node fanout (see RStarTree).
  size_t rstar_max_entries = 16;
  // Grid cell size in meters; 0 derives a cell size from the data extent
  // targeting a few entries per cell.
  double grid_cell_size = 0.0;
};

template <typename T>
struct SpatialEntry {
  geo::BoundingBox box;
  T value;
};

template <typename T>
class SpatialIndex {
 public:
  using Entry = SpatialEntry<T>;

  virtual ~SpatialIndex() = default;

  virtual IndexBackend backend() const = 0;
  virtual size_t size() const = 0;
  bool empty() const { return size() == 0; }

  // Bounding box of all entries (empty box when empty).
  virtual geo::BoundingBox Bounds() const = 0;

  virtual void Insert(const geo::BoundingBox& box, T value) = 0;

  // Replaces the content with `entries`, using the backend's bulk
  // construction path (STR packing for the R*-tree, one grid build).
  virtual void BulkLoad(std::vector<Entry> entries) = 0;

  // All values whose box intersects `query`.
  virtual std::vector<T> Query(const geo::BoundingBox& query) const = 0;

  // All values whose box contains the point.
  std::vector<T> QueryPoint(const geo::Point& p) const {
    return Query(geo::BoundingBox::FromPoint(p));
  }

  // Values whose box lies within `radius` of `p` (box distance).
  virtual std::vector<T> QueryRadius(const geo::Point& p,
                                     double radius) const = 0;

  // Appending form of QueryRadius: pushes matches onto `out` without
  // clearing it, so a caller-owned buffer is reused across queries (the
  // annotation hot loops run one query per GPS point). Same values in
  // the same order as QueryRadius.
  virtual void QueryRadiusInto(const geo::Point& p, double radius,
                               std::vector<T>* out) const {
    for (T& value : QueryRadius(p, radius)) {
      out->push_back(std::move(value));
    }
  }

  // k nearest entries to `p` by box distance, nondecreasing.
  virtual std::vector<Entry> NearestNeighbors(const geo::Point& p,
                                              size_t k) const = 0;
};

// --- R*-tree backend ---------------------------------------------------

template <typename T>
class RStarSpatialIndex final : public SpatialIndex<T> {
 public:
  using Entry = SpatialEntry<T>;

  explicit RStarSpatialIndex(const SpatialIndexConfig& config = {})
      : max_entries_(config.rstar_max_entries), tree_(max_entries_) {}

  IndexBackend backend() const override { return IndexBackend::kRStarTree; }
  size_t size() const override { return tree_.size(); }
  geo::BoundingBox Bounds() const override { return tree_.Bounds(); }

  void Insert(const geo::BoundingBox& box, T value) override {
    tree_.Insert(box, std::move(value));
  }

  void BulkLoad(std::vector<Entry> entries) override {
    std::vector<typename RStarTree<T>::Entry> tree_entries;
    tree_entries.reserve(entries.size());
    for (Entry& e : entries) {
      tree_entries.push_back({e.box, std::move(e.value)});
    }
    tree_ = RStarTree<T>::BulkLoad(std::move(tree_entries), max_entries_);
  }

  std::vector<T> Query(const geo::BoundingBox& query) const override {
    return tree_.Query(query);
  }

  std::vector<T> QueryRadius(const geo::Point& p,
                             double radius) const override {
    return tree_.QueryRadius(p, radius);
  }

  void QueryRadiusInto(const geo::Point& p, double radius,
                       std::vector<T>* out) const override {
    geo::BoundingBox window = geo::BoundingBox::FromPoint(p).Inflated(radius);
    tree_.QueryVisit(window, [&](const typename RStarTree<T>::Entry& e) {
      if (e.box.DistanceTo(p) <= radius) out->push_back(e.value);
    });
  }

  std::vector<Entry> NearestNeighbors(const geo::Point& p,
                                      size_t k) const override {
    std::vector<Entry> out;
    for (auto& e : tree_.NearestNeighbors(p, k)) {
      out.push_back({e.box, std::move(e.value)});
    }
    return out;
  }

  const RStarTree<T>& tree() const { return tree_; }

 private:
  size_t max_entries_;
  RStarTree<T> tree_;
};

// --- uniform-grid backend ----------------------------------------------

// Buckets entry indices by the grid cells their box overlaps. The grid
// extent follows the data: inserting outside the current extent rebuilds
// the grid over the grown bounds (with slack, so repeated out-of-extent
// inserts amortize).
template <typename T>
class GridSpatialIndex final : public SpatialIndex<T> {
 public:
  using Entry = SpatialEntry<T>;

  explicit GridSpatialIndex(const SpatialIndexConfig& config = {})
      : configured_cell_(config.grid_cell_size) {}

  IndexBackend backend() const override { return IndexBackend::kUniformGrid; }
  size_t size() const override { return entries_.size(); }
  geo::BoundingBox Bounds() const override { return bounds_; }

  void Insert(const geo::BoundingBox& box, T value) override {
    SEMITRI_CHECK(!box.IsEmpty()) << "cannot index an empty box";
    size_t entry_index = entries_.size();
    entries_.push_back({box, std::move(value)});
    bounds_.ExpandToInclude(box);
    if (grid_.has_value() && grid_->extent().Contains(box)) {
      InsertIntoGrid(entry_index);
    } else {
      Rebuild();
    }
  }

  void BulkLoad(std::vector<Entry> entries) override {
    entries_ = std::move(entries);
    bounds_ = geo::BoundingBox();
    for (const Entry& e : entries_) {
      SEMITRI_CHECK(!e.box.IsEmpty()) << "cannot index an empty box";
      bounds_.ExpandToInclude(e.box);
    }
    Rebuild();
  }

  std::vector<T> Query(const geo::BoundingBox& query) const override {
    std::vector<T> out;
    for (size_t index : CandidateIndices(query)) {
      if (entries_[index].box.Intersects(query)) {
        out.push_back(entries_[index].value);
      }
    }
    return out;
  }

  std::vector<T> QueryRadius(const geo::Point& p,
                             double radius) const override {
    geo::BoundingBox window = geo::BoundingBox::FromPoint(p).Inflated(radius);
    std::vector<T> out;
    for (size_t index : CandidateIndices(window)) {
      if (entries_[index].box.DistanceTo(p) <= radius) {
        out.push_back(entries_[index].value);
      }
    }
    return out;
  }

  std::vector<Entry> NearestNeighbors(const geo::Point& p,
                                      size_t k) const override {
    std::vector<Entry> out;
    if (entries_.empty() || k == 0) return out;
    k = std::min(k, entries_.size());

    // Expanding ring search from the cell containing p. Ring r is only
    // examined when its cells could still beat the current k-th best
    // distance; the exact per-ring lower bound comes from the ring's
    // cell rectangles, so points outside the grid extent are handled.
    struct Candidate {
      double dist;
      size_t index;
      bool operator<(const Candidate& o) const {
        return dist < o.dist || (dist == o.dist && index < o.index);
      }
    };
    std::vector<Candidate> best;  // kept sorted, at most k entries
    std::vector<char> seen(entries_.size(), 0);
    auto consider = [&](size_t index) {
      if (seen[index]) return;
      seen[index] = 1;
      Candidate c{entries_[index].box.DistanceTo(p), index};
      if (best.size() == k && !(c < best.back())) return;
      best.insert(std::upper_bound(best.begin(), best.end(), c), c);
      if (best.size() > k) best.pop_back();
    };

    const GridIndex<size_t>& grid = *grid_;
    auto [cx, cy] = grid.CellOf(p);
    size_t max_ring = std::max(std::max(cx, grid.cols() - 1 - cx),
                               std::max(cy, grid.rows() - 1 - cy));
    for (size_t ring = 0; ring <= max_ring; ++ring) {
      if (best.size() == k && RingLowerBound(p, cx, cy, ring) > best.back().dist) {
        break;
      }
      VisitRing(cx, cy, ring, [&](size_t gx, size_t gy) {
        for (size_t index : grid.Cell(gx, gy)) consider(index);
      });
    }
    out.reserve(best.size());
    for (const Candidate& c : best) {
      out.push_back(entries_[c.index]);
    }
    return out;
  }

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  // Cells of the current grid overlapped by `box`, clamped to the grid.
  struct CellRange {
    size_t x0, y0, x1, y1;
  };
  CellRange RangeOf(const geo::BoundingBox& box) const {
    auto [x0, y0] = grid_->CellOf(box.min);
    auto [x1, y1] = grid_->CellOf(box.max);
    return {x0, y0, x1, y1};
  }

  // Entry indices bucketed in cells overlapping `window`, deduplicated
  // (an entry spanning several cells appears once), ascending.
  std::vector<size_t> CandidateIndices(const geo::BoundingBox& window) const {
    std::vector<size_t> out;
    if (entries_.empty() || window.IsEmpty() ||
        !window.Intersects(grid_->extent())) {
      return out;
    }
    CellRange r = RangeOf(window);
    for (size_t y = r.y0; y <= r.y1; ++y) {
      for (size_t x = r.x0; x <= r.x1; ++x) {
        const std::vector<size_t>& bucket = grid_->Cell(x, y);
        out.insert(out.end(), bucket.begin(), bucket.end());
      }
    }
    std::sort(out.begin(), out.end());
    out.erase(std::unique(out.begin(), out.end()), out.end());
    return out;
  }

  // Minimum possible distance from p to any cell on Chebyshev ring
  // `ring` around cell (cx, cy).
  double RingLowerBound(const geo::Point& p, size_t cx, size_t cy,
                        size_t ring) const {
    double bound = std::numeric_limits<double>::infinity();
    VisitRing(cx, cy, ring, [&](size_t gx, size_t gy) {
      bound = std::min(bound, grid_->CellBounds(gx, gy).DistanceTo(p));
    });
    return bound;
  }

  template <typename Visit>
  void VisitRing(size_t cx, size_t cy, size_t ring,
                 const Visit& visit) const {
    const GridIndex<size_t>& grid = *grid_;
    size_t x0 = cx >= ring ? cx - ring : 0;
    size_t y0 = cy >= ring ? cy - ring : 0;
    size_t x1 = std::min(grid.cols() - 1, cx + ring);
    size_t y1 = std::min(grid.rows() - 1, cy + ring);
    for (size_t y = y0; y <= y1; ++y) {
      for (size_t x = x0; x <= x1; ++x) {
        // Interior cells belong to smaller rings.
        size_t dx = x > cx ? x - cx : cx - x;
        size_t dy = y > cy ? y - cy : cy - y;
        if (std::max(dx, dy) != ring) continue;
        visit(x, y);
      }
    }
  }

  void InsertIntoGrid(size_t entry_index) {
    CellRange r = RangeOf(entries_[entry_index].box);
    for (size_t y = r.y0; y <= r.y1; ++y) {
      for (size_t x = r.x0; x <= r.x1; ++x) {
        grid_->InsertAtCell(x, y, entry_index);
      }
    }
  }

  void Rebuild() {
    if (entries_.empty()) {
      grid_.reset();
      return;
    }
    // Slack around the data bounds so near-boundary growth does not
    // trigger an immediate rebuild again.
    double diag = std::hypot(bounds_.Width(), bounds_.Height());
    double slack = std::max(0.25 * diag, 1.0);
    geo::BoundingBox extent = bounds_.Inflated(slack);
    double cell = configured_cell_;
    if (cell <= 0.0) {
      // Target roughly one entry per cell over the data extent.
      double per_cell = std::max(extent.Width(), extent.Height()) /
                        std::sqrt(static_cast<double>(entries_.size()));
      cell = std::max(per_cell, 1e-6);
    }
    grid_.emplace(extent, cell);
    for (size_t i = 0; i < entries_.size(); ++i) InsertIntoGrid(i);
  }

  double configured_cell_;
  geo::BoundingBox bounds_;
  std::vector<Entry> entries_;
  std::optional<GridIndex<size_t>> grid_;
};

// Factory: the backend the config names, ready for Insert/BulkLoad.
template <typename T>
std::unique_ptr<SpatialIndex<T>> MakeSpatialIndex(
    const SpatialIndexConfig& config = {}) {
  switch (config.backend) {
    case IndexBackend::kRStarTree:
      return std::make_unique<RStarSpatialIndex<T>>(config);
    case IndexBackend::kUniformGrid:
      return std::make_unique<GridSpatialIndex<T>>(config);
  }
  return std::make_unique<RStarSpatialIndex<T>>(config);
}

}  // namespace semitri::index

#endif  // SEMITRI_INDEX_SPATIAL_INDEX_H_
