#ifndef SEMITRI_INDEX_GRID_INDEX_H_
#define SEMITRI_INDEX_GRID_INDEX_H_

// Uniform grid over a bounded area. Used by the Semantic Point Annotation
// layer to discretize the POI observation model (Pr(grid_jk | Ci), §4.3)
// and as a cheap point index for the generators.

#include <cmath>
#include <cstddef>
#include <vector>

#include "common/check.h"
#include "geo/box.h"
#include "geo/point.h"

namespace semitri::index {

// Maps points to integer cells of a fixed-resolution grid and stores a
// bucket of T per cell.
template <typename T>
class GridIndex {
 public:
  GridIndex(const geo::BoundingBox& extent, double cell_size)
      : extent_(extent), cell_size_(cell_size) {
    SEMITRI_CHECK(cell_size > 0.0)
        << "grid cell size must be positive, got " << cell_size;
    cols_ = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(extent.Width() / cell_size)));
    rows_ = std::max<size_t>(
        1, static_cast<size_t>(std::ceil(extent.Height() / cell_size)));
    cells_.resize(cols_ * rows_);
  }

  size_t cols() const { return cols_; }
  size_t rows() const { return rows_; }
  double cell_size() const { return cell_size_; }
  const geo::BoundingBox& extent() const { return extent_; }

  // Column/row of the cell containing p (clamped to the grid).
  std::pair<size_t, size_t> CellOf(const geo::Point& p) const {
    double fx = (p.x - extent_.min.x) / cell_size_;
    double fy = (p.y - extent_.min.y) / cell_size_;
    size_t cx = static_cast<size_t>(
        std::clamp(fx, 0.0, static_cast<double>(cols_ - 1)));
    size_t cy = static_cast<size_t>(
        std::clamp(fy, 0.0, static_cast<double>(rows_ - 1)));
    return {cx, cy};
  }

  geo::BoundingBox CellBounds(size_t cx, size_t cy) const {
    geo::Point lo{extent_.min.x + cx * cell_size_,
                  extent_.min.y + cy * cell_size_};
    return {lo, {lo.x + cell_size_, lo.y + cell_size_}};
  }

  geo::Point CellCenter(size_t cx, size_t cy) const {
    return CellBounds(cx, cy).Center();
  }

  void Insert(const geo::Point& p, T value) {
    auto [cx, cy] = CellOf(p);
    cells_[cy * cols_ + cx].push_back(std::move(value));
  }

  // Direct cell insertion, for values that span several cells (the
  // grid-backed SpatialIndex buckets a box into every overlapped cell).
  void InsertAtCell(size_t cx, size_t cy, T value) {
    cells_[cy * cols_ + cx].push_back(std::move(value));
  }

  const std::vector<T>& Cell(size_t cx, size_t cy) const {
    return cells_[cy * cols_ + cx];
  }

  // Collects values in all cells within `ring` cells of the cell holding p
  // (a (2*ring+1)^2 neighborhood) — the paper's "neighboring POIs in that
  // box" pruning.
  std::vector<T> Neighborhood(const geo::Point& p, size_t ring) const {
    auto [cx, cy] = CellOf(p);
    std::vector<T> out;
    size_t x0 = cx >= ring ? cx - ring : 0;
    size_t y0 = cy >= ring ? cy - ring : 0;
    size_t x1 = std::min(cols_ - 1, cx + ring);
    size_t y1 = std::min(rows_ - 1, cy + ring);
    for (size_t y = y0; y <= y1; ++y) {
      for (size_t x = x0; x <= x1; ++x) {
        const auto& bucket = cells_[y * cols_ + x];
        out.insert(out.end(), bucket.begin(), bucket.end());
      }
    }
    return out;
  }

 private:
  geo::BoundingBox extent_;
  double cell_size_;
  size_t cols_ = 0;
  size_t rows_ = 0;
  std::vector<std::vector<T>> cells_;
};

}  // namespace semitri::index

#endif  // SEMITRI_INDEX_GRID_INDEX_H_
