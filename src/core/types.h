#ifndef SEMITRI_CORE_TYPES_H_
#define SEMITRI_CORE_TYPES_H_

// The semantic trajectory data model (paper §3.1, Definitions 1–4):
//
//   Def. 1  Raw trajectory  T  = sequence of (x, y, t) points.
//   Def. 2  Semantic places P  = regions ∪ lines ∪ points (ROI/LOI/POI).
//   Def. 3  Semantic trajectory     = points + annotations.
//   Def. 4  Structured semantic trajectory = sequence of episodes
//           ep = (semantic place, time_in, time_out, annotations).
//
// Positions are kept in a local planar metric frame (see geo/latlon.h for
// the WGS-84 conversion used at the ingestion boundary).

#include <cstdint>
#include <string>
#include <vector>

#include "geo/box.h"
#include "geo/point.h"

namespace semitri::core {

using ObjectId = int64_t;
using TrajectoryId = int64_t;
using PlaceId = int64_t;
// Seconds since the epoch of the dataset (generators start at 0).
using Timestamp = double;

inline constexpr PlaceId kInvalidPlaceId = -1;

// One GPS fix (Def. 1 triple) in the local metric frame.
struct GpsPoint {
  geo::Point position;
  Timestamp time = 0.0;

  bool operator==(const GpsPoint&) const = default;
};

// Def. 1 — a finite, application-meaningful subsequence of the raw stream.
struct RawTrajectory {
  TrajectoryId id = 0;
  ObjectId object_id = 0;
  std::vector<GpsPoint> points;

  bool empty() const { return points.empty(); }
  size_t size() const { return points.size(); }

  Timestamp StartTime() const { return points.empty() ? 0.0 : points.front().time; }
  Timestamp EndTime() const { return points.empty() ? 0.0 : points.back().time; }
  double DurationSeconds() const { return EndTime() - StartTime(); }

  geo::BoundingBox Bounds() const {
    geo::BoundingBox box;
    for (const GpsPoint& p : points) box.ExpandToInclude(p.position);
    return box;
  }

  bool operator==(const RawTrajectory&) const = default;
};

// Motion-context episode kinds produced by the Trajectory Computation
// Layer. Begin/End mark the delimiting first/last positions (§1.1).
enum class EpisodeKind { kStop, kMove, kBegin, kEnd };

const char* EpisodeKindName(EpisodeKind kind);

// A maximal sub-sequence of a raw trajectory satisfying a segmentation
// predicate (stop: speed < δ with dwell, move: otherwise).
struct Episode {
  EpisodeKind kind = EpisodeKind::kMove;
  // Point range [begin, end) into the owning RawTrajectory.
  size_t begin = 0;
  size_t end = 0;
  Timestamp time_in = 0.0;
  Timestamp time_out = 0.0;
  geo::Point center;        // mean position of the covered points
  geo::BoundingBox bounds;  // spatial extent used for the spatial join

  size_t num_points() const { return end - begin; }
  double DurationSeconds() const { return time_out - time_in; }

  // Exact (bitwise double) equality — the streaming/offline equivalence
  // contract (stream::EpisodeDetector) is checked with this.
  bool operator==(const Episode&) const = default;
};

// Def. 2 — the geometric kind of a semantic place.
enum class PlaceKind { kRegion, kLine, kPoint };

const char* PlaceKindName(PlaceKind kind);

// A geographic-reference annotation: a link into one of the semantic
// place repositories (regions / road segments / POIs).
struct PlaceLink {
  PlaceKind kind = PlaceKind::kRegion;
  PlaceId id = kInvalidPlaceId;

  bool valid() const { return id != kInvalidPlaceId; }
  bool operator==(const PlaceLink&) const = default;
};

// An additional-value annotation (e.g. activity = "shopping",
// transport_mode = "metro").
struct Annotation {
  std::string key;
  std::string value;

  bool operator==(const Annotation&) const = default;
};

// Def. 4 episode tuple: (semantic place, time_in, time_out, annotations).
struct SemanticEpisode {
  EpisodeKind kind = EpisodeKind::kMove;
  PlaceLink place;
  Timestamp time_in = 0.0;
  Timestamp time_out = 0.0;
  std::vector<Annotation> annotations;
  // Index of the source Episode in the stop/move segmentation, when this
  // episode was derived from one (SIZE_MAX otherwise — e.g. per-segment
  // sub-episodes created by the line annotator).
  size_t source_episode = SIZE_MAX;

  double DurationSeconds() const { return time_out - time_in; }

  bool operator==(const SemanticEpisode&) const = default;

  // First value for `key`, or empty string.
  const std::string& FindAnnotation(const std::string& key) const;
  void AddAnnotation(std::string key, std::string value) {
    annotations.push_back({std::move(key), std::move(value)});
  }
};

// Def. 4 — one *interpretation* of a trajectory as a list of semantic
// episodes (the region / line / point layers each produce one).
struct StructuredSemanticTrajectory {
  TrajectoryId trajectory_id = 0;
  ObjectId object_id = 0;
  // Which layer produced this interpretation ("region", "line", "point").
  std::string interpretation;
  std::vector<SemanticEpisode> episodes;

  bool empty() const { return episodes.empty(); }
  size_t size() const { return episodes.size(); }

  bool operator==(const StructuredSemanticTrajectory&) const = default;
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_TYPES_H_
