#ifndef SEMITRI_CORE_PIPELINE_H_
#define SEMITRI_CORE_PIPELINE_H_

// SeMiTri end-to-end pipeline (paper Fig. 2), as a thin facade over an
// annotation stage graph: the Trajectory Computation Layer (cleaning,
// identification, stop/move episodes) feeds the three annotation layers
// (region / line / point), which write their products into the Semantic
// Trajectory Store with per-stage latency accounted under the Fig. 17
// stage names. Layers are independent stages, so a single layer can be
// recomputed from cached episodes (ReannotateLayer) — e.g. after a POI
// repository refresh — without redoing trajectory computation.

#include <memory>
#include <optional>
#include <vector>

#include "analytics/latency_profiler.h"
#include "common/exec_control.h"
#include "common/status.h"
#include "core/health.h"
#include "core/stage.h"
#include "core/stages.h"
#include "core/types.h"
#include "poi/point_annotator.h"
#include "region/region_annotator.h"
#include "road/line_annotator.h"
#include "store/semantic_trajectory_store.h"
#include "traj/identification.h"
#include "traj/preprocess.h"
#include "traj/segmentation.h"

namespace semitri::core {

class Watchdog;
struct AnnotationScratch;

// Per-run resource-governance hooks (all optional; the default is an
// unbounded run, byte-identical to the pre-governance behaviour).
struct RunControls {
  // Deadline + cancellation + per-stage budget (see common/exec_control.h).
  const common::ExecControl* exec = nullptr;
  // Hard backstop for wedged stages (see core/watchdog.h).
  Watchdog* watchdog = nullptr;
  // Clock for retry backoff and breaker stage timing (null = real).
  const common::Clock* clock = nullptr;
  // Reusable data-plane working memory (see core/annotation_scratch.h);
  // null = per-run local scratch.
  AnnotationScratch* scratch = nullptr;
};

struct PipelineConfig {
  traj::PreprocessConfig preprocess;
  traj::IdentificationConfig identification;
  traj::SegmentationConfig segmentation;
  region::RegionAnnotatorConfig region;
  road::LineAnnotatorConfig line;
  poi::PointAnnotatorConfig point;
  // Failure policy applied to the three annotation-layer stages
  // (landuse_join, map_match, point_annotation). The default fails
  // fast; FailurePolicy::SkipAndRecord() degrades gracefully instead —
  // a failing semantic source (e.g. an unreachable POI repository)
  // yields the remaining layers plus a StageReport rather than an
  // aborted trajectory. Trajectory computation and store stages always
  // fail fast: without episodes nothing downstream is meaningful, and a
  // store failure means data loss the caller must see.
  FailurePolicy annotation_failure;
};

class SemiTriPipeline {
 public:
  // Any of `regions` / `roads` / `pois` may be null: the corresponding
  // layer is skipped (the paper notes SeMiTri produces partial
  // annotations when 3rd-party sources are missing). `store` and
  // `profiler` are optional sinks (both internally synchronized, so a
  // pipeline with sinks may be shared across threads); all pointers
  // must outlive the pipeline.
  SemiTriPipeline(const region::RegionSet* regions,
                  const road::RoadNetwork* roads, const poi::PoiSet* pois,
                  PipelineConfig config = {},
                  store::SemanticTrajectoryStore* store = nullptr,
                  analytics::LatencyProfiler* profiler = nullptr);

  // Full per-trajectory processing: runs the default stage graph
  // (clean -> episodes -> annotate -> store).
  [[nodiscard]] common::Result<PipelineResult> ProcessTrajectory(
      const RawTrajectory& raw) const;

  // Deadline/cancellation-governed variant: the stage graph checks
  // controls.exec between stages and the annotator loops consult it at
  // bounded intervals; controls.watchdog force-cancels wedged stages.
  [[nodiscard]] common::Result<PipelineResult> ProcessTrajectory(
      const RawTrajectory& raw, const RunControls& controls) const;

  // Splits a continuous GPS stream into raw trajectories and processes
  // each.
  [[nodiscard]] common::Result<std::vector<PipelineResult>> ProcessStream(
      ObjectId object_id, const std::vector<GpsPoint>& stream,
      TrajectoryId first_id = 0) const;

  // Governed variant of ProcessStream (controls apply to the whole
  // batch: the run deadline spans every identified trajectory).
  [[nodiscard]] common::Result<std::vector<PipelineResult>> ProcessStream(
      ObjectId object_id, const std::vector<GpsPoint>& stream,
      TrajectoryId first_id, const RunControls& controls) const;

  // Recomputes one annotation layer from the cached trajectory
  // computation in `result` (cleaned trace + episodes), leaving the
  // other layers untouched. The recomputed layer is identical to what a
  // full ProcessTrajectory would produce, and is written through to the
  // store sink when one is attached. Error if the layer's semantic
  // source was not supplied.
  [[nodiscard]] common::Result<PipelineResult> ReannotateLayer(PipelineResult result,
                                                 Layer layer) const;

  // Runs every stage except trajectory computation over an
  // already-computed cleaned trace + episode table (`computed.cleaned`
  // and `computed.episodes` must be set). Annotation layers, store rows
  // and latency samples come out exactly as a full ProcessTrajectory on
  // the underlying raw trajectory would produce them. This is the
  // finalization path of the streaming subsystem (stream/), where
  // episodes were computed incrementally by stream::EpisodeDetector.
  [[nodiscard]] common::Result<PipelineResult> AnnotateComputed(PipelineResult computed)
      const;

  // Governed variant of AnnotateComputed — the streaming subsystem's
  // path for bounding per-flush annotation work.
  [[nodiscard]] common::Result<PipelineResult> AnnotateComputed(
      PipelineResult computed, const RunControls& controls) const;

  // The stage graph this pipeline runs (finalized; inspect with
  // ExecutionOrder / Find).
  const StageGraph& graph() const { return graph_; }

  // Mutable access for installing per-stage circuit breakers and
  // failure policies after construction (neither affects ordering).
  StageGraph& mutable_graph() { return graph_; }

  // Per-stage health: breaker state (when one is installed via
  // mutable_graph().SetCircuitBreaker) and latency digests from the
  // attached profiler. Budget gauges stay zero here — the streaming
  // SessionManager::Health merges them in.
  HealthSnapshot Health() const;

  const PipelineConfig& config() const { return config_; }
  const traj::TrajectoryIdentifier& identifier() const { return identifier_; }
  const traj::StopMoveSegmenter& segmenter() const { return segmenter_; }
  // Optional sinks this pipeline writes to (null when not supplied).
  store::SemanticTrajectoryStore* store() const { return store_; }
  analytics::LatencyProfiler* profiler() const { return profiler_; }

 private:
  void BuildDefaultGraph(store::SemanticTrajectoryStore* store);

  PipelineConfig config_;
  traj::Preprocessor preprocessor_;
  traj::TrajectoryIdentifier identifier_;
  traj::StopMoveSegmenter segmenter_;
  std::unique_ptr<region::RegionAnnotator> region_annotator_;
  std::unique_ptr<road::LineAnnotator> line_annotator_;
  std::unique_ptr<poi::PointAnnotator> point_annotator_;
  store::SemanticTrajectoryStore* store_;
  analytics::LatencyProfiler* profiler_;
  StageGraph graph_;
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_PIPELINE_H_
