#ifndef SEMITRI_CORE_PIPELINE_H_
#define SEMITRI_CORE_PIPELINE_H_

// SeMiTri end-to-end pipeline (paper Fig. 2): Trajectory Computation
// Layer (cleaning, identification, stop/move episodes), then the three
// annotation layers (region / line / point), writing products into the
// Semantic Trajectory Store and accounting per-stage latency with the
// stage names of Fig. 17.

#include <memory>
#include <optional>
#include <vector>

#include "analytics/latency_profiler.h"
#include "common/status.h"
#include "core/types.h"
#include "poi/point_annotator.h"
#include "region/region_annotator.h"
#include "road/line_annotator.h"
#include "store/semantic_trajectory_store.h"
#include "traj/identification.h"
#include "traj/preprocess.h"
#include "traj/segmentation.h"

namespace semitri::core {

struct PipelineConfig {
  traj::PreprocessConfig preprocess;
  traj::IdentificationConfig identification;
  traj::SegmentationConfig segmentation;
  region::RegionAnnotatorConfig region;
  road::LineAnnotatorConfig line;
  poi::PointAnnotatorConfig point;
  // Region layer granularity: per-GPS-point Algorithm 1 (true) or
  // per-episode join (false).
  bool region_per_point = false;
};

// Everything the pipeline derives from one raw trajectory.
struct PipelineResult {
  RawTrajectory cleaned;
  std::vector<Episode> episodes;
  // Layers are present when the corresponding source was supplied.
  std::optional<StructuredSemanticTrajectory> region_layer;
  std::optional<StructuredSemanticTrajectory> line_layer;
  std::optional<StructuredSemanticTrajectory> point_layer;

  size_t NumStops() const;
  size_t NumMoves() const;
};

// Fig. 17 stage names.
inline constexpr char kStageComputeEpisode[] = "compute_episode";
inline constexpr char kStageStoreEpisode[] = "store_episode";
inline constexpr char kStageMapMatch[] = "map_match";
inline constexpr char kStageStoreMatch[] = "store_match_result";
inline constexpr char kStageLanduseJoin[] = "landuse_join";
inline constexpr char kStagePointAnnotation[] = "point_annotation";

class SemiTriPipeline {
 public:
  // Any of `regions` / `roads` / `pois` may be null: the corresponding
  // layer is skipped (the paper notes SeMiTri produces partial
  // annotations when 3rd-party sources are missing). `store` and
  // `profiler` are optional sinks (both internally synchronized, so a
  // pipeline with sinks may be shared across threads); all pointers
  // must outlive the pipeline.
  SemiTriPipeline(const region::RegionSet* regions,
                  const road::RoadNetwork* roads, const poi::PoiSet* pois,
                  PipelineConfig config = {},
                  store::SemanticTrajectoryStore* store = nullptr,
                  analytics::LatencyProfiler* profiler = nullptr);

  // Full per-trajectory processing: clean -> episodes -> annotate ->
  // store.
  common::Result<PipelineResult> ProcessTrajectory(
      const RawTrajectory& raw) const;

  // Splits a continuous GPS stream into raw trajectories and processes
  // each.
  common::Result<std::vector<PipelineResult>> ProcessStream(
      ObjectId object_id, const std::vector<GpsPoint>& stream,
      TrajectoryId first_id = 0) const;

  const traj::TrajectoryIdentifier& identifier() const { return identifier_; }
  const traj::StopMoveSegmenter& segmenter() const { return segmenter_; }

 private:
  PipelineConfig config_;
  traj::Preprocessor preprocessor_;
  traj::TrajectoryIdentifier identifier_;
  traj::StopMoveSegmenter segmenter_;
  std::unique_ptr<region::RegionAnnotator> region_annotator_;
  std::unique_ptr<road::LineAnnotator> line_annotator_;
  std::unique_ptr<poi::PointAnnotator> point_annotator_;
  store::SemanticTrajectoryStore* store_;
  analytics::LatencyProfiler* profiler_;
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_PIPELINE_H_
