#ifndef SEMITRI_CORE_STAGE_H_
#define SEMITRI_CORE_STAGE_H_

// Composable annotation stages and the graph that runs them.
//
// The paper's architecture (Fig. 2) is layered: the Trajectory
// Computation Layer feeds three independent annotation layers, which
// write into the Semantic Trajectory Store. A stage is one node of that
// graph — named (the profiled stages carry the Fig. 17 stage names),
// declaring its dependencies, and reading/writing the shared
// AnnotationContext. StageGraph validates the dependencies, orders the
// stages (stable topological sort: registration order is preserved
// among ready stages), and runs them with per-stage latency accounting.
//
// Stages hold only const pointers to pipeline-owned components, so a
// finalized graph is immutable and safe to run from many threads at
// once with separate contexts.

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "common/status.h"
#include "core/annotation_context.h"
#include "core/circuit_breaker.h"

namespace semitri::core {

// What the graph does when a stage's Run returns an error. The three
// shapes: fail-fast (default — the error aborts the run), skip-and-
// record (the stage is dropped, a StageReport lands on the result, and
// the rest of the graph continues — graceful degradation, e.g. a
// broken POI repository still yields region+line layers), and retry
// (capped exponential backoff before either of the above applies).
struct FailurePolicy {
  enum class OnFailure {
    kAbort,  // propagate the error; the run stops
    kSkip,   // record a StageReport and continue with later stages
  };

  OnFailure on_failure = OnFailure::kAbort;
  // Total attempts (1 = no retry). Retries apply to any non-OK status.
  size_t max_attempts = 1;
  // Exponential backoff between attempts: initial * multiplier^k,
  // capped. 0 initial backoff retries immediately (the right setting
  // for deterministic tests).
  double initial_backoff_seconds = 0.0;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 1.0;

  static FailurePolicy FailFast() { return {}; }
  static FailurePolicy SkipAndRecord() {
    FailurePolicy p;
    p.on_failure = OnFailure::kSkip;
    return p;
  }
  static FailurePolicy Retry(size_t max_attempts,
                             double initial_backoff_seconds = 0.0) {
    FailurePolicy p;
    p.max_attempts = max_attempts;
    p.initial_backoff_seconds = initial_backoff_seconds;
    return p;
  }
};

class AnnotationStage {
 public:
  // `name` must be unique within a graph; profiled stages use the
  // Fig. 17 stage names so latency reports match the paper.
  // `dependencies` names stages that must run earlier; every named
  // stage must be registered in the same graph.
  AnnotationStage(std::string name, std::vector<std::string> dependencies,
                  bool profiled = true)
      : name_(std::move(name)),
        dependencies_(std::move(dependencies)),
        profiled_(profiled) {}

  virtual ~AnnotationStage() = default;

  const std::string& name() const { return name_; }
  const std::vector<std::string>& dependencies() const {
    return dependencies_;
  }
  // Whether the latency profiler records this stage.
  bool profiled() const { return profiled_; }

  const FailurePolicy& failure_policy() const { return failure_policy_; }
  void set_failure_policy(FailurePolicy policy) {
    failure_policy_ = policy;
  }

  // Optional circuit breaker wrapping this stage's FailurePolicy: while
  // open, the graph short-circuits the stage with Status::Unavailable
  // before any attempt (see circuit_breaker.h). The breaker is
  // internally synchronized, so a shared graph stays thread-safe.
  void set_circuit_breaker(std::unique_ptr<CircuitBreaker> breaker) {
    breaker_ = std::move(breaker);
  }
  CircuitBreaker* circuit_breaker() const { return breaker_.get(); }

  [[nodiscard]] virtual common::Status Run(AnnotationContext& context) const = 0;

 private:
  std::string name_;
  std::vector<std::string> dependencies_;
  bool profiled_;
  FailurePolicy failure_policy_;
  std::unique_ptr<CircuitBreaker> breaker_;
};

// A stage backed by a callable — extension point for custom annotation
// steps without a class per stage.
class FunctionStage final : public AnnotationStage {
 public:
  using Fn = std::function<common::Status(AnnotationContext&)>;

  FunctionStage(std::string name, std::vector<std::string> dependencies,
                Fn fn, bool profiled = true)
      : AnnotationStage(std::move(name), std::move(dependencies), profiled),
        fn_(std::move(fn)) {}

  [[nodiscard]] common::Status Run(AnnotationContext& context) const override {
    return fn_(context);
  }

 private:
  Fn fn_;
};

class StageGraph {
 public:
  StageGraph() = default;
  StageGraph(StageGraph&&) = default;
  StageGraph& operator=(StageGraph&&) = default;

  // Registers a stage. Error on duplicate name or on a finalized graph.
  [[nodiscard]] common::Status Add(std::unique_ptr<AnnotationStage> stage);

  // Validates dependencies and fixes the execution order. Error on an
  // unknown dependency or a cycle. Idempotent once successful.
  [[nodiscard]] common::Status Finalize();

  bool finalized() const { return finalized_; }
  size_t size() const { return stages_.size(); }

  const AnnotationStage* Find(std::string_view name) const;

  // Replaces the failure policy of a registered stage (allowed before
  // or after Finalize — the policy does not affect ordering). Error if
  // the name is unknown.
  [[nodiscard]] common::Status SetFailurePolicy(std::string_view name,
                                  FailurePolicy policy);

  // Installs a circuit breaker on a registered stage (allowed before or
  // after Finalize). `clock` drives the open/half-open transitions (null
  // = real clock). Error if the name is unknown.
  [[nodiscard]] common::Status SetCircuitBreaker(std::string_view name,
                                   CircuitBreakerConfig config,
                                   const common::Clock* clock = nullptr);

  // Stage names in execution order (finalized graphs only).
  std::vector<std::string> ExecutionOrder() const;

  // Runs every stage in execution order. A failing stage is retried
  // and/or skipped per its FailurePolicy (default: fail fast — the
  // first error stops the run); retried, skipped, and failed stages
  // leave a StageReport on the context's result. Profiled stages are
  // timed under their name when the context carries a profiler. The
  // graph must be finalized.
  [[nodiscard]] common::Status Run(AnnotationContext& context) const;

  // Runs one stage by name (with the same profiling behaviour as Run),
  // ignoring dependencies — the caller asserts the context already
  // carries the artifacts the stage needs. Error if the name is
  // unknown. Used for single-layer re-annotation over cached episodes.
  [[nodiscard]] common::Status RunStage(std::string_view name,
                          AnnotationContext& context) const;

 private:
  [[nodiscard]] common::Status RunOne(const AnnotationStage& stage,
                        AnnotationContext& context) const;

  std::vector<std::unique_ptr<AnnotationStage>> stages_;
  std::vector<const AnnotationStage*> order_;
  bool finalized_ = false;
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_STAGE_H_
