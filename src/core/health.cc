#include "core/health.h"

#include <cstdio>

namespace semitri::core {

namespace {

void AppendGauge(std::string* out, const char* name,
                 const BudgetGauge& gauge) {
  char line[160];
  if (gauge.limit == 0) {
    std::snprintf(line, sizeof(line), "  %-16s %zu (unbounded)\n", name,
                  gauge.used);
  } else {
    std::snprintf(line, sizeof(line), "  %-16s %zu / %zu (%.0f%%)\n", name,
                  gauge.used, gauge.limit, 100.0 * gauge.utilization());
  }
  *out += line;
}

}  // namespace

bool HealthSnapshot::degraded() const {
  for (const StageHealth& s : stages) {
    if (s.breaker_present && s.breaker.state != BreakerState::kClosed) {
      return true;
    }
  }
  for (const BudgetGauge* g : {&sessions, &buffered_fixes, &buffered_bytes}) {
    if (g->limit != 0 && g->utilization() >= 0.9) return true;
  }
  for (const ShardHealth& s : shards) {
    if (!s.alive || s.suspect || s.degraded || s.storage_degraded) {
      return true;
    }
  }
  if (storage_degraded || scrub_quarantined > 0) return true;
  return false;
}

std::string HealthSnapshot::ToString() const {
  std::string out = degraded() ? "health: DEGRADED\n" : "health: ok\n";
  out += "stages:\n";
  for (const StageHealth& s : stages) {
    char line[256];
    if (s.breaker_present) {
      std::snprintf(line, sizeof(line),
                    "  %-22s breaker=%s opened=%zu rejected=%zu "
                    "p50=%.3fms p99=%.3fms n=%zu\n",
                    s.stage.c_str(), BreakerStateName(s.breaker.state),
                    s.breaker.times_opened, s.breaker.rejected,
                    s.latency.p50 * 1e3, s.latency.p99 * 1e3,
                    s.latency.count);
    } else {
      std::snprintf(line, sizeof(line),
                    "  %-22s p50=%.3fms p99=%.3fms n=%zu\n", s.stage.c_str(),
                    s.latency.p50 * 1e3, s.latency.p99 * 1e3,
                    s.latency.count);
    }
    out += line;
  }
  if (!shards.empty()) {
    out += "shards:\n";
    for (const ShardHealth& s : shards) {
      char line[256];
      std::snprintf(line, sizeof(line),
                    "  shard %-4zu %-5s sessions=%zu buffered_bytes=%zu "
                    "ship_lag=%zu seg (%zu B) breakers_open=%zu epoch=%zu%s%s\n",
                    s.shard_id, s.alive ? "up" : "DOWN", s.live_sessions,
                    s.buffered_bytes, s.wal_ship_lag_segments,
                    s.wal_ship_lag_bytes, s.breakers_open, s.failover_epoch,
                    s.suspect ? " SUSPECT" : "",
                    s.degraded ? " DEGRADED" : "");
      out += line;
      if (s.storage_degraded) {
        out += "    storage: READ-ONLY (" + s.storage_fault + ")\n";
      }
      if (s.scrub_files_scanned > 0 || s.scrub_corrupt_detected > 0) {
        char scrub[192];
        std::snprintf(scrub, sizeof(scrub),
                      "    scrub: scanned=%zu corrupt=%zu repaired=%zu "
                      "quarantined=%zu cycles=%zu\n",
                      s.scrub_files_scanned, s.scrub_corrupt_detected,
                      s.scrub_repaired, s.scrub_quarantined,
                      s.scrub_cycles_completed);
        out += scrub;
      }
    }
    char heal[192];
    std::snprintf(heal, sizeof(heal),
                  "failover: completed=%zu aborted=%zu feeds_retried=%zu "
                  "feeds_recovered=%zu\n",
                  failovers_completed, failovers_aborted, feeds_retried,
                  feeds_recovered);
    out += heal;
  }
  out += "budgets:\n";
  AppendGauge(&out, "sessions", sessions);
  AppendGauge(&out, "buffered_fixes", buffered_fixes);
  AppendGauge(&out, "buffered_bytes", buffered_bytes);
  char line[256];
  std::snprintf(line, sizeof(line),
                "overload: shed=%zu rejected_sessions=%zu rate_limited=%zu "
                "rejected_fixes=%zu deferred=%zu timeouts=%zu "
                "data_loss_evictions=%zu watchdog_cancels=%zu\n",
                sessions_shed, admission_rejected_sessions,
                rate_limited_fixes, overload_rejected_fixes,
                admission_deferred, admission_timeouts,
                evictions_with_data_loss, watchdog_force_cancels);
  out += line;
  if (storage_degraded) {
    out += "storage: READ-ONLY DEGRADED (" + storage_fault + ")\n";
  }
  if (scrub_files_scanned > 0 || scrub_corrupt_detected > 0) {
    char scrub[192];
    std::snprintf(scrub, sizeof(scrub),
                  "scrub: scanned=%zu corrupt=%zu repaired=%zu "
                  "quarantined=%zu cycles=%zu\n",
                  scrub_files_scanned, scrub_corrupt_detected, scrub_repaired,
                  scrub_quarantined, scrub_cycles_completed);
    out += scrub;
  }
  return out;
}

}  // namespace semitri::core
