#include "core/types.h"

namespace semitri::core {

const char* EpisodeKindName(EpisodeKind kind) {
  switch (kind) {
    case EpisodeKind::kStop:
      return "stop";
    case EpisodeKind::kMove:
      return "move";
    case EpisodeKind::kBegin:
      return "begin";
    case EpisodeKind::kEnd:
      return "end";
  }
  return "unknown";
}

const char* PlaceKindName(PlaceKind kind) {
  switch (kind) {
    case PlaceKind::kRegion:
      return "region";
    case PlaceKind::kLine:
      return "line";
    case PlaceKind::kPoint:
      return "point";
  }
  return "unknown";
}

const std::string& SemanticEpisode::FindAnnotation(
    const std::string& key) const {
  static const std::string kEmpty;
  for (const Annotation& a : annotations) {
    if (a.key == key) return a.value;
  }
  return kEmpty;
}

}  // namespace semitri::core
