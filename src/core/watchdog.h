#ifndef SEMITRI_CORE_WATCHDOG_H_
#define SEMITRI_CORE_WATCHDOG_H_

// Hard backstop behind cooperative cancellation: the deadline checks in
// the annotation loops are cooperative, so a stage wedged *between*
// checkpoints (a stuck I/O call, an adversarially dense input between
// two checks) could still pin its thread. The stage graph registers
// every deadline-bounded stage execution with a Watchdog; a monitor
// thread (or a test calling ScanOnce under a FakeClock) force-cancels —
// via the execution's CancellationToken — any stage whose wall-clock
// time exceeds deadline_multiple × its budget. The next checkpoint in
// the wedged loop then aborts with Status::DeadlineExceeded.
//
// Thread-safe; Watch/Unwatch are O(log n) on a small map.

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>

#include "common/clock.h"
#include "common/exec_control.h"
#include "common/thread_annotations.h"

namespace semitri::core {

struct WatchdogConfig {
  // How often the monitor thread scans (real time).
  double poll_interval_seconds = 0.05;
  // Force-cancel when elapsed > deadline_multiple * budget.
  double deadline_multiple = 3.0;
};

class Watchdog {
 public:
  explicit Watchdog(WatchdogConfig config = {},
                    const common::Clock* clock = nullptr);
  ~Watchdog();  // stops the monitor thread

  Watchdog(const Watchdog&) = delete;
  Watchdog& operator=(const Watchdog&) = delete;

  // Starts / stops the background monitor thread. Tests that need
  // determinism skip Start() and drive ScanOnce() by hand.
  void Start();
  void Stop();

  // Registers a running execution: `budget_seconds` is its wall budget
  // (<= 0 registers nothing and returns 0). Returns a handle for
  // Unwatch.
  uint64_t Watch(const std::string& name, double budget_seconds,
                 common::CancellationToken token) SEMITRI_EXCLUDES(mutex_);
  void Unwatch(uint64_t id) SEMITRI_EXCLUDES(mutex_);

  // One scan pass: cancels every overdue execution. Returns how many
  // were force-cancelled in this pass.
  size_t ScanOnce() SEMITRI_EXCLUDES(mutex_);

  struct Stats {
    size_t watched_now = 0;     // currently registered executions
    size_t total_watched = 0;   // registrations since construction
    size_t force_cancels = 0;
  };
  Stats stats() const SEMITRI_EXCLUDES(mutex_);

  // RAII registration used by the stage graph.
  class Guard {
   public:
    Guard() = default;
    Guard(Watchdog* watchdog, const std::string& name, double budget_seconds,
          common::CancellationToken token)
        : watchdog_(watchdog),
          id_(watchdog != nullptr
                  ? watchdog->Watch(name, budget_seconds, std::move(token))
                  : 0) {}
    ~Guard() {
      if (watchdog_ != nullptr && id_ != 0) watchdog_->Unwatch(id_);
    }
    Guard(const Guard&) = delete;
    Guard& operator=(const Guard&) = delete;

   private:
    Watchdog* watchdog_ = nullptr;
    uint64_t id_ = 0;
  };

 private:
  struct Execution {
    std::string name;
    int64_t cancel_at_nanos = 0;
    common::CancellationToken token;
    bool cancelled = false;
  };

  void MonitorLoop();

  const WatchdogConfig config_;
  const common::Clock* clock_;

  mutable std::mutex mutex_;
  std::map<uint64_t, Execution> executions_ SEMITRI_GUARDED_BY(mutex_);
  uint64_t next_id_ SEMITRI_GUARDED_BY(mutex_) = 1;
  size_t total_watched_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t force_cancels_ SEMITRI_GUARDED_BY(mutex_) = 0;

  std::mutex thread_mutex_;
  std::condition_variable stop_cv_;
  bool stopping_ SEMITRI_GUARDED_BY(thread_mutex_) = false;
  // semitri-lint: allow(guarded-by-completeness) — the monitor thread
  // is started in the constructor and joined in Stop() outside the
  // lock (joining under thread_mutex_ would deadlock with MonitorLoop
  // re-acquiring it); no concurrent access by construction.
  std::thread monitor_;
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_WATCHDOG_H_
