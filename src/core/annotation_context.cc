#include "core/annotation_context.h"

#include "common/check.h"
#include "core/annotation_scratch.h"

namespace semitri::core {

const traj::PointBatch& AnnotationContext::PointsBatch() {
  traj::PointBatch& batch = scratch != nullptr ? scratch->batch
                                               : fallback_batch_;
  if (!batch_built_) {
    batch.BuildFrom(result.cleaned);
    batch_built_ = true;
  }
  return batch;
}

const char* LayerName(Layer layer) {
  switch (layer) {
    case Layer::kRegion: return "region";
    case Layer::kLine: return "line";
    case Layer::kPoint: return "point";
  }
  return "unknown";
}

size_t PipelineResult::NumStops() const {
  size_t n = 0;
  for (const Episode& e : episodes) {
    if (e.kind == EpisodeKind::kStop) ++n;
  }
  return n;
}

size_t PipelineResult::NumMoves() const {
  size_t n = 0;
  for (const Episode& e : episodes) {
    if (e.kind == EpisodeKind::kMove) ++n;
  }
  return n;
}

bool PipelineResult::degraded() const {
  for (const auto& [name, report] : stage_reports) {
    if (report.skipped) return true;
  }
  return false;
}

std::optional<StructuredSemanticTrajectory>& PipelineResult::layer(
    Layer which) {
  switch (which) {
    case Layer::kRegion: return region_layer;
    case Layer::kLine: return line_layer;
    case Layer::kPoint: return point_layer;
  }
  SEMITRI_CHECK(false) << "invalid layer";
  return region_layer;
}

const std::optional<StructuredSemanticTrajectory>& PipelineResult::layer(
    Layer which) const {
  return const_cast<PipelineResult*>(this)->layer(which);
}

}  // namespace semitri::core
