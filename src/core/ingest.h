#ifndef SEMITRI_CORE_INGEST_H_
#define SEMITRI_CORE_INGEST_H_

// WGS-84 ingestion boundary: real GPS feeds arrive as (longitude,
// latitude, timestamp) triples (Def. 1); the pipeline runs in a local
// metric frame. GpsIngestor projects a stream around a reference
// coordinate (by default the stream's own centroid) and back.

#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "geo/latlon.h"

namespace semitri::core {

struct LatLonFix {
  geo::LatLon position;
  Timestamp time = 0.0;
};

class GpsIngestor {
 public:
  explicit GpsIngestor(geo::LatLon reference) : projection_(reference) {}

  // Reference chosen as the centroid of the fixes (convenient for
  // single-city corpora). Fails on an empty stream.
  static common::Result<GpsIngestor> AroundCentroid(
      const std::vector<LatLonFix>& fixes);

  // Projects a WGS-84 stream into the local metric frame, dropping
  // non-finite coordinates and fixes outside valid WGS-84 ranges.
  std::vector<GpsPoint> ToLocal(const std::vector<LatLonFix>& fixes) const;

  // Back-projects (for export).
  std::vector<LatLonFix> ToLatLon(const std::vector<GpsPoint>& points) const;

  const geo::LocalProjection& projection() const { return projection_; }

 private:
  geo::LocalProjection projection_;
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_INGEST_H_
