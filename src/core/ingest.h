#ifndef SEMITRI_CORE_INGEST_H_
#define SEMITRI_CORE_INGEST_H_

// WGS-84 ingestion boundary: real GPS feeds arrive as (longitude,
// latitude, timestamp) triples (Def. 1); the pipeline runs in a local
// metric frame. GpsIngestor projects a stream around a reference
// coordinate (by default the stream's own centroid) and back.
//
// One-reference-per-session contract: every distance, speed threshold
// and episode summary downstream assumes all of an object's fixes live
// in ONE local metric frame. Batch callers get this for free
// (AroundCentroid fixes the reference before projecting anything).
// Streaming callers must do the same: construct a single GpsIngestor up
// front — from a known deployment coordinate, or from the first fix via
// AroundFix — and project every fix of the session through it via
// ToLocalFix. Re-deriving a reference mid-session (e.g. a fresh
// AroundCentroid over a growing buffer) silently shifts the frame and
// corrupts speeds and displacements across the switch point.

#include <optional>
#include <vector>

#include "common/status.h"
#include "core/types.h"
#include "geo/latlon.h"

namespace semitri::core {

struct LatLonFix {
  geo::LatLon position;
  Timestamp time = 0.0;
};

class GpsIngestor {
 public:
  explicit GpsIngestor(geo::LatLon reference) : projection_(reference) {}

  // Reference chosen as the centroid of the fixes (convenient for
  // single-city corpora). Fails on an empty stream.
  [[nodiscard]] static common::Result<GpsIngestor> AroundCentroid(
      const std::vector<LatLonFix>& fixes);

  // Streaming entry point: reference fixed at the session's first fix
  // (AroundCentroid needs the whole stream up front, which a live feed
  // does not have). Fails when the fix is invalid.
  [[nodiscard]] static common::Result<GpsIngestor> AroundFix(const LatLonFix& fix);

  // Projects a WGS-84 stream into the local metric frame, dropping
  // non-finite coordinates and fixes outside valid WGS-84 ranges.
  std::vector<GpsPoint> ToLocal(const std::vector<LatLonFix>& fixes) const;

  // Single-fix incremental projection (the streaming path); nullopt for
  // exactly the fixes the batch ToLocal drops, so feeding a stream fix
  // by fix yields the same points.
  std::optional<GpsPoint> ToLocalFix(const LatLonFix& fix) const;

  // Back-projects (for export).
  std::vector<LatLonFix> ToLatLon(const std::vector<GpsPoint>& points) const;

  const geo::LocalProjection& projection() const { return projection_; }

 private:
  geo::LocalProjection projection_;
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_INGEST_H_
