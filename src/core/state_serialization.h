#ifndef SEMITRI_CORE_STATE_SERIALIZATION_H_
#define SEMITRI_CORE_STATE_SERIALIZATION_H_

// Bit-exact binary serialization of the semantic-trajectory data model
// (core/types.h) over common::StateWriter/StateReader. Two consumers:
//
//   * the store's write-ahead log (store/wal.h) — each Put* call logs
//     its full argument so SemanticTrajectoryStore::Recover can rebuild
//     the in-memory tables ContentEquals-identical to the pre-crash
//     state (CSV rows are lossy %.6f text; the WAL is not);
//   * streaming checkpoints (stream::SessionManager::Checkpoint) —
//     EpisodeDetector/AnnotationSession progress embeds these types.
//
// Every SaveState has a RestoreState inverse returning Corruption on
// malformed input (never UB): checkpoint and WAL bytes are untrusted.

#include "common/serial.h"
#include "core/annotation_context.h"
#include "core/types.h"

namespace semitri::core {

void SaveState(const GpsPoint& point, common::StateWriter* w);
[[nodiscard]] common::Status RestoreState(common::StateReader* r, GpsPoint* point);

void SaveState(const RawTrajectory& trajectory, common::StateWriter* w);
[[nodiscard]] common::Status RestoreState(common::StateReader* r,
                            RawTrajectory* trajectory);

void SaveState(const Episode& episode, common::StateWriter* w);
[[nodiscard]] common::Status RestoreState(common::StateReader* r, Episode* episode);

void SaveState(const std::vector<Episode>& episodes,
               common::StateWriter* w);
[[nodiscard]] common::Status RestoreState(common::StateReader* r,
                            std::vector<Episode>* episodes);

void SaveState(const SemanticEpisode& episode, common::StateWriter* w);
[[nodiscard]] common::Status RestoreState(common::StateReader* r,
                            SemanticEpisode* episode);

void SaveState(const StructuredSemanticTrajectory& trajectory,
               common::StateWriter* w);
[[nodiscard]] common::Status RestoreState(common::StateReader* r,
                            StructuredSemanticTrajectory* trajectory);

// PipelineResult: cleaned trace, episodes, and the three optional
// annotation layers. Stage reports are transient and not serialized.
void SaveState(const PipelineResult& result, common::StateWriter* w);
[[nodiscard]] common::Status RestoreState(common::StateReader* r, PipelineResult* result);

}  // namespace semitri::core

#endif  // SEMITRI_CORE_STATE_SERIALIZATION_H_
