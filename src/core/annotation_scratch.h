#ifndef SEMITRI_CORE_ANNOTATION_SCRATCH_H_
#define SEMITRI_CORE_ANNOTATION_SCRATCH_H_

// Per-run working memory of the annotation data plane.
//
// One AnnotationScratch is owned by whoever drives repeated annotation
// runs (stream::AnnotationSession, batch drivers) and threaded to the
// stages via AnnotationContext/RunControls. It holds the trajectory's
// SoA point batch plus every layer's reusable buffers, so steady-state
// annotation performs no heap allocation: buffers grow to the high-water
// mark of the workload and are then only cleared/reused (see DESIGN.md
// "Data plane layout" and tests/stream_scratch_test.cc).

#include "poi/point_annotator.h"
#include "road/line_annotator.h"
#include "traj/point_batch.h"

namespace semitri::core {

struct AnnotationScratch {
  // SoA mirror of the cleaned trajectory, built once per run by
  // AnnotationContext::PointsBatch().
  traj::PointBatch batch;
  road::LineScratch line;
  poi::PointScratch point;

  // Total reserved capacity across all scratch buffers (the arena's
  // block bytes included) — stability of this value across runs is the
  // steady-state allocation contract.
  size_t capacity_bytes() const {
    return batch.capacity() * sizeof(double) + line.capacity_bytes() +
           point.capacity_bytes();
  }
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_ANNOTATION_SCRATCH_H_
