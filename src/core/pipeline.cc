#include "core/pipeline.h"

namespace semitri::core {

namespace {

// Times a stage only when a profiler is attached.
class StageTimer {
 public:
  StageTimer(analytics::LatencyProfiler* profiler, const char* stage) {
    if (profiler != nullptr) {
      scope_.emplace(profiler, stage);
    }
  }

 private:
  std::optional<analytics::LatencyProfiler::Scope> scope_;
};

}  // namespace

size_t PipelineResult::NumStops() const {
  size_t n = 0;
  for (const Episode& e : episodes) {
    if (e.kind == EpisodeKind::kStop) ++n;
  }
  return n;
}

size_t PipelineResult::NumMoves() const {
  size_t n = 0;
  for (const Episode& e : episodes) {
    if (e.kind == EpisodeKind::kMove) ++n;
  }
  return n;
}

SemiTriPipeline::SemiTriPipeline(const region::RegionSet* regions,
                                 const road::RoadNetwork* roads,
                                 const poi::PoiSet* pois,
                                 PipelineConfig config,
                                 store::SemanticTrajectoryStore* store,
                                 analytics::LatencyProfiler* profiler)
    : config_(std::move(config)),
      preprocessor_(config_.preprocess),
      identifier_(config_.identification),
      segmenter_(config_.segmentation),
      store_(store),
      profiler_(profiler) {
  if (regions != nullptr) {
    region_annotator_ =
        std::make_unique<region::RegionAnnotator>(regions, config_.region);
  }
  if (roads != nullptr) {
    line_annotator_ =
        std::make_unique<road::LineAnnotator>(roads, config_.line);
  }
  if (pois != nullptr && !pois->empty()) {
    point_annotator_ =
        std::make_unique<poi::PointAnnotator>(pois, config_.point);
  }
}

common::Result<PipelineResult> SemiTriPipeline::ProcessTrajectory(
    const RawTrajectory& raw) const {
  PipelineResult result;

  // --- Trajectory Computation Layer ----------------------------------
  {
    StageTimer timer(profiler_, kStageComputeEpisode);
    result.cleaned = preprocessor_.Clean(raw);
    result.episodes = segmenter_.Segment(result.cleaned);
  }
  if (store_ != nullptr) {
    StageTimer timer(profiler_, kStageStoreEpisode);
    SEMITRI_RETURN_IF_ERROR(store_->PutRawTrajectory(result.cleaned));
    SEMITRI_RETURN_IF_ERROR(
        store_->PutEpisodes(result.cleaned.id, result.episodes));
  }

  // --- Semantic Region Annotation Layer -------------------------------
  if (region_annotator_ != nullptr) {
    StageTimer timer(profiler_, kStageLanduseJoin);
    result.region_layer =
        config_.region_per_point
            ? region_annotator_->AnnotateTrajectory(result.cleaned)
            : region_annotator_->AnnotateEpisodes(result.cleaned,
                                                  result.episodes);
  }
  // --- Semantic Line Annotation Layer ---------------------------------
  if (line_annotator_ != nullptr) {
    {
      StageTimer timer(profiler_, kStageMapMatch);
      result.line_layer =
          line_annotator_->Annotate(result.cleaned, result.episodes);
    }
    if (store_ != nullptr) {
      StageTimer timer(profiler_, kStageStoreMatch);
      SEMITRI_RETURN_IF_ERROR(store_->PutInterpretation(*result.line_layer));
    }
  }
  // --- Semantic Point Annotation Layer --------------------------------
  if (point_annotator_ != nullptr) {
    StageTimer timer(profiler_, kStagePointAnnotation);
    common::Result<StructuredSemanticTrajectory> point_layer =
        point_annotator_->Annotate(result.cleaned, result.episodes);
    if (!point_layer.ok()) return point_layer.status();
    result.point_layer = std::move(*point_layer);
  }
  // Store the remaining interpretations.
  if (store_ != nullptr) {
    if (result.region_layer.has_value()) {
      SEMITRI_RETURN_IF_ERROR(
          store_->PutInterpretation(*result.region_layer));
    }
    if (result.point_layer.has_value()) {
      SEMITRI_RETURN_IF_ERROR(store_->PutInterpretation(*result.point_layer));
    }
  }
  return result;
}

common::Result<std::vector<PipelineResult>> SemiTriPipeline::ProcessStream(
    ObjectId object_id, const std::vector<GpsPoint>& stream,
    TrajectoryId first_id) const {
  std::vector<PipelineResult> out;
  std::vector<RawTrajectory> trajectories =
      identifier_.Identify(object_id, stream, first_id);
  out.reserve(trajectories.size());
  for (const RawTrajectory& t : trajectories) {
    common::Result<PipelineResult> result = ProcessTrajectory(t);
    if (!result.ok()) return result.status();
    out.push_back(std::move(*result));
  }
  return out;
}

}  // namespace semitri::core
