#include "core/pipeline.h"

#include <string>
#include <utility>

#include "common/check.h"

namespace semitri::core {

SemiTriPipeline::SemiTriPipeline(const region::RegionSet* regions,
                                 const road::RoadNetwork* roads,
                                 const poi::PoiSet* pois,
                                 PipelineConfig config,
                                 store::SemanticTrajectoryStore* store,
                                 analytics::LatencyProfiler* profiler)
    : config_(std::move(config)),
      preprocessor_(config_.preprocess),
      identifier_(config_.identification),
      segmenter_(config_.segmentation),
      store_(store),
      profiler_(profiler) {
  if (regions != nullptr) {
    region_annotator_ =
        std::make_unique<region::RegionAnnotator>(regions, config_.region);
  }
  if (roads != nullptr) {
    line_annotator_ =
        std::make_unique<road::LineAnnotator>(roads, config_.line);
  }
  if (pois != nullptr && !pois->empty()) {
    point_annotator_ =
        std::make_unique<poi::PointAnnotator>(pois, config_.point);
  }
  BuildDefaultGraph(store);
}

void SemiTriPipeline::BuildDefaultGraph(store::SemanticTrajectoryStore* store) {
  auto add = [this](std::unique_ptr<AnnotationStage> stage) {
    common::Status status = graph_.Add(std::move(stage));
    SEMITRI_CHECK(status.ok()) << status.ToString();
  };
  // Registration order is the legacy execution order: the stable
  // topological sort keeps it, so store rows and latency samples appear
  // exactly as the monolithic pipeline produced them.
  add(std::make_unique<ComputeEpisodeStage>(&preprocessor_, &segmenter_));
  if (store != nullptr) {
    add(std::make_unique<StoreEpisodeStage>());
  }
  std::vector<std::string> annotation_stages;
  if (region_annotator_ != nullptr) {
    add(std::make_unique<RegionAnnotationStage>(region_annotator_.get()));
    annotation_stages.push_back(kStageLanduseJoin);
  }
  if (line_annotator_ != nullptr) {
    add(std::make_unique<LineAnnotationStage>(line_annotator_.get()));
    annotation_stages.push_back(kStageMapMatch);
    if (store != nullptr) {
      add(std::make_unique<StoreMatchStage>());
    }
  }
  if (point_annotator_ != nullptr) {
    add(std::make_unique<PointAnnotationStage>(point_annotator_.get()));
    annotation_stages.push_back(kStagePointAnnotation);
  }
  if (store != nullptr) {
    add(std::make_unique<StoreInterpretationStage>(
        std::move(annotation_stages)));
  }
  for (const char* name :
       {kStageLanduseJoin, kStageMapMatch, kStagePointAnnotation}) {
    if (graph_.Find(name) != nullptr) {
      common::Status status =
          graph_.SetFailurePolicy(name, config_.annotation_failure);
      SEMITRI_CHECK(status.ok()) << status.ToString();
    }
  }
  common::Status status = graph_.Finalize();
  SEMITRI_CHECK(status.ok()) << status.ToString();
}

common::Result<PipelineResult> SemiTriPipeline::ProcessTrajectory(
    const RawTrajectory& raw) const {
  return ProcessTrajectory(raw, RunControls{});
}

common::Result<PipelineResult> SemiTriPipeline::ProcessTrajectory(
    const RawTrajectory& raw, const RunControls& controls) const {
  AnnotationContext context;
  context.raw = &raw;
  context.store = store_;
  context.profiler = profiler_;
  context.exec = controls.exec;
  context.watchdog = controls.watchdog;
  context.clock = controls.clock;
  context.scratch = controls.scratch;
  SEMITRI_RETURN_IF_ERROR(graph_.Run(context));
  return std::move(context.result);
}

common::Result<std::vector<PipelineResult>> SemiTriPipeline::ProcessStream(
    ObjectId object_id, const std::vector<GpsPoint>& stream,
    TrajectoryId first_id) const {
  return ProcessStream(object_id, stream, first_id, RunControls{});
}

common::Result<std::vector<PipelineResult>> SemiTriPipeline::ProcessStream(
    ObjectId object_id, const std::vector<GpsPoint>& stream,
    TrajectoryId first_id, const RunControls& controls) const {
  std::vector<PipelineResult> out;
  std::vector<RawTrajectory> trajectories =
      identifier_.Identify(object_id, stream, first_id);
  out.reserve(trajectories.size());
  for (const RawTrajectory& t : trajectories) {
    common::Result<PipelineResult> result = ProcessTrajectory(t, controls);
    if (!result.ok()) return result.status();
    out.push_back(std::move(*result));
  }
  return out;
}

common::Result<PipelineResult> SemiTriPipeline::AnnotateComputed(
    PipelineResult computed) const {
  return AnnotateComputed(std::move(computed), RunControls{});
}

common::Result<PipelineResult> SemiTriPipeline::AnnotateComputed(
    PipelineResult computed, const RunControls& controls) const {
  AnnotationContext context;
  context.result = std::move(computed);
  context.store = store_;
  context.profiler = profiler_;
  context.exec = controls.exec;
  context.watchdog = controls.watchdog;
  context.clock = controls.clock;
  context.scratch = controls.scratch;
  // Same stage sequence as a full run, minus trajectory computation —
  // the stable topological order keeps store rows and latency samples
  // in the exact ProcessTrajectory order.
  for (const std::string& name : graph_.ExecutionOrder()) {
    if (name == kStageComputeEpisode) continue;
    SEMITRI_RETURN_IF_ERROR(graph_.RunStage(name, context));
  }
  return std::move(context.result);
}

HealthSnapshot SemiTriPipeline::Health() const {
  HealthSnapshot snapshot;
  for (const std::string& name : graph_.ExecutionOrder()) {
    const AnnotationStage* stage = graph_.Find(name);
    StageHealth health;
    health.stage = name;
    if (const CircuitBreaker* breaker = stage->circuit_breaker()) {
      health.breaker_present = true;
      health.breaker = breaker->stats();
    }
    if (profiler_ != nullptr && stage->profiled()) {
      health.latency = profiler_->Summarize(name);
    }
    snapshot.stages.push_back(std::move(health));
  }
  return snapshot;
}

common::Result<PipelineResult> SemiTriPipeline::ReannotateLayer(
    PipelineResult result, Layer layer) const {
  const char* stage_name = nullptr;
  switch (layer) {
    case Layer::kRegion:
      stage_name = kStageLanduseJoin;
      break;
    case Layer::kLine:
      stage_name = kStageMapMatch;
      break;
    case Layer::kPoint:
      stage_name = kStagePointAnnotation;
      break;
  }
  if (graph_.Find(stage_name) == nullptr) {
    return common::Status::FailedPrecondition(
        std::string("no ") + LayerName(layer) +
        " annotation layer in this pipeline (semantic source not supplied)");
  }
  AnnotationContext context;
  context.result = std::move(result);
  context.store = store_;
  context.profiler = profiler_;
  SEMITRI_RETURN_IF_ERROR(graph_.RunStage(stage_name, context));
  // Write the recomputed layer through to the store the same way a full
  // run would: line results under the profiled store_match_result stage,
  // region/point in the unprofiled write-back tail (but only this layer —
  // the others on `result` are untouched).
  if (layer == Layer::kLine) {
    if (graph_.Find(kStageStoreMatch) != nullptr) {
      SEMITRI_RETURN_IF_ERROR(graph_.RunStage(kStageStoreMatch, context));
    }
  } else if (store_ != nullptr && context.result.layer(layer).has_value()) {
    SEMITRI_RETURN_IF_ERROR(
        store_->PutInterpretation(*context.result.layer(layer)));
  }
  return std::move(context.result);
}

}  // namespace semitri::core
