#include "core/stage.h"

#include <algorithm>
#include <optional>

#include "analytics/latency_profiler.h"
#include "common/check.h"
#include "common/clock.h"
#include "common/fault_injection.h"
#include "core/watchdog.h"

namespace semitri::core {

namespace {

// Times a stage only when a profiler is attached.
class StageTimer {
 public:
  StageTimer(analytics::LatencyProfiler* profiler, const char* stage) {
    if (profiler != nullptr) {
      scope_.emplace(profiler, stage);
    }
  }

 private:
  std::optional<analytics::LatencyProfiler::Scope> scope_;
};

}  // namespace

common::Status StageGraph::Add(std::unique_ptr<AnnotationStage> stage) {
  if (finalized_) {
    return common::Status::InvalidArgument(
        "cannot add stage '" + stage->name() + "' to a finalized graph");
  }
  if (Find(stage->name()) != nullptr) {
    return common::Status::InvalidArgument("duplicate stage name '" +
                                           stage->name() + "'");
  }
  stages_.push_back(std::move(stage));
  return common::Status::OK();
}

common::Status StageGraph::Finalize() {
  if (finalized_) return common::Status::OK();
  // Stable Kahn topological sort: among stages whose dependencies are
  // satisfied, registration order wins — so the default pipeline graph
  // executes (and stores) in exactly the documented layer order.
  order_.clear();
  order_.reserve(stages_.size());
  std::vector<bool> done(stages_.size(), false);
  for (const std::unique_ptr<AnnotationStage>& stage : stages_) {
    for (const std::string& dep : stage->dependencies()) {
      if (Find(dep) == nullptr) {
        return common::Status::InvalidArgument(
            "stage '" + stage->name() + "' depends on unknown stage '" +
            dep + "'");
      }
    }
  }
  while (order_.size() < stages_.size()) {
    bool progressed = false;
    for (size_t i = 0; i < stages_.size(); ++i) {
      if (done[i]) continue;
      bool ready = true;
      for (const std::string& dep : stages_[i]->dependencies()) {
        bool dep_done = false;
        for (size_t j = 0; j < stages_.size(); ++j) {
          if (done[j] && stages_[j]->name() == dep) {
            dep_done = true;
            break;
          }
        }
        if (!dep_done) {
          ready = false;
          break;
        }
      }
      if (ready) {
        done[i] = true;
        order_.push_back(stages_[i].get());
        progressed = true;
      }
    }
    if (!progressed) {
      std::string cycle;
      for (size_t i = 0; i < stages_.size(); ++i) {
        if (done[i]) continue;
        if (!cycle.empty()) cycle += ", ";
        cycle += stages_[i]->name();
      }
      return common::Status::InvalidArgument(
          "stage dependency cycle among: " + cycle);
    }
  }
  finalized_ = true;
  return common::Status::OK();
}

const AnnotationStage* StageGraph::Find(std::string_view name) const {
  for (const std::unique_ptr<AnnotationStage>& stage : stages_) {
    if (stage->name() == name) return stage.get();
  }
  return nullptr;
}

common::Status StageGraph::SetFailurePolicy(std::string_view name,
                                            FailurePolicy policy) {
  for (const std::unique_ptr<AnnotationStage>& stage : stages_) {
    if (stage->name() == name) {
      stage->set_failure_policy(policy);
      return common::Status::OK();
    }
  }
  return common::Status::InvalidArgument("unknown stage '" +
                                         std::string(name) + "'");
}

common::Status StageGraph::SetCircuitBreaker(std::string_view name,
                                             CircuitBreakerConfig config,
                                             const common::Clock* clock) {
  for (const std::unique_ptr<AnnotationStage>& stage : stages_) {
    if (stage->name() == name) {
      stage->set_circuit_breaker(
          std::make_unique<CircuitBreaker>(config, clock));
      return common::Status::OK();
    }
  }
  return common::Status::InvalidArgument("unknown stage '" +
                                         std::string(name) + "'");
}

std::vector<std::string> StageGraph::ExecutionOrder() const {
  std::vector<std::string> out;
  out.reserve(order_.size());
  for (const AnnotationStage* stage : order_) out.push_back(stage->name());
  return out;
}

common::Status StageGraph::RunOne(const AnnotationStage& stage,
                                  AnnotationContext& context) const {
  const FailurePolicy& policy = stage.failure_policy();
  const common::Clock* clock =
      context.clock != nullptr ? context.clock : common::Clock::Real();

  // Between-stage gate: an expired run deadline (or a fired token)
  // aborts the run outright — unlike a stage-local timeout below, there
  // is no budget left for later stages, so FailurePolicy does not apply.
  if (context.exec != nullptr) {
    SEMITRI_RETURN_IF_ERROR(context.exec->Check(stage.name().c_str()));
  }

  // Open circuit breaker: short-circuit before any attempt — no retry
  // budget is burned — and let the stage's FailurePolicy decide whether
  // the run degrades (skip) or fails, exactly as for a real error.
  CircuitBreaker* breaker = stage.circuit_breaker();
  if (breaker != nullptr && !breaker->Allow()) {
    common::Status status = common::Status::Unavailable(
        "circuit breaker open for stage '" + stage.name() + "'");
    bool skip = policy.on_failure == FailurePolicy::OnFailure::kSkip;
    context.result.stage_reports[stage.name()] =
        StageReport{status, /*attempts=*/0, skip};
    return skip ? common::Status::OK() : status;
  }

  // Tighten the stage's view of the deadline by its per-stage budget;
  // attempts below run against `stage_exec` while the between-stage gate
  // above keeps using the caller's run-level control.
  const common::ExecControl* run_exec = context.exec;
  common::ExecControl stage_exec;
  bool stage_bounded = false;
  if (run_exec != nullptr && run_exec->stage_timeout_seconds > 0.0) {
    stage_exec = *run_exec;
    stage_exec.deadline = common::Deadline::Earlier(
        run_exec->deadline,
        common::Deadline::After(run_exec->stage_timeout_seconds,
                                run_exec->effective_clock()));
    context.exec = &stage_exec;
    stage_bounded = true;
  }
  // Backstop: if this stage wedges past a hard multiple of its budget,
  // the watchdog fires the token and the next checkpoint aborts.
  std::optional<Watchdog::Guard> watch;
  if (context.watchdog != nullptr && stage_bounded) {
    watch.emplace(context.watchdog, stage.name(),
                  run_exec->stage_timeout_seconds, stage_exec.token);
  }

  common::Status status;
  size_t attempts = 0;
  double backoff = policy.initial_backoff_seconds;
  for (;;) {
    ++attempts;
    // Every stage execution is a fault site named "stage:<name>", so
    // the crash-recovery harness can fail any step of the graph without
    // bespoke hooks in each annotator; "stage_slow:<name>" simulates a
    // wedged stage by sleeping past the remaining deadline (instant
    // under a FakeClock), exercising the timeout paths deterministically.
    common::FaultAction slow = SEMITRI_FAULT_FIRE("stage_slow:" + stage.name());
    if (slow != common::FaultAction::kNone) {
      double nap = 0.001;
      if (context.exec != nullptr && !context.exec->deadline.infinite()) {
        nap = std::max(
            nap, context.exec->deadline.remaining_seconds() + 0.001);
      }
      clock->SleepFor(nap);
    }
    common::FaultAction action = SEMITRI_FAULT_FIRE("stage:" + stage.name());
    // A kCrash at the slow site is a process that dies while wedged: it
    // must surface as a hard failure, never as a completed stage.
    if (slow == common::FaultAction::kCrash ||
        action != common::FaultAction::kNone) {
      status = common::Status::IoError("injected failure in stage '" +
                                       stage.name() + "'");
    } else if (context.exec != nullptr && !(status = context.exec->Check(
                                                stage.name().c_str()))
                                               .ok()) {
      // Budget already gone (e.g. the slow site above, or an earlier
      // attempt consumed it): don't enter the stage at all.
    } else {
      int64_t start_nanos = breaker != nullptr ? clock->NowNanos() : 0;
      {
        StageTimer timer(stage.profiled() ? context.profiler : nullptr,
                         stage.name().c_str());
        status = stage.Run(context);
      }
      if (breaker != nullptr) {
        double latency =
            static_cast<double>(clock->NowNanos() - start_nanos) * 1e-9;
        if (status.ok()) {
          breaker->RecordSuccess(latency);
        } else {
          breaker->RecordFailure();
        }
      }
    }
    if (status.ok() || attempts >= std::max<size_t>(policy.max_attempts, 1)) {
      break;
    }
    // Retrying against an exhausted deadline can only fail again — stop
    // burning attempts and let the failure policy decide immediately.
    if (status.code() == common::StatusCode::kDeadlineExceeded) break;
    if (backoff > 0.0) {
      clock->SleepFor(std::min(backoff, policy.max_backoff_seconds));
      backoff *= policy.backoff_multiplier;
    }
  }
  context.exec = run_exec;

  // Record only the interesting executions (retried, failed, or
  // skipped) so a clean first-attempt run allocates nothing.
  if (status.ok()) {
    if (attempts > 1) {
      context.result.stage_reports[stage.name()] =
          StageReport{status, attempts, /*skipped=*/false};
    }
    return status;
  }
  // A stage that exhausted only its own budget degrades per policy; an
  // exhausted run deadline surfaces at the next between-stage gate.
  bool skip = policy.on_failure == FailurePolicy::OnFailure::kSkip;
  context.result.stage_reports[stage.name()] =
      StageReport{status, attempts, skip};
  // Degrade: drop this stage's contribution and let the rest of the
  // graph complete.
  if (skip) return common::Status::OK();
  return status;
}

common::Status StageGraph::Run(AnnotationContext& context) const {
  SEMITRI_CHECK(finalized_) << "StageGraph::Run before Finalize";
  for (const AnnotationStage* stage : order_) {
    SEMITRI_RETURN_IF_ERROR(RunOne(*stage, context));
  }
  return common::Status::OK();
}

common::Status StageGraph::RunStage(std::string_view name,
                                    AnnotationContext& context) const {
  const AnnotationStage* stage = Find(name);
  if (stage == nullptr) {
    return common::Status::InvalidArgument("unknown stage '" +
                                           std::string(name) + "'");
  }
  return RunOne(*stage, context);
}

}  // namespace semitri::core
