#include "core/stage.h"

#include <algorithm>
#include <chrono>
#include <optional>
#include <thread>

#include "analytics/latency_profiler.h"
#include "common/check.h"
#include "common/fault_injection.h"

namespace semitri::core {

namespace {

// Times a stage only when a profiler is attached.
class StageTimer {
 public:
  StageTimer(analytics::LatencyProfiler* profiler, const char* stage) {
    if (profiler != nullptr) {
      scope_.emplace(profiler, stage);
    }
  }

 private:
  std::optional<analytics::LatencyProfiler::Scope> scope_;
};

}  // namespace

common::Status StageGraph::Add(std::unique_ptr<AnnotationStage> stage) {
  if (finalized_) {
    return common::Status::InvalidArgument(
        "cannot add stage '" + stage->name() + "' to a finalized graph");
  }
  if (Find(stage->name()) != nullptr) {
    return common::Status::InvalidArgument("duplicate stage name '" +
                                           stage->name() + "'");
  }
  stages_.push_back(std::move(stage));
  return common::Status::OK();
}

common::Status StageGraph::Finalize() {
  if (finalized_) return common::Status::OK();
  // Stable Kahn topological sort: among stages whose dependencies are
  // satisfied, registration order wins — so the default pipeline graph
  // executes (and stores) in exactly the documented layer order.
  order_.clear();
  order_.reserve(stages_.size());
  std::vector<bool> done(stages_.size(), false);
  for (const std::unique_ptr<AnnotationStage>& stage : stages_) {
    for (const std::string& dep : stage->dependencies()) {
      if (Find(dep) == nullptr) {
        return common::Status::InvalidArgument(
            "stage '" + stage->name() + "' depends on unknown stage '" +
            dep + "'");
      }
    }
  }
  while (order_.size() < stages_.size()) {
    bool progressed = false;
    for (size_t i = 0; i < stages_.size(); ++i) {
      if (done[i]) continue;
      bool ready = true;
      for (const std::string& dep : stages_[i]->dependencies()) {
        bool dep_done = false;
        for (size_t j = 0; j < stages_.size(); ++j) {
          if (done[j] && stages_[j]->name() == dep) {
            dep_done = true;
            break;
          }
        }
        if (!dep_done) {
          ready = false;
          break;
        }
      }
      if (ready) {
        done[i] = true;
        order_.push_back(stages_[i].get());
        progressed = true;
      }
    }
    if (!progressed) {
      std::string cycle;
      for (size_t i = 0; i < stages_.size(); ++i) {
        if (done[i]) continue;
        if (!cycle.empty()) cycle += ", ";
        cycle += stages_[i]->name();
      }
      return common::Status::InvalidArgument(
          "stage dependency cycle among: " + cycle);
    }
  }
  finalized_ = true;
  return common::Status::OK();
}

const AnnotationStage* StageGraph::Find(std::string_view name) const {
  for (const std::unique_ptr<AnnotationStage>& stage : stages_) {
    if (stage->name() == name) return stage.get();
  }
  return nullptr;
}

common::Status StageGraph::SetFailurePolicy(std::string_view name,
                                            FailurePolicy policy) {
  for (const std::unique_ptr<AnnotationStage>& stage : stages_) {
    if (stage->name() == name) {
      stage->set_failure_policy(policy);
      return common::Status::OK();
    }
  }
  return common::Status::InvalidArgument("unknown stage '" +
                                         std::string(name) + "'");
}

std::vector<std::string> StageGraph::ExecutionOrder() const {
  std::vector<std::string> out;
  out.reserve(order_.size());
  for (const AnnotationStage* stage : order_) out.push_back(stage->name());
  return out;
}

common::Status StageGraph::RunOne(const AnnotationStage& stage,
                                  AnnotationContext& context) const {
  const FailurePolicy& policy = stage.failure_policy();
  common::Status status;
  size_t attempts = 0;
  double backoff = policy.initial_backoff_seconds;
  for (;;) {
    ++attempts;
    // Every stage execution is a fault site named "stage:<name>", so
    // the crash-recovery harness can fail any step of the graph without
    // bespoke hooks in each annotator.
    common::FaultAction action = SEMITRI_FAULT_FIRE("stage:" + stage.name());
    if (action != common::FaultAction::kNone) {
      status = common::Status::IoError("injected failure in stage '" +
                                       stage.name() + "'");
    } else {
      StageTimer timer(stage.profiled() ? context.profiler : nullptr,
                       stage.name().c_str());
      status = stage.Run(context);
    }
    if (status.ok() || attempts >= std::max<size_t>(policy.max_attempts, 1)) {
      break;
    }
    if (backoff > 0.0) {
      std::this_thread::sleep_for(std::chrono::duration<double>(
          std::min(backoff, policy.max_backoff_seconds)));
      backoff *= policy.backoff_multiplier;
    }
  }

  // Record only the interesting executions (retried, failed, or
  // skipped) so a clean first-attempt run allocates nothing.
  if (status.ok()) {
    if (attempts > 1) {
      context.result.stage_reports[stage.name()] =
          StageReport{status, attempts, /*skipped=*/false};
    }
    return status;
  }
  bool skip = policy.on_failure == FailurePolicy::OnFailure::kSkip;
  context.result.stage_reports[stage.name()] =
      StageReport{status, attempts, skip};
  // Degrade: drop this stage's contribution and let the rest of the
  // graph complete.
  if (skip) return common::Status::OK();
  return status;
}

common::Status StageGraph::Run(AnnotationContext& context) const {
  SEMITRI_CHECK(finalized_) << "StageGraph::Run before Finalize";
  for (const AnnotationStage* stage : order_) {
    SEMITRI_RETURN_IF_ERROR(RunOne(*stage, context));
  }
  return common::Status::OK();
}

common::Status StageGraph::RunStage(std::string_view name,
                                    AnnotationContext& context) const {
  const AnnotationStage* stage = Find(name);
  if (stage == nullptr) {
    return common::Status::InvalidArgument("unknown stage '" +
                                           std::string(name) + "'");
  }
  return RunOne(*stage, context);
}

}  // namespace semitri::core
