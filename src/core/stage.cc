#include "core/stage.h"

#include <optional>

#include "analytics/latency_profiler.h"
#include "common/check.h"

namespace semitri::core {

namespace {

// Times a stage only when a profiler is attached.
class StageTimer {
 public:
  StageTimer(analytics::LatencyProfiler* profiler, const char* stage) {
    if (profiler != nullptr) {
      scope_.emplace(profiler, stage);
    }
  }

 private:
  std::optional<analytics::LatencyProfiler::Scope> scope_;
};

}  // namespace

common::Status StageGraph::Add(std::unique_ptr<AnnotationStage> stage) {
  if (finalized_) {
    return common::Status::InvalidArgument(
        "cannot add stage '" + stage->name() + "' to a finalized graph");
  }
  if (Find(stage->name()) != nullptr) {
    return common::Status::InvalidArgument("duplicate stage name '" +
                                           stage->name() + "'");
  }
  stages_.push_back(std::move(stage));
  return common::Status::OK();
}

common::Status StageGraph::Finalize() {
  if (finalized_) return common::Status::OK();
  // Stable Kahn topological sort: among stages whose dependencies are
  // satisfied, registration order wins — so the default pipeline graph
  // executes (and stores) in exactly the documented layer order.
  order_.clear();
  order_.reserve(stages_.size());
  std::vector<bool> done(stages_.size(), false);
  for (const std::unique_ptr<AnnotationStage>& stage : stages_) {
    for (const std::string& dep : stage->dependencies()) {
      if (Find(dep) == nullptr) {
        return common::Status::InvalidArgument(
            "stage '" + stage->name() + "' depends on unknown stage '" +
            dep + "'");
      }
    }
  }
  while (order_.size() < stages_.size()) {
    bool progressed = false;
    for (size_t i = 0; i < stages_.size(); ++i) {
      if (done[i]) continue;
      bool ready = true;
      for (const std::string& dep : stages_[i]->dependencies()) {
        bool dep_done = false;
        for (size_t j = 0; j < stages_.size(); ++j) {
          if (done[j] && stages_[j]->name() == dep) {
            dep_done = true;
            break;
          }
        }
        if (!dep_done) {
          ready = false;
          break;
        }
      }
      if (ready) {
        done[i] = true;
        order_.push_back(stages_[i].get());
        progressed = true;
      }
    }
    if (!progressed) {
      std::string cycle;
      for (size_t i = 0; i < stages_.size(); ++i) {
        if (done[i]) continue;
        if (!cycle.empty()) cycle += ", ";
        cycle += stages_[i]->name();
      }
      return common::Status::InvalidArgument(
          "stage dependency cycle among: " + cycle);
    }
  }
  finalized_ = true;
  return common::Status::OK();
}

const AnnotationStage* StageGraph::Find(std::string_view name) const {
  for (const std::unique_ptr<AnnotationStage>& stage : stages_) {
    if (stage->name() == name) return stage.get();
  }
  return nullptr;
}

std::vector<std::string> StageGraph::ExecutionOrder() const {
  std::vector<std::string> out;
  out.reserve(order_.size());
  for (const AnnotationStage* stage : order_) out.push_back(stage->name());
  return out;
}

common::Status StageGraph::RunOne(const AnnotationStage& stage,
                                  AnnotationContext& context) const {
  StageTimer timer(stage.profiled() ? context.profiler : nullptr,
                   stage.name().c_str());
  return stage.Run(context);
}

common::Status StageGraph::Run(AnnotationContext& context) const {
  SEMITRI_CHECK(finalized_) << "StageGraph::Run before Finalize";
  for (const AnnotationStage* stage : order_) {
    SEMITRI_RETURN_IF_ERROR(RunOne(*stage, context));
  }
  return common::Status::OK();
}

common::Status StageGraph::RunStage(std::string_view name,
                                    AnnotationContext& context) const {
  const AnnotationStage* stage = Find(name);
  if (stage == nullptr) {
    return common::Status::InvalidArgument("unknown stage '" +
                                           std::string(name) + "'");
  }
  return RunOne(*stage, context);
}

}  // namespace semitri::core
