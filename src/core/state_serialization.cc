#include "core/state_serialization.h"

namespace semitri::core {

namespace {

common::Status RestoreEpisodeKind(uint8_t raw, EpisodeKind* out) {
  if (raw > static_cast<uint8_t>(EpisodeKind::kEnd)) {
    return common::Status::Corruption("bad episode kind in serialized state");
  }
  *out = static_cast<EpisodeKind>(raw);
  return common::Status::OK();
}

}  // namespace

void SaveState(const GpsPoint& point, common::StateWriter* w) {
  w->PutDouble(point.position.x);
  w->PutDouble(point.position.y);
  w->PutDouble(point.time);
}

common::Status RestoreState(common::StateReader* r, GpsPoint* point) {
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&point->position.x));
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&point->position.y));
  return r->GetDouble(&point->time);
}

void SaveState(const RawTrajectory& trajectory, common::StateWriter* w) {
  w->PutI64(trajectory.id);
  w->PutI64(trajectory.object_id);
  w->PutU64(trajectory.points.size());
  for (const GpsPoint& p : trajectory.points) SaveState(p, w);
}

common::Status RestoreState(common::StateReader* r,
                            RawTrajectory* trajectory) {
  SEMITRI_RETURN_IF_ERROR(r->GetI64(&trajectory->id));
  SEMITRI_RETURN_IF_ERROR(r->GetI64(&trajectory->object_id));
  uint64_t n = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&n));
  if (n > r->remaining()) {  // every point needs >= 1 byte
    return common::Status::Corruption("trajectory point count exceeds data");
  }
  trajectory->points.clear();
  trajectory->points.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    GpsPoint p;
    SEMITRI_RETURN_IF_ERROR(RestoreState(r, &p));
    trajectory->points.push_back(p);
  }
  return common::Status::OK();
}

void SaveState(const Episode& episode, common::StateWriter* w) {
  w->PutU8(static_cast<uint8_t>(episode.kind));
  w->PutU64(episode.begin);
  w->PutU64(episode.end);
  w->PutDouble(episode.time_in);
  w->PutDouble(episode.time_out);
  w->PutDouble(episode.center.x);
  w->PutDouble(episode.center.y);
  w->PutDouble(episode.bounds.min.x);
  w->PutDouble(episode.bounds.min.y);
  w->PutDouble(episode.bounds.max.x);
  w->PutDouble(episode.bounds.max.y);
}

common::Status RestoreState(common::StateReader* r, Episode* episode) {
  uint8_t kind = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU8(&kind));
  SEMITRI_RETURN_IF_ERROR(RestoreEpisodeKind(kind, &episode->kind));
  uint64_t begin = 0;
  uint64_t end = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&begin));
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&end));
  episode->begin = static_cast<size_t>(begin);
  episode->end = static_cast<size_t>(end);
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&episode->time_in));
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&episode->time_out));
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&episode->center.x));
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&episode->center.y));
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&episode->bounds.min.x));
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&episode->bounds.min.y));
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&episode->bounds.max.x));
  return r->GetDouble(&episode->bounds.max.y);
}

void SaveState(const std::vector<Episode>& episodes,
               common::StateWriter* w) {
  w->PutU64(episodes.size());
  for (const Episode& e : episodes) SaveState(e, w);
}

common::Status RestoreState(common::StateReader* r,
                            std::vector<Episode>* episodes) {
  uint64_t n = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&n));
  if (n > r->remaining()) {
    return common::Status::Corruption("episode count exceeds data");
  }
  episodes->clear();
  episodes->reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Episode e;
    SEMITRI_RETURN_IF_ERROR(RestoreState(r, &e));
    episodes->push_back(e);
  }
  return common::Status::OK();
}

void SaveState(const SemanticEpisode& episode, common::StateWriter* w) {
  w->PutU8(static_cast<uint8_t>(episode.kind));
  w->PutU8(static_cast<uint8_t>(episode.place.kind));
  w->PutI64(episode.place.id);
  w->PutDouble(episode.time_in);
  w->PutDouble(episode.time_out);
  w->PutU64(episode.source_episode);
  w->PutU64(episode.annotations.size());
  for (const Annotation& a : episode.annotations) {
    w->PutString(a.key);
    w->PutString(a.value);
  }
}

common::Status RestoreState(common::StateReader* r,
                            SemanticEpisode* episode) {
  uint8_t kind = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU8(&kind));
  SEMITRI_RETURN_IF_ERROR(RestoreEpisodeKind(kind, &episode->kind));
  uint8_t place_kind = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU8(&place_kind));
  if (place_kind > static_cast<uint8_t>(PlaceKind::kPoint)) {
    return common::Status::Corruption("bad place kind in serialized state");
  }
  episode->place.kind = static_cast<PlaceKind>(place_kind);
  SEMITRI_RETURN_IF_ERROR(r->GetI64(&episode->place.id));
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&episode->time_in));
  SEMITRI_RETURN_IF_ERROR(r->GetDouble(&episode->time_out));
  uint64_t source = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&source));
  episode->source_episode = static_cast<size_t>(source);
  uint64_t n = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&n));
  if (n > r->remaining()) {
    return common::Status::Corruption("annotation count exceeds data");
  }
  episode->annotations.clear();
  episode->annotations.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    Annotation a;
    SEMITRI_RETURN_IF_ERROR(r->GetString(&a.key));
    SEMITRI_RETURN_IF_ERROR(r->GetString(&a.value));
    episode->annotations.push_back(std::move(a));
  }
  return common::Status::OK();
}

void SaveState(const StructuredSemanticTrajectory& trajectory,
               common::StateWriter* w) {
  w->PutI64(trajectory.trajectory_id);
  w->PutI64(trajectory.object_id);
  w->PutString(trajectory.interpretation);
  w->PutU64(trajectory.episodes.size());
  for (const SemanticEpisode& e : trajectory.episodes) SaveState(e, w);
}

common::Status RestoreState(common::StateReader* r,
                            StructuredSemanticTrajectory* trajectory) {
  SEMITRI_RETURN_IF_ERROR(r->GetI64(&trajectory->trajectory_id));
  SEMITRI_RETURN_IF_ERROR(r->GetI64(&trajectory->object_id));
  SEMITRI_RETURN_IF_ERROR(r->GetString(&trajectory->interpretation));
  uint64_t n = 0;
  SEMITRI_RETURN_IF_ERROR(r->GetU64(&n));
  if (n > r->remaining()) {
    return common::Status::Corruption("semantic episode count exceeds data");
  }
  trajectory->episodes.clear();
  trajectory->episodes.reserve(n);
  for (uint64_t i = 0; i < n; ++i) {
    SemanticEpisode e;
    SEMITRI_RETURN_IF_ERROR(RestoreState(r, &e));
    trajectory->episodes.push_back(std::move(e));
  }
  return common::Status::OK();
}

void SaveState(const PipelineResult& result, common::StateWriter* w) {
  SaveState(result.cleaned, w);
  SaveState(result.episodes, w);
  for (Layer layer : {Layer::kRegion, Layer::kLine, Layer::kPoint}) {
    const std::optional<StructuredSemanticTrajectory>& l =
        result.layer(layer);
    w->PutBool(l.has_value());
    if (l.has_value()) SaveState(*l, w);
  }
}

common::Status RestoreState(common::StateReader* r, PipelineResult* result) {
  SEMITRI_RETURN_IF_ERROR(RestoreState(r, &result->cleaned));
  SEMITRI_RETURN_IF_ERROR(RestoreState(r, &result->episodes));
  for (Layer layer : {Layer::kRegion, Layer::kLine, Layer::kPoint}) {
    bool present = false;
    SEMITRI_RETURN_IF_ERROR(r->GetBool(&present));
    std::optional<StructuredSemanticTrajectory>& l = result->layer(layer);
    if (present) {
      l.emplace();
      SEMITRI_RETURN_IF_ERROR(RestoreState(r, &*l));
    } else {
      l.reset();
    }
  }
  return common::Status::OK();
}

}  // namespace semitri::core
