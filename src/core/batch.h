#ifndef SEMITRI_CORE_BATCH_H_
#define SEMITRI_CORE_BATCH_H_

// Multi-threaded batch annotation. The paper's efficiency requirement
// ("the available datasets are large and quickly growing, and
// annotation data is even required in real-time", §1.2) maps naturally
// onto per-object parallelism: objects are independent, the semantic
// sources are immutable during annotation, and SemiTriPipeline's
// processing methods are const and thread-safe.
//
// Store writes are not thread-safe, so the batch processor runs the
// pipeline without a store sink and lets the caller persist results
// (or use StoreResults below, which writes serially).

#include <map>
#include <vector>

#include "core/pipeline.h"

namespace semitri::core {

struct BatchOptions {
  // 0 = hardware concurrency.
  size_t num_threads = 0;
};

struct ObjectResults {
  ObjectId object_id = 0;
  std::vector<PipelineResult> results;
};

class BatchProcessor {
 public:
  // `pipeline` must outlive the processor and must have been built
  // without a store/profiler sink (those are not thread-safe); pass
  // results to StoreResults afterwards instead.
  explicit BatchProcessor(const SemiTriPipeline* pipeline,
                          BatchOptions options = {})
      : pipeline_(pipeline), options_(options) {}

  // Processes every object's stream in parallel. Results are returned
  // ordered by object id regardless of scheduling; trajectory ids are
  // assigned deterministically (per-object blocks of `ids_per_object`).
  common::Result<std::vector<ObjectResults>> Process(
      const std::map<ObjectId, std::vector<GpsPoint>>& streams,
      TrajectoryId ids_per_object = 1000) const;

  // Serially persists batch results into a store.
  static common::Status StoreResults(
      const std::vector<ObjectResults>& all,
      store::SemanticTrajectoryStore* store);

 private:
  const SemiTriPipeline* pipeline_;
  BatchOptions options_;
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_BATCH_H_
