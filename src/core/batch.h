#ifndef SEMITRI_CORE_BATCH_H_
#define SEMITRI_CORE_BATCH_H_

// Multi-threaded batch annotation. The paper's efficiency requirement
// ("the available datasets are large and quickly growing, and
// annotation data is even required in real-time", §1.2) maps naturally
// onto per-object parallelism: objects are independent, the semantic
// sources are immutable during annotation, and SemiTriPipeline's
// processing methods are const and thread-safe.
//
// The store and the latency profiler serialize internally (see their
// SEMITRI_GUARDED_BY annotations), so a pipeline carrying those sinks
// is safe to run from many workers. For deterministic write-through CSV
// row order, though, prefer a sink-less pipeline plus StoreResults
// below, which persists the merged results serially in object order.

#include <map>
#include <vector>

#include "core/pipeline.h"

namespace semitri::core {

struct BatchOptions {
  // 0 = hardware concurrency.
  size_t num_threads = 0;
};

struct ObjectResults {
  ObjectId object_id = 0;
  std::vector<PipelineResult> results;
};

class BatchProcessor {
 public:
  // `pipeline` must outlive the processor. A store/profiler sink on the
  // pipeline is safe (both serialize internally) but makes write-through
  // CSV row order scheduling-dependent; prefer StoreResults for
  // deterministic persistence.
  explicit BatchProcessor(const SemiTriPipeline* pipeline,
                          BatchOptions options = {})
      : pipeline_(pipeline), options_(options) {}

  // Processes every object's stream in parallel. Results are returned
  // ordered by object id regardless of scheduling; trajectory ids are
  // assigned deterministically (per-object blocks of `ids_per_object`).
  common::Result<std::vector<ObjectResults>> Process(
      const std::map<ObjectId, std::vector<GpsPoint>>& streams,
      TrajectoryId ids_per_object = 1000) const;

  // Serially persists batch results into a store.
  static common::Status StoreResults(
      const std::vector<ObjectResults>& all,
      store::SemanticTrajectoryStore* store);

 private:
  const SemiTriPipeline* pipeline_;
  BatchOptions options_;
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_BATCH_H_
