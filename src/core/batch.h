#ifndef SEMITRI_CORE_BATCH_H_
#define SEMITRI_CORE_BATCH_H_

// Multi-threaded batch annotation. The paper's efficiency requirement
// ("the available datasets are large and quickly growing, and
// annotation data is even required in real-time", §1.2) maps naturally
// onto per-object parallelism: objects are independent, the semantic
// sources are immutable during annotation, and SemiTriPipeline's
// processing methods are const and thread-safe.
//
// The store and the latency profiler serialize internally (see their
// SEMITRI_GUARDED_BY annotations), so a pipeline carrying those sinks
// is safe to run from many workers. For deterministic write-through CSV
// row order, though, prefer a sink-less pipeline plus StoreResults
// below, which persists the merged results serially in object order.

#include <map>
#include <vector>

#include "common/clock.h"
#include "core/pipeline.h"

namespace semitri::core {

struct BatchOptions {
  // 0 = hardware concurrency.
  size_t num_threads = 0;
  // Attempts per object before it is reported failed (1 = no retry).
  // Retries re-run the whole object stream: every Put is a keyed
  // overwrite, so a half-stored first attempt is simply overwritten.
  size_t max_attempts_per_object = 1;
  // Exponential backoff between attempts, capped; 0 retries
  // immediately.
  double initial_backoff_seconds = 0.0;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 1.0;
};

struct ObjectResults {
  ObjectId object_id = 0;
  std::vector<PipelineResult> results;
};

// One object whose stream could not be processed (after retries).
struct ObjectFailure {
  ObjectId object_id = 0;
  common::Status status;
  size_t attempts = 1;
};

// Partial-failure outcome of a batch: processing continues past failed
// objects, so one bad stream no longer discards every other object's
// work.
struct BatchReport {
  // Both ordered by object id, deterministically.
  std::vector<ObjectResults> succeeded;
  std::vector<ObjectFailure> failed;
  // Extra attempts spent across all objects (0 when nothing retried).
  size_t total_retries = 0;

  bool all_succeeded() const { return failed.empty(); }
};

class BatchProcessor {
 public:
  // `pipeline` must outlive the processor. A store/profiler sink on the
  // pipeline is safe (both serialize internally) but makes write-through
  // CSV row order scheduling-dependent; prefer StoreResults for
  // deterministic persistence. `clock` drives the retry backoff sleeps
  // (null = real clock; tests inject common::FakeClock so backoff
  // schedules run in zero wall time).
  explicit BatchProcessor(const SemiTriPipeline* pipeline,
                          BatchOptions options = {},
                          const common::Clock* clock = nullptr)
      : pipeline_(pipeline),
        options_(options),
        clock_(clock != nullptr ? clock : common::Clock::Real()) {}

  // Processes every object's stream in parallel. Results are returned
  // ordered by object id regardless of scheduling; trajectory ids are
  // assigned deterministically (per-object blocks of `ids_per_object`).
  // Fail-fast: any object failure (after the configured retries) fails
  // the whole batch with the first failed object's status.
  [[nodiscard]] common::Result<std::vector<ObjectResults>> Process(
      const std::map<ObjectId, std::vector<GpsPoint>>& streams,
      TrajectoryId ids_per_object = 1000) const;

  // Like Process, but degrades instead of aborting: failed objects
  // (after per-object retries with capped exponential backoff) are
  // reported in BatchReport::failed while every other object's results
  // are still returned.
  [[nodiscard]] common::Result<BatchReport> ProcessAll(
      const std::map<ObjectId, std::vector<GpsPoint>>& streams,
      TrajectoryId ids_per_object = 1000) const;

  // Serially persists batch results into a store.
  [[nodiscard]] static common::Status StoreResults(
      const std::vector<ObjectResults>& all,
      store::SemanticTrajectoryStore* store);

 private:
  const SemiTriPipeline* pipeline_;
  BatchOptions options_;
  const common::Clock* clock_;
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_BATCH_H_
