#include "core/batch.h"

#include <atomic>
#include <mutex>
#include <thread>

#include "common/thread_annotations.h"

namespace semitri::core {

namespace {

// First-error-wins sink shared by the worker threads. The annotations
// let Clang's -Wthread-safety prove `first_` is only touched under the
// mutex.
class ErrorCollector {
 public:
  void Record(const common::Status& status) SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    if (first_.ok()) first_ = status;
  }

  common::Status first() const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return first_;
  }

 private:
  mutable std::mutex mutex_;
  common::Status first_ SEMITRI_GUARDED_BY(mutex_);
};

}  // namespace

common::Result<std::vector<ObjectResults>> BatchProcessor::Process(
    const std::map<ObjectId, std::vector<GpsPoint>>& streams,
    TrajectoryId ids_per_object) const {
  // Snapshot the work items so workers can index them.
  struct WorkItem {
    ObjectId object_id;
    const std::vector<GpsPoint>* stream;
    TrajectoryId first_id;
  };
  std::vector<WorkItem> work;
  work.reserve(streams.size());
  TrajectoryId block = 0;
  for (const auto& [object_id, stream] : streams) {
    work.push_back({object_id, &stream, block * ids_per_object});
    ++block;
  }

  size_t num_threads = options_.num_threads > 0
                           ? options_.num_threads
                           : std::max(1u, std::thread::hardware_concurrency());
  num_threads = std::min(num_threads, std::max<size_t>(1, work.size()));

  // Workers claim disjoint indices via `next` and write disjoint slots
  // of `out`; the only shared mutable state is the error collector.
  std::vector<ObjectResults> out(work.size());
  std::atomic<size_t> next{0};
  ErrorCollector errors;

  auto worker = [&]() {
    while (true) {
      size_t index = next.fetch_add(1);
      if (index >= work.size()) return;
      const WorkItem& item = work[index];
      common::Result<std::vector<PipelineResult>> results =
          pipeline_->ProcessStream(item.object_id, *item.stream,
                                   item.first_id);
      if (!results.ok()) {
        errors.Record(results.status());
        return;
      }
      out[index].object_id = item.object_id;
      out[index].results = std::move(*results);
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  common::Status first_error = errors.first();
  if (!first_error.ok()) return first_error;
  // `out` is indexed by the sorted std::map iteration order, so results
  // are deterministically ordered by ObjectId regardless of which worker
  // processed which stream.
  return out;
}

common::Status BatchProcessor::StoreResults(
    const std::vector<ObjectResults>& all,
    store::SemanticTrajectoryStore* store) {
  for (const ObjectResults& object : all) {
    for (const PipelineResult& result : object.results) {
      SEMITRI_RETURN_IF_ERROR(store->PutRawTrajectory(result.cleaned));
      SEMITRI_RETURN_IF_ERROR(
          store->PutEpisodes(result.cleaned.id, result.episodes));
      if (result.region_layer.has_value()) {
        SEMITRI_RETURN_IF_ERROR(
            store->PutInterpretation(*result.region_layer));
      }
      if (result.line_layer.has_value()) {
        SEMITRI_RETURN_IF_ERROR(store->PutInterpretation(*result.line_layer));
      }
      if (result.point_layer.has_value()) {
        SEMITRI_RETURN_IF_ERROR(
            store->PutInterpretation(*result.point_layer));
      }
    }
  }
  return common::Status::OK();
}

}  // namespace semitri::core
