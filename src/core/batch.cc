#include "core/batch.h"

#include <algorithm>
#include <atomic>
#include <thread>

namespace semitri::core {

common::Result<std::vector<ObjectResults>> BatchProcessor::Process(
    const std::map<ObjectId, std::vector<GpsPoint>>& streams,
    TrajectoryId ids_per_object) const {
  common::Result<BatchReport> report = ProcessAll(streams, ids_per_object);
  SEMITRI_RETURN_IF_ERROR(report.status());
  if (!report->all_succeeded()) {
    // Fail-fast contract: surface the first failed object (first by
    // object id — deterministic, unlike first-by-scheduling).
    return report->failed.front().status;
  }
  return std::move(report->succeeded);
}

common::Result<BatchReport> BatchProcessor::ProcessAll(
    const std::map<ObjectId, std::vector<GpsPoint>>& streams,
    TrajectoryId ids_per_object) const {
  // Snapshot the work items so workers can index them.
  struct WorkItem {
    ObjectId object_id;
    const std::vector<GpsPoint>* stream;
    TrajectoryId first_id;
  };
  std::vector<WorkItem> work;
  work.reserve(streams.size());
  TrajectoryId block = 0;
  for (const auto& [object_id, stream] : streams) {
    work.push_back({object_id, &stream, block * ids_per_object});
    ++block;
  }

  size_t num_threads = options_.num_threads > 0
                           ? options_.num_threads
                           : std::max(1u, std::thread::hardware_concurrency());
  num_threads = std::min(num_threads, std::max<size_t>(1, work.size()));

  // Workers claim disjoint indices via `next` and write disjoint slots
  // of `out`/`status`/`attempts`; there is no shared mutable state
  // beyond the claim counter. A failed object does not stop a worker —
  // the remaining items still get processed (partial failure, not
  // all-or-nothing).
  const size_t max_attempts = std::max<size_t>(options_.max_attempts_per_object, 1);
  std::vector<ObjectResults> out(work.size());
  std::vector<common::Status> status(work.size());
  std::vector<size_t> attempts(work.size(), 0);
  std::atomic<size_t> next{0};

  auto worker = [&]() {
    while (true) {
      size_t index = next.fetch_add(1);
      if (index >= work.size()) return;
      const WorkItem& item = work[index];
      double backoff = options_.initial_backoff_seconds;
      for (size_t attempt = 1; attempt <= max_attempts; ++attempt) {
        attempts[index] = attempt;
        common::Result<std::vector<PipelineResult>> results =
            pipeline_->ProcessStream(item.object_id, *item.stream,
                                     item.first_id);
        if (results.ok()) {
          status[index] = common::Status::OK();
          out[index].object_id = item.object_id;
          out[index].results = std::move(*results);
          break;
        }
        status[index] = results.status();
        if (attempt == max_attempts) break;
        if (backoff > 0.0) {
          clock_->SleepFor(std::min(backoff, options_.max_backoff_seconds));
          backoff *= options_.backoff_multiplier;
        }
      }
    }
  };
  std::vector<std::thread> threads;
  threads.reserve(num_threads);
  for (size_t i = 0; i < num_threads; ++i) threads.emplace_back(worker);
  for (std::thread& t : threads) t.join();

  // Assemble in work order (= sorted std::map order), so both lists are
  // deterministically ordered by ObjectId regardless of which worker
  // processed which stream.
  BatchReport report;
  for (size_t i = 0; i < work.size(); ++i) {
    report.total_retries += attempts[i] - 1;
    if (status[i].ok()) {
      report.succeeded.push_back(std::move(out[i]));
    } else {
      report.failed.push_back({work[i].object_id, status[i], attempts[i]});
    }
  }
  return report;
}

common::Status BatchProcessor::StoreResults(
    const std::vector<ObjectResults>& all,
    store::SemanticTrajectoryStore* store) {
  for (const ObjectResults& object : all) {
    for (const PipelineResult& result : object.results) {
      SEMITRI_RETURN_IF_ERROR(store->PutRawTrajectory(result.cleaned));
      SEMITRI_RETURN_IF_ERROR(
          store->PutEpisodes(result.cleaned.id, result.episodes));
      if (result.region_layer.has_value()) {
        SEMITRI_RETURN_IF_ERROR(
            store->PutInterpretation(*result.region_layer));
      }
      if (result.line_layer.has_value()) {
        SEMITRI_RETURN_IF_ERROR(store->PutInterpretation(*result.line_layer));
      }
      if (result.point_layer.has_value()) {
        SEMITRI_RETURN_IF_ERROR(
            store->PutInterpretation(*result.point_layer));
      }
    }
  }
  return common::Status::OK();
}

}  // namespace semitri::core
