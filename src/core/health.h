#ifndef SEMITRI_CORE_HEALTH_H_
#define SEMITRI_CORE_HEALTH_H_

// Operator-facing view of the resource-governance layer: per-stage
// circuit-breaker state and latency digests, plus (when produced by
// stream::SessionManager::Health) the admission budgets and shed/reject
// counters. One snapshot answers "is the system degrading, and where" —
// the signal an overload-aware load balancer or an on-call human needs.

#include <cstddef>
#include <string>
#include <vector>

#include "analytics/latency_profiler.h"
#include "core/circuit_breaker.h"

namespace semitri::core {

// Utilization of one bounded resource; limit 0 means unbounded.
struct BudgetGauge {
  size_t used = 0;
  size_t limit = 0;

  // In [0, 1]; 0 when unbounded.
  double utilization() const {
    return limit == 0 ? 0.0
                      : static_cast<double>(used) / static_cast<double>(limit);
  }
};

struct StageHealth {
  std::string stage;
  bool breaker_present = false;
  CircuitBreaker::Stats breaker;  // zeros when no breaker is configured
  // p50/p99 etc. from the pipeline's LatencyProfiler (zeros without one).
  analytics::LatencyProfiler::StageSummary latency;
};

// One shard's contribution to a cluster-level snapshot (filled by
// shard::ShardRuntime::Health / shard::ShardCluster::Health).
struct ShardHealth {
  size_t shard_id = 0;
  // False after a kill and before the replacement runtime recovers.
  bool alive = true;
  size_t live_sessions = 0;
  size_t buffered_bytes = 0;
  // Sealed WAL segments (and their bytes) not yet shipped to the
  // standby directory — the replication lag a failover would lose.
  size_t wal_ship_lag_segments = 0;
  size_t wal_ship_lag_bytes = 0;
  // Failure-detector view (filled by shard::ShardCluster::Health when
  // a detector is running): the shard has missed enough consecutive
  // probes to be suspect but not yet enough to be declared dead.
  bool suspect = false;
  size_t consecutive_probe_failures = 0;
  // How many times this shard slot has been promoted onto its standby
  // (0 = still serving from its original durable directory).
  size_t failover_epoch = 0;
  // Circuit breakers currently not closed on this shard's pipeline.
  size_t breakers_open = 0;
  // The shard's own snapshot reported degraded().
  bool degraded = false;
  // The shard's store refused writes after a disk fault (read-only
  // degraded mode) — `storage_fault` carries the triggering failure.
  bool storage_degraded = false;
  std::string storage_fault;
  // Integrity-scrubber counters (store/integrity_scrubber.h); zeros
  // when the shard runs without a scrubber.
  size_t scrub_files_scanned = 0;
  size_t scrub_corrupt_detected = 0;
  size_t scrub_repaired = 0;
  size_t scrub_quarantined = 0;
  size_t scrub_cycles_completed = 0;
};

struct HealthSnapshot {
  // One entry per stage, in execution order.
  std::vector<StageHealth> stages;

  // Per-shard rollup (cluster-level snapshots only; empty for a single
  // pipeline or manager).
  std::vector<ShardHealth> shards;

  // Admission budgets (filled by stream::SessionManager::Health; zeros
  // for a bare pipeline snapshot).
  BudgetGauge sessions;
  BudgetGauge buffered_fixes;
  BudgetGauge buffered_bytes;

  // Overload decisions since construction.
  size_t sessions_shed = 0;
  size_t admission_rejected_sessions = 0;
  size_t rate_limited_fixes = 0;
  size_t overload_rejected_fixes = 0;
  size_t admission_deferred = 0;
  size_t admission_timeouts = 0;
  size_t evictions_with_data_loss = 0;

  // Watchdog force-cancels (when a watchdog is attached).
  size_t watchdog_force_cancels = 0;

  // Self-healing counters (cluster-level snapshots only): standby
  // promotions and the retrying router's recovery ledger.
  size_t failovers_completed = 0;
  size_t failovers_aborted = 0;
  size_t feeds_retried = 0;
  size_t feeds_recovered = 0;

  // Storage-fault view (filled by shard::ShardRuntime::Health): the
  // backing store entered read-only degraded mode after a disk fault,
  // and `storage_fault` names the failure that tripped it.
  bool storage_degraded = false;
  std::string storage_fault;
  // Aggregate integrity-scrubber counters across the snapshot's scope
  // (one shard for a runtime snapshot, all live shards for a cluster).
  size_t scrub_files_scanned = 0;
  size_t scrub_corrupt_detected = 0;
  size_t scrub_repaired = 0;
  size_t scrub_quarantined = 0;
  size_t scrub_cycles_completed = 0;

  // True when any breaker is open/half-open, any budget is >= 90%
  // utilized, storage is in read-only degraded mode, a scrub
  // quarantined a file it could not repair, or any shard in the
  // rollup is dead, suspect, or degraded — the cheap "should I stop
  // sending traffic here" bit.
  bool degraded() const;

  // Multi-line human-readable rendering.
  std::string ToString() const;
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_HEALTH_H_
