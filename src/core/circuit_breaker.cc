#include "core/circuit_breaker.h"

#include <algorithm>

namespace semitri::core {

const char* BreakerStateName(BreakerState state) {
  switch (state) {
    case BreakerState::kClosed:
      return "closed";
    case BreakerState::kOpen:
      return "open";
    case BreakerState::kHalfOpen:
      return "half-open";
  }
  return "unknown";
}

CircuitBreaker::CircuitBreaker(CircuitBreakerConfig config,
                               const common::Clock* clock)
    : config_(config),
      clock_(clock != nullptr ? clock : common::Clock::Real()),
      backoff_seconds_(config.open_backoff_seconds),
      jitter_(config.jitter_seed) {}

void CircuitBreaker::OpenLocked() {
  state_ = BreakerState::kOpen;
  ++times_opened_;
  double jitter =
      config_.jitter_fraction > 0.0
          ? 1.0 + jitter_.Uniform(0.0, config_.jitter_fraction)
          : 1.0;
  open_until_nanos_ =
      clock_->NowNanos() +
      static_cast<int64_t>(backoff_seconds_ * jitter * 1e9);
  backoff_seconds_ = std::min(backoff_seconds_ * config_.backoff_multiplier,
                              config_.max_backoff_seconds);
  half_open_streak_ = 0;
}

bool CircuitBreaker::Allow() {
  std::lock_guard<std::mutex> lock(mutex_);
  switch (state_) {
    case BreakerState::kClosed:
    case BreakerState::kHalfOpen:
      return true;
    case BreakerState::kOpen:
      if (clock_->NowNanos() >= open_until_nanos_) {
        state_ = BreakerState::kHalfOpen;
        half_open_streak_ = 0;
        return true;
      }
      ++rejected_;
      return false;
  }
  return true;
}

void CircuitBreaker::RecordSuccess(double latency_seconds) {
  std::lock_guard<std::mutex> lock(mutex_);
  bool too_slow = config_.latency_threshold_seconds > 0.0 &&
                  latency_seconds > config_.latency_threshold_seconds;
  if (too_slow) {
    ++failures_;
    if (state_ == BreakerState::kHalfOpen) {
      OpenLocked();
    } else if (state_ == BreakerState::kClosed &&
               ++consecutive_failures_ >= config_.failure_threshold) {
      consecutive_failures_ = 0;
      OpenLocked();
    }
    return;
  }
  ++successes_;
  consecutive_failures_ = 0;
  if (state_ == BreakerState::kHalfOpen &&
      ++half_open_streak_ >= std::max<size_t>(config_.half_open_successes, 1)) {
    state_ = BreakerState::kClosed;
    backoff_seconds_ = config_.open_backoff_seconds;  // recovered: reset
  }
}

void CircuitBreaker::RecordFailure() {
  std::lock_guard<std::mutex> lock(mutex_);
  ++failures_;
  if (state_ == BreakerState::kHalfOpen) {
    // The probe failed: re-open with the (already doubled) backoff.
    OpenLocked();
    return;
  }
  if (state_ == BreakerState::kClosed &&
      ++consecutive_failures_ >= config_.failure_threshold) {
    consecutive_failures_ = 0;
    OpenLocked();
  }
}

BreakerState CircuitBreaker::state() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return state_;
}

CircuitBreaker::Stats CircuitBreaker::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out;
  out.state = state_;
  out.consecutive_failures = consecutive_failures_;
  out.times_opened = times_opened_;
  out.rejected = rejected_;
  out.successes = successes_;
  out.failures = failures_;
  out.current_backoff_seconds = backoff_seconds_;
  return out;
}

}  // namespace semitri::core
