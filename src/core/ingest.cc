#include "core/ingest.h"

#include <cmath>

namespace semitri::core {

namespace {

bool IsValidFix(const LatLonFix& fix) {
  return std::isfinite(fix.position.lat) && std::isfinite(fix.position.lon) &&
         std::isfinite(fix.time) && fix.position.lat >= -90.0 &&
         fix.position.lat <= 90.0 && fix.position.lon >= -180.0 &&
         fix.position.lon <= 180.0;
}

}  // namespace

common::Result<GpsIngestor> GpsIngestor::AroundCentroid(
    const std::vector<LatLonFix>& fixes) {
  double lat_sum = 0.0, lon_sum = 0.0;
  size_t count = 0;
  for (const LatLonFix& fix : fixes) {
    if (!IsValidFix(fix)) continue;
    lat_sum += fix.position.lat;
    lon_sum += fix.position.lon;
    ++count;
  }
  if (count == 0) {
    return common::Status::InvalidArgument(
        "no valid fixes to derive a reference from");
  }
  return GpsIngestor(geo::LatLon{lat_sum / static_cast<double>(count),
                                 lon_sum / static_cast<double>(count)});
}

common::Result<GpsIngestor> GpsIngestor::AroundFix(const LatLonFix& fix) {
  if (!IsValidFix(fix)) {
    return common::Status::InvalidArgument(
        "cannot reference a session at an invalid fix");
  }
  return GpsIngestor(fix.position);
}

std::vector<GpsPoint> GpsIngestor::ToLocal(
    const std::vector<LatLonFix>& fixes) const {
  std::vector<GpsPoint> out;
  out.reserve(fixes.size());
  for (const LatLonFix& fix : fixes) {
    std::optional<GpsPoint> p = ToLocalFix(fix);
    if (p.has_value()) out.push_back(*p);
  }
  return out;
}

std::optional<GpsPoint> GpsIngestor::ToLocalFix(const LatLonFix& fix) const {
  if (!IsValidFix(fix)) return std::nullopt;
  return GpsPoint{projection_.ToLocal(fix.position), fix.time};
}

std::vector<LatLonFix> GpsIngestor::ToLatLon(
    const std::vector<GpsPoint>& points) const {
  std::vector<LatLonFix> out;
  out.reserve(points.size());
  for (const GpsPoint& p : points) {
    out.push_back({projection_.ToLatLon(p.position), p.time});
  }
  return out;
}

}  // namespace semitri::core
