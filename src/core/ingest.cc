#include "core/ingest.h"

#include <cmath>

namespace semitri::core {

namespace {

bool IsValidFix(const LatLonFix& fix) {
  return std::isfinite(fix.position.lat) && std::isfinite(fix.position.lon) &&
         std::isfinite(fix.time) && fix.position.lat >= -90.0 &&
         fix.position.lat <= 90.0 && fix.position.lon >= -180.0 &&
         fix.position.lon <= 180.0;
}

}  // namespace

common::Result<GpsIngestor> GpsIngestor::AroundCentroid(
    const std::vector<LatLonFix>& fixes) {
  double lat_sum = 0.0, lon_sum = 0.0;
  size_t count = 0;
  for (const LatLonFix& fix : fixes) {
    if (!IsValidFix(fix)) continue;
    lat_sum += fix.position.lat;
    lon_sum += fix.position.lon;
    ++count;
  }
  if (count == 0) {
    return common::Status::InvalidArgument(
        "no valid fixes to derive a reference from");
  }
  return GpsIngestor(geo::LatLon{lat_sum / static_cast<double>(count),
                                 lon_sum / static_cast<double>(count)});
}

std::vector<GpsPoint> GpsIngestor::ToLocal(
    const std::vector<LatLonFix>& fixes) const {
  std::vector<GpsPoint> out;
  out.reserve(fixes.size());
  for (const LatLonFix& fix : fixes) {
    if (!IsValidFix(fix)) continue;
    out.push_back({projection_.ToLocal(fix.position), fix.time});
  }
  return out;
}

std::vector<LatLonFix> GpsIngestor::ToLatLon(
    const std::vector<GpsPoint>& points) const {
  std::vector<LatLonFix> out;
  out.reserve(points.size());
  for (const GpsPoint& p : points) {
    out.push_back({projection_.ToLatLon(p.position), p.time});
  }
  return out;
}

}  // namespace semitri::core
