#include "core/stages.h"

#include "core/annotation_scratch.h"

namespace semitri::core {

common::Status ComputeEpisodeStage::Run(AnnotationContext& context) const {
  if (context.raw == nullptr) {
    return common::Status::InvalidArgument(
        "compute_episode needs a raw trajectory on the context");
  }
  context.result.cleaned = preprocessor_->Clean(*context.raw);
  context.result.episodes = segmenter_->Segment(context.result.cleaned);
  return common::Status::OK();
}

common::Status StoreEpisodeStage::Run(AnnotationContext& context) const {
  if (context.store == nullptr) return common::Status::OK();
  SEMITRI_RETURN_IF_ERROR(
      context.store->PutRawTrajectory(context.result.cleaned));
  return context.store->PutEpisodes(context.result.cleaned.id,
                                    context.result.episodes);
}

common::Status RegionAnnotationStage::Run(AnnotationContext& context) const {
  common::Result<StructuredSemanticTrajectory> layer = annotator_->Annotate(
      context.result.cleaned, context.result.episodes, context.exec);
  if (!layer.ok()) return layer.status();
  context.result.region_layer = std::move(*layer);
  return common::Status::OK();
}

common::Status LineAnnotationStage::Run(AnnotationContext& context) const {
  common::Result<StructuredSemanticTrajectory> layer = annotator_->Annotate(
      context.PointsBatch(), context.result.episodes, context.exec,
      context.scratch != nullptr ? &context.scratch->line : nullptr);
  if (!layer.ok()) return layer.status();
  context.result.line_layer = std::move(*layer);
  return common::Status::OK();
}

common::Status StoreMatchStage::Run(AnnotationContext& context) const {
  if (context.store == nullptr || !context.result.line_layer.has_value()) {
    return common::Status::OK();
  }
  return context.store->PutInterpretation(*context.result.line_layer);
}

common::Status PointAnnotationStage::Run(AnnotationContext& context) const {
  common::Result<StructuredSemanticTrajectory> layer = annotator_->Annotate(
      context.result.cleaned, context.result.episodes, context.exec,
      context.scratch != nullptr ? &context.scratch->point : nullptr);
  if (!layer.ok()) return layer.status();
  context.result.point_layer = std::move(*layer);
  return common::Status::OK();
}

common::Status StoreInterpretationStage::Run(
    AnnotationContext& context) const {
  if (context.store == nullptr) return common::Status::OK();
  if (context.result.region_layer.has_value()) {
    SEMITRI_RETURN_IF_ERROR(
        context.store->PutInterpretation(*context.result.region_layer));
  }
  if (context.result.point_layer.has_value()) {
    SEMITRI_RETURN_IF_ERROR(
        context.store->PutInterpretation(*context.result.point_layer));
  }
  return common::Status::OK();
}

}  // namespace semitri::core
