#ifndef SEMITRI_CORE_STAGES_H_
#define SEMITRI_CORE_STAGES_H_

// The default annotation stages of the SeMiTri pipeline — one node per
// box of paper Fig. 2, named after the Fig. 17 latency stages where the
// paper profiles them:
//
//   compute_episode       clean + stop/move segmentation
//   store_episode         raw trace + episodes into the store
//   landuse_join          Semantic Region Annotation Layer
//   map_match             Semantic Line Annotation Layer
//   store_match_result    line interpretation into the store
//   point_annotation      Semantic Point Annotation Layer
//   store_interpretation  region/point interpretations into the store
//                         (unprofiled write-back tail)
//
// Every stage holds only const pointers to components owned by the
// pipeline (or the caller) and is safe to run concurrently with
// distinct contexts.

#include "core/stage.h"
#include "poi/point_annotator.h"
#include "region/region_annotator.h"
#include "road/line_annotator.h"
#include "store/semantic_trajectory_store.h"
#include "traj/preprocess.h"
#include "traj/segmentation.h"

namespace semitri::core {

// Fig. 17 stage names.
inline constexpr char kStageComputeEpisode[] = "compute_episode";
inline constexpr char kStageStoreEpisode[] = "store_episode";
inline constexpr char kStageMapMatch[] = "map_match";
inline constexpr char kStageStoreMatch[] = "store_match_result";
inline constexpr char kStageLanduseJoin[] = "landuse_join";
inline constexpr char kStagePointAnnotation[] = "point_annotation";
// Write-back tail (not a Fig. 17 stage; unprofiled).
inline constexpr char kStageStoreInterpretation[] = "store_interpretation";

// Trajectory Computation Layer: cleans context.raw and segments it into
// stop/move episodes.
class ComputeEpisodeStage final : public AnnotationStage {
 public:
  ComputeEpisodeStage(const traj::Preprocessor* preprocessor,
                      const traj::StopMoveSegmenter* segmenter)
      : AnnotationStage(kStageComputeEpisode, {}),
        preprocessor_(preprocessor),
        segmenter_(segmenter) {}

  [[nodiscard]] common::Status Run(AnnotationContext& context) const override;

 private:
  const traj::Preprocessor* preprocessor_;
  const traj::StopMoveSegmenter* segmenter_;
};

// Persists the cleaned trace and its episodes (no-op without a store).
class StoreEpisodeStage final : public AnnotationStage {
 public:
  StoreEpisodeStage() : AnnotationStage(kStageStoreEpisode,
                                        {kStageComputeEpisode}) {}

  [[nodiscard]] common::Status Run(AnnotationContext& context) const override;
};

// Semantic Region Annotation Layer (landuse join, Algorithm 1).
class RegionAnnotationStage final : public AnnotationStage {
 public:
  explicit RegionAnnotationStage(const region::RegionAnnotator* annotator)
      : AnnotationStage(kStageLanduseJoin, {kStageComputeEpisode}),
        annotator_(annotator) {}

  [[nodiscard]] common::Status Run(AnnotationContext& context) const override;

 private:
  const region::RegionAnnotator* annotator_;
};

// Semantic Line Annotation Layer (global map matching, Algorithm 2).
class LineAnnotationStage final : public AnnotationStage {
 public:
  explicit LineAnnotationStage(const road::LineAnnotator* annotator)
      : AnnotationStage(kStageMapMatch, {kStageComputeEpisode}),
        annotator_(annotator) {}

  [[nodiscard]] common::Status Run(AnnotationContext& context) const override;

 private:
  const road::LineAnnotator* annotator_;
};

// Persists the line interpretation (no-op without a store or line layer).
class StoreMatchStage final : public AnnotationStage {
 public:
  StoreMatchStage() : AnnotationStage(kStageStoreMatch, {kStageMapMatch}) {}

  [[nodiscard]] common::Status Run(AnnotationContext& context) const override;
};

// Semantic Point Annotation Layer (HMM stop annotation, Algorithm 3).
class PointAnnotationStage final : public AnnotationStage {
 public:
  explicit PointAnnotationStage(const poi::PointAnnotator* annotator)
      : AnnotationStage(kStagePointAnnotation, {kStageComputeEpisode}),
        annotator_(annotator) {}

  [[nodiscard]] common::Status Run(AnnotationContext& context) const override;

 private:
  const poi::PointAnnotator* annotator_;
};

// Persists the region and point interpretations produced by earlier
// stages (no-op without a store). Dependencies are passed in because the
// set of registered annotation stages varies with the available sources.
class StoreInterpretationStage final : public AnnotationStage {
 public:
  explicit StoreInterpretationStage(std::vector<std::string> dependencies)
      : AnnotationStage(kStageStoreInterpretation, std::move(dependencies),
                        /*profiled=*/false) {}

  [[nodiscard]] common::Status Run(AnnotationContext& context) const override;
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_STAGES_H_
