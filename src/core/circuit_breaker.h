#ifndef SEMITRI_CORE_CIRCUIT_BREAKER_H_
#define SEMITRI_CORE_CIRCUIT_BREAKER_H_

// Per-stage circuit breaker: stops a persistently failing (or
// persistently slow) stage from burning its retry budget on every
// trajectory. Wraps the PR 4 FailurePolicy rather than replacing it —
// while the breaker is open the stage graph short-circuits the stage
// with Status::Unavailable *before* any attempt, and the stage's
// FailurePolicy then decides whether the run degrades (skip-and-record)
// or fails, exactly as for a real stage error.
//
// State machine (the classical closed -> open -> half-open loop):
//
//         failure_threshold consecutive failures
//   CLOSED ────────────────────────────────────────► OPEN
//     ▲                                                │ backoff elapses
//     │  half_open_successes consecutive successes     ▼
//     └──────────────────────────────────────────── HALF-OPEN
//                                                      │ any failure
//                                                      └──────► OPEN
//                                                       (backoff doubles,
//                                                        capped + jitter)
//
// A success with latency above latency_threshold_seconds counts as a
// failure, so a wedged-but-not-erroring dependency (e.g. a POI
// repository stuck in timeouts) also trips the breaker. The open-state
// backoff is exponential, capped, with deterministic seeded jitter drawn
// from common::Rng so tests reproduce transition times bit-for-bit under
// a FakeClock.
//
// Thread-safe: one breaker instance is shared by every thread running
// the (immutable) stage graph, so all state is mutex-guarded.

#include <cstdint>
#include <mutex>

#include "common/clock.h"
#include "common/rng.h"
#include "common/thread_annotations.h"

namespace semitri::core {

enum class BreakerState { kClosed = 0, kOpen, kHalfOpen };

const char* BreakerStateName(BreakerState state);

struct CircuitBreakerConfig {
  // Consecutive failures (in closed state) that open the breaker.
  size_t failure_threshold = 5;
  // Successes slower than this count as failures (0 disables latency
  // tripping).
  double latency_threshold_seconds = 0.0;
  // Open-state backoff before the first half-open probe; doubles on
  // every re-open, capped.
  double open_backoff_seconds = 1.0;
  double backoff_multiplier = 2.0;
  double max_backoff_seconds = 30.0;
  // Deterministic jitter: each open period is stretched by a factor in
  // [1, 1 + jitter_fraction), drawn from a stream seeded with
  // jitter_seed (common::Rng), so coordinated breakers de-synchronize
  // without losing reproducibility.
  double jitter_fraction = 0.1;
  uint64_t jitter_seed = 42;
  // Consecutive half-open successes required to close again.
  size_t half_open_successes = 1;
};

class CircuitBreaker {
 public:
  explicit CircuitBreaker(CircuitBreakerConfig config = {},
                          const common::Clock* clock = nullptr);

  // Whether an execution may proceed now. Transitions open -> half-open
  // when the backoff has elapsed; returns false (and counts a rejection)
  // while the breaker is open.
  bool Allow() SEMITRI_EXCLUDES(mutex_);

  // Outcome reporting for executions that were allowed.
  void RecordSuccess(double latency_seconds) SEMITRI_EXCLUDES(mutex_);
  void RecordFailure() SEMITRI_EXCLUDES(mutex_);

  BreakerState state() const SEMITRI_EXCLUDES(mutex_);

  struct Stats {
    BreakerState state = BreakerState::kClosed;
    size_t consecutive_failures = 0;
    size_t times_opened = 0;
    // Executions short-circuited while open.
    size_t rejected = 0;
    size_t successes = 0;
    size_t failures = 0;
    // Backoff the *next* open period would start from.
    double current_backoff_seconds = 0.0;
  };
  Stats stats() const SEMITRI_EXCLUDES(mutex_);

  const CircuitBreakerConfig& config() const { return config_; }

 private:
  void OpenLocked() SEMITRI_REQUIRES(mutex_);

  const CircuitBreakerConfig config_;
  const common::Clock* clock_;

  mutable std::mutex mutex_;
  BreakerState state_ SEMITRI_GUARDED_BY(mutex_) = BreakerState::kClosed;
  size_t consecutive_failures_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t half_open_streak_ SEMITRI_GUARDED_BY(mutex_) = 0;
  double backoff_seconds_ SEMITRI_GUARDED_BY(mutex_);
  int64_t open_until_nanos_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t times_opened_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t rejected_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t successes_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t failures_ SEMITRI_GUARDED_BY(mutex_) = 0;
  common::Rng jitter_ SEMITRI_GUARDED_BY(mutex_);
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_CIRCUIT_BREAKER_H_
