#ifndef SEMITRI_CORE_ANNOTATION_CONTEXT_H_
#define SEMITRI_CORE_ANNOTATION_CONTEXT_H_

// Shared state flowing through the annotation stage graph (paper
// Fig. 2): the raw input trajectory, the artifacts of the Trajectory
// Computation Layer (cleaned trace, stop/move episodes), one
// StructuredSemanticTrajectory per annotation layer, and the optional
// sinks (store, latency profiler).

#include <optional>
#include <vector>

#include "core/types.h"

namespace semitri::analytics {
class LatencyProfiler;
}  // namespace semitri::analytics

namespace semitri::store {
class SemanticTrajectoryStore;
}  // namespace semitri::store

namespace semitri::core {

// The three annotation layers of Fig. 2.
enum class Layer { kRegion, kLine, kPoint };

const char* LayerName(Layer layer);

// Everything the pipeline derives from one raw trajectory.
struct PipelineResult {
  RawTrajectory cleaned;
  std::vector<Episode> episodes;
  // Layers are present when the corresponding source was supplied.
  std::optional<StructuredSemanticTrajectory> region_layer;
  std::optional<StructuredSemanticTrajectory> line_layer;
  std::optional<StructuredSemanticTrajectory> point_layer;

  size_t NumStops() const;
  size_t NumMoves() const;

  std::optional<StructuredSemanticTrajectory>& layer(Layer which);
  const std::optional<StructuredSemanticTrajectory>& layer(Layer which) const;
};

// Mutable context handed to every AnnotationStage::Run. Stages read the
// artifacts earlier stages produced and write their own; the sinks are
// shared and internally synchronized.
struct AnnotationContext {
  // Input trajectory; null when a stage graph is (re-)run from cached
  // artifacts already present in `result` (see ReannotateLayer).
  const RawTrajectory* raw = nullptr;
  PipelineResult result;
  store::SemanticTrajectoryStore* store = nullptr;
  analytics::LatencyProfiler* profiler = nullptr;
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_ANNOTATION_CONTEXT_H_
