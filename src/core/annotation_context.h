#ifndef SEMITRI_CORE_ANNOTATION_CONTEXT_H_
#define SEMITRI_CORE_ANNOTATION_CONTEXT_H_

// Shared state flowing through the annotation stage graph (paper
// Fig. 2): the raw input trajectory, the artifacts of the Trajectory
// Computation Layer (cleaned trace, stop/move episodes), one
// StructuredSemanticTrajectory per annotation layer, and the optional
// sinks (store, latency profiler).

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/exec_control.h"
#include "common/status.h"
#include "core/types.h"
#include "traj/point_batch.h"

namespace semitri::analytics {
class LatencyProfiler;
}  // namespace semitri::analytics

namespace semitri::store {
class SemanticTrajectoryStore;
}  // namespace semitri::store

namespace semitri::core {

class Watchdog;
struct AnnotationScratch;

// The three annotation layers of Fig. 2.
enum class Layer { kRegion, kLine, kPoint };

const char* LayerName(Layer layer);

// How one stage execution ended. Recorded on PipelineResult only for
// the interesting cases — a stage that needed retries, was skipped by
// its failure policy, or failed the run — so the happy path stays
// allocation-free. (Defined here rather than in stage.h because stage.h
// includes this header.)
struct StageReport {
  // Final status of the last attempt (the error even when the stage was
  // skipped and the run continued).
  common::Status status;
  size_t attempts = 1;
  // True when the stage failed but its FailurePolicy let the graph
  // continue — the result is complete except for this stage's layer.
  bool skipped = false;
};

// Everything the pipeline derives from one raw trajectory.
struct PipelineResult {
  RawTrajectory cleaned;
  std::vector<Episode> episodes;
  // Layers are present when the corresponding source was supplied.
  std::optional<StructuredSemanticTrajectory> region_layer;
  std::optional<StructuredSemanticTrajectory> line_layer;
  std::optional<StructuredSemanticTrajectory> point_layer;
  // Per-stage failure accounting (see StageReport); empty on a clean
  // first-attempt run. Transient — not serialized into checkpoints.
  std::map<std::string, StageReport> stage_reports;

  size_t NumStops() const;
  size_t NumMoves() const;

  // True when any stage was skipped by its failure policy: the result
  // is usable but partial (e.g. region+line layers without the point
  // layer after a POI repository failure).
  bool degraded() const;

  std::optional<StructuredSemanticTrajectory>& layer(Layer which);
  const std::optional<StructuredSemanticTrajectory>& layer(Layer which) const;
};

// Mutable context handed to every AnnotationStage::Run. Stages read the
// artifacts earlier stages produced and write their own; the sinks are
// shared and internally synchronized.
struct AnnotationContext {
  // Input trajectory; null when a stage graph is (re-)run from cached
  // artifacts already present in `result` (see ReannotateLayer).
  const RawTrajectory* raw = nullptr;
  PipelineResult result;
  store::SemanticTrajectoryStore* store = nullptr;
  analytics::LatencyProfiler* profiler = nullptr;

  // --- resource governance (all optional; null = unbounded run) -------
  // Deadline + cancellation for this run. The stage graph checks it
  // between stages (an expired run deadline aborts the run with
  // DeadlineExceeded) and tightens each stage's view of it by
  // exec->stage_timeout_seconds; the expensive annotator loops consult
  // it every exec->check_interval iterations. During a stage execution
  // this pointer temporarily refers to the per-stage tightened control.
  const common::ExecControl* exec = nullptr;
  // Hard backstop: deadline-bounded stage executions are registered here
  // so a wedged stage is force-cancelled via the token (see watchdog.h).
  Watchdog* watchdog = nullptr;
  // Time source for retry backoff sleeps and stage timing (null = real
  // clock; tests inject common::FakeClock to run backoff in zero time).
  const common::Clock* clock = nullptr;

  // Per-run working memory (see core/annotation_scratch.h); null = the
  // run builds the point batch into `fallback_batch_` and the stages use
  // local scratch.
  AnnotationScratch* scratch = nullptr;

  // SoA view of result.cleaned, built lazily on first use (into the
  // scratch when present, so its capacity is reused across runs).
  const traj::PointBatch& PointsBatch();

 private:
  traj::PointBatch fallback_batch_;
  bool batch_built_ = false;
};

}  // namespace semitri::core

#endif  // SEMITRI_CORE_ANNOTATION_CONTEXT_H_
