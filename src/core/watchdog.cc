#include "core/watchdog.h"

#include <chrono>
#include <utility>

namespace semitri::core {

Watchdog::Watchdog(WatchdogConfig config, const common::Clock* clock)
    : config_(config),
      clock_(clock != nullptr ? clock : common::Clock::Real()) {}

Watchdog::~Watchdog() { Stop(); }

void Watchdog::Start() {
  std::lock_guard<std::mutex> lock(thread_mutex_);
  if (monitor_.joinable()) return;
  stopping_ = false;
  monitor_ = std::thread([this] { MonitorLoop(); });
}

void Watchdog::Stop() {
  {
    std::lock_guard<std::mutex> lock(thread_mutex_);
    if (!monitor_.joinable()) return;
    stopping_ = true;
  }
  stop_cv_.notify_all();
  monitor_.join();
}

void Watchdog::MonitorLoop() {
  std::unique_lock<std::mutex> lock(thread_mutex_);
  while (!stopping_) {
    // Real-time poll cadence regardless of the (possibly fake) clock the
    // budgets are measured on; deadlines themselves use clock_.
    stop_cv_.wait_for(
        lock, std::chrono::duration<double>(config_.poll_interval_seconds));
    if (stopping_) break;
    lock.unlock();
    ScanOnce();
    lock.lock();
  }
}

uint64_t Watchdog::Watch(const std::string& name, double budget_seconds,
                         common::CancellationToken token) {
  if (budget_seconds <= 0.0) return 0;
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t id = next_id_++;
  Execution& e = executions_[id];
  e.name = name;
  e.cancel_at_nanos =
      clock_->NowNanos() +
      static_cast<int64_t>(budget_seconds * config_.deadline_multiple * 1e9);
  e.token = std::move(token);
  ++total_watched_;
  return id;
}

void Watchdog::Unwatch(uint64_t id) {
  std::lock_guard<std::mutex> lock(mutex_);
  executions_.erase(id);
}

size_t Watchdog::ScanOnce() {
  std::lock_guard<std::mutex> lock(mutex_);
  int64_t now = clock_->NowNanos();
  size_t cancelled = 0;
  for (auto& [id, e] : executions_) {
    if (e.cancelled || now < e.cancel_at_nanos) continue;
    e.token.Cancel();
    e.cancelled = true;  // count each overdue execution once
    ++cancelled;
    ++force_cancels_;
  }
  return cancelled;
}

Watchdog::Stats Watchdog::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out;
  out.watched_now = executions_.size();
  out.total_watched = total_watched_;
  out.force_cancels = force_cancels_;
  return out;
}

}  // namespace semitri::core
