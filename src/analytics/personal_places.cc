#include "analytics/personal_places.h"

#include <algorithm>
#include <cmath>

#include "common/strings.h"

namespace semitri::analytics {

std::vector<StopVisit> CollectStopVisits(
    const std::vector<core::Episode>& episodes) {
  std::vector<StopVisit> out;
  for (const core::Episode& ep : episodes) {
    if (ep.kind != core::EpisodeKind::kStop) continue;
    out.push_back({ep.center, ep.time_in, ep.time_out});
  }
  return out;
}

double PersonalPlaceDetector::WindowOverlap(const StopVisit& visit,
                                            double window_begin_h,
                                            double window_end_h,
                                            bool weekdays_only) const {
  const double day = config_.day_seconds;
  double overlap = 0.0;
  // Walk the days the visit spans and intersect with the daily window.
  int64_t first_day = static_cast<int64_t>(std::floor(visit.time_in / day));
  int64_t last_day = static_cast<int64_t>(std::floor(visit.time_out / day));
  for (int64_t d = first_day; d <= last_day; ++d) {
    if (weekdays_only && (d % 7 == 5 || d % 7 == 6)) continue;
    auto intersect = [&](double w_begin, double w_end) {
      double lo = std::max(visit.time_in, d * day + w_begin * 3600.0);
      double hi = std::min(visit.time_out, d * day + w_end * 3600.0);
      if (hi > lo) overlap += hi - lo;
    };
    if (window_begin_h <= window_end_h) {
      intersect(window_begin_h, window_end_h);
    } else {
      // Wraps midnight: [begin, 24) plus [0, end).
      intersect(window_begin_h, 24.0);
      intersect(0.0, window_end_h);
    }
  }
  return overlap;
}

std::vector<PersonalPlace> PersonalPlaceDetector::Detect(
    const std::vector<StopVisit>& visits) const {
  // Greedy agglomerative clustering: assign each visit to the nearest
  // existing cluster within the merge radius (center = running mean),
  // else open a new cluster.
  struct Cluster {
    geo::Point center;
    std::vector<size_t> members;
  };
  std::vector<Cluster> clusters;
  for (size_t v = 0; v < visits.size(); ++v) {
    const geo::Point& p = visits[v].center;
    Cluster* best = nullptr;
    double best_dist = config_.merge_radius_meters;
    for (Cluster& c : clusters) {
      double d = c.center.DistanceTo(p);
      if (d <= best_dist) {
        best_dist = d;
        best = &c;
      }
    }
    if (best == nullptr) {
      clusters.push_back({p, {v}});
    } else {
      size_t n = best->members.size();
      best->center = (best->center * static_cast<double>(n) + p) /
                     static_cast<double>(n + 1);
      best->members.push_back(v);
    }
  }

  std::vector<PersonalPlace> places;
  double total_overnight = 0.0;
  double total_workhours = 0.0;
  for (const Cluster& c : clusters) {
    if (c.members.size() < config_.min_visits) continue;
    PersonalPlace place;
    place.center = c.center;
    place.num_visits = c.members.size();
    for (size_t v : c.members) {
      const StopVisit& visit = visits[v];
      place.total_dwell_seconds += visit.time_out - visit.time_in;
      place.overnight_dwell_seconds +=
          WindowOverlap(visit, 22.0, 6.0, /*weekdays_only=*/false);
      place.workhour_dwell_seconds +=
          WindowOverlap(visit, 9.0, 17.0, /*weekdays_only=*/true);
    }
    total_overnight += place.overnight_dwell_seconds;
    total_workhours += place.workhour_dwell_seconds;
    places.push_back(std::move(place));
  }
  std::stable_sort(places.begin(), places.end(),
                   [](const PersonalPlace& a, const PersonalPlace& b) {
                     return a.total_dwell_seconds > b.total_dwell_seconds;
                   });

  // Label: the place holding most of the overnight dwell is home; the
  // non-home place holding most weekday work-hour dwell is work.
  size_t home = SIZE_MAX, work = SIZE_MAX;
  double best_overnight = 0.0, best_workhours = 0.0;
  for (size_t i = 0; i < places.size(); ++i) {
    if (places[i].overnight_dwell_seconds > best_overnight) {
      best_overnight = places[i].overnight_dwell_seconds;
      home = i;
    }
  }
  if (home != SIZE_MAX && total_overnight > 0.0 &&
      places[home].overnight_dwell_seconds <
          config_.home_share_threshold * total_overnight) {
    home = SIZE_MAX;  // no dominant overnight place
  }
  for (size_t i = 0; i < places.size(); ++i) {
    if (i == home) continue;
    if (places[i].workhour_dwell_seconds > best_workhours) {
      best_workhours = places[i].workhour_dwell_seconds;
      work = i;
    }
  }
  if (work != SIZE_MAX && total_workhours > 0.0 &&
      places[work].workhour_dwell_seconds <
          config_.work_share_threshold * total_workhours) {
    work = SIZE_MAX;
  }
  size_t generic = 1;
  for (size_t i = 0; i < places.size(); ++i) {
    if (i == home) {
      places[i].label = "home";
    } else if (i == work) {
      places[i].label = "work";
    } else {
      places[i].label = common::StrFormat("place-%zu", generic++);
    }
  }
  return places;
}

size_t PersonalPlaceDetector::PlaceFor(
    const std::vector<PersonalPlace>& places, const geo::Point& p,
    double radius) {
  size_t best = SIZE_MAX;
  double best_dist = radius;
  for (size_t i = 0; i < places.size(); ++i) {
    double d = places[i].center.DistanceTo(p);
    if (d <= best_dist) {
      best_dist = d;
      best = i;
    }
  }
  return best;
}

}  // namespace semitri::analytics
