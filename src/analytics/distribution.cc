#include "analytics/distribution.h"

#include <algorithm>

namespace semitri::analytics {

std::vector<std::pair<std::string, double>> LabeledDistribution::TopK(
    size_t k) const {
  std::vector<std::pair<std::string, uint64_t>> sorted(counts_.begin(),
                                                       counts_.end());
  std::stable_sort(sorted.begin(), sorted.end(),
                   [](const auto& a, const auto& b) {
                     return a.second > b.second;
                   });
  std::vector<std::pair<std::string, double>> out;
  for (size_t i = 0; i < sorted.size() && i < k; ++i) {
    out.emplace_back(sorted[i].first, Fraction(sorted[i].first));
  }
  return out;
}

}  // namespace semitri::analytics
