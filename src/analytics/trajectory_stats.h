#ifndef SEMITRI_ANALYTICS_TRAJECTORY_STATS_H_
#define SEMITRI_ANALYTICS_TRAJECTORY_STATS_H_

// Semantic Trajectory Analytics Layer statistics:
//   * landuse category breakdowns over whole trajectories / moves /
//     stops (Figs. 9 and 14);
//   * trajectory categorization by dominant stop category (Eq. 8);
//   * episode/GPS-count context summaries (Figs. 12 and 13);
//   * storage-compression accounting (the 99.7 % claim of §5.2).

#include <array>
#include <vector>

#include "analytics/distribution.h"
#include "core/types.h"
#include "region/region_annotator.h"

namespace semitri::analytics {

// Per-landuse-category point counts for a trajectory, split by motion
// context (the three columns of Fig. 9).
struct LanduseBreakdown {
  LabeledDistribution trajectory;  // every GPS point
  LabeledDistribution move;        // points inside move episodes
  LabeledDistribution stop;        // points inside stop episodes
  uint64_t uncovered_points = 0;   // points outside every region
};

LanduseBreakdown ComputeLanduseBreakdown(
    const core::RawTrajectory& trajectory,
    const std::vector<core::Episode>& episodes,
    const region::RegionAnnotator& annotator,
    const region::RegionSet& regions);

// Eq. 8: the trajectory category is the POI category with the maximum
// total stop time in the "point" interpretation. Returns -1 when the
// interpretation holds no stops.
int TrajectoryCategory(const core::StructuredSemanticTrajectory& point_layer,
                       size_t num_categories);

// Counts behind Fig. 12 / Fig. 13: sizes of trajectories and their
// stop/move episodes.
struct ContextCounts {
  size_t num_trajectories = 0;
  size_t num_gps_records = 0;
  size_t num_stops = 0;
  size_t num_moves = 0;
  LogHistogram trajectory_sizes{4};
  LogHistogram stop_sizes{4};
  LogHistogram move_sizes{4};

  void Accumulate(const core::RawTrajectory& trajectory,
                  const std::vector<core::Episode>& episodes);
};

// Storage compression of episode-level annotation versus per-record
// annotation (§5.2: 3M GPS records -> 8,385 region tuples, 99.7 %).
struct CompressionStats {
  size_t raw_records = 0;
  size_t semantic_tuples = 0;

  double CompressionRatio() const {
    return raw_records == 0
               ? 0.0
               : 1.0 - static_cast<double>(semantic_tuples) /
                           static_cast<double>(raw_records);
  }
};

}  // namespace semitri::analytics

#endif  // SEMITRI_ANALYTICS_TRAJECTORY_STATS_H_
