#include "analytics/similarity.h"

#include <algorithm>

namespace semitri::analytics {

size_t SequenceEditDistance(const std::vector<std::string>& a,
                            const std::vector<std::string>& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<size_t> prev(m + 1), current(m + 1);
  for (size_t j = 0; j <= m; ++j) prev[j] = j;
  for (size_t i = 1; i <= n; ++i) {
    current[0] = i;
    for (size_t j = 1; j <= m; ++j) {
      size_t substitution = prev[j - 1] + (a[i - 1] == b[j - 1] ? 0 : 1);
      current[j] = std::min({prev[j] + 1, current[j - 1] + 1, substitution});
    }
    prev.swap(current);
  }
  return prev[m];
}

double EditSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(SequenceEditDistance(a, b)) /
                   static_cast<double>(longest);
}

size_t LongestCommonSubsequence(const std::vector<std::string>& a,
                                const std::vector<std::string>& b) {
  const size_t n = a.size();
  const size_t m = b.size();
  std::vector<size_t> prev(m + 1, 0), current(m + 1, 0);
  for (size_t i = 1; i <= n; ++i) {
    for (size_t j = 1; j <= m; ++j) {
      current[j] = a[i - 1] == b[j - 1]
                       ? prev[j - 1] + 1
                       : std::max(prev[j], current[j - 1]);
    }
    prev = current;
  }
  return prev[m];
}

double LcsSimilarity(const std::vector<std::string>& a,
                     const std::vector<std::string>& b) {
  size_t longest = std::max(a.size(), b.size());
  if (longest == 0) return 1.0;
  return static_cast<double>(LongestCommonSubsequence(a, b)) /
         static_cast<double>(longest);
}

std::vector<std::vector<double>> SimilarityMatrix(
    const std::vector<std::vector<std::string>>& sequences) {
  const size_t n = sequences.size();
  std::vector<std::vector<double>> matrix(n, std::vector<double>(n, 1.0));
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = i + 1; j < n; ++j) {
      double s = EditSimilarity(sequences[i], sequences[j]);
      matrix[i][j] = s;
      matrix[j][i] = s;
    }
  }
  return matrix;
}

}  // namespace semitri::analytics
