#ifndef SEMITRI_ANALYTICS_SEQUENCE_MINING_H_
#define SEMITRI_ANALYTICS_SEQUENCE_MINING_H_

// Sequential pattern mining over semantic trajectories — the "frequent
// stops, trajectory patterns" the paper's Semantic Trajectory Analytics
// Layer computes (§3.3). Mines frequent contiguous label sequences
// (n-grams) from per-trajectory sequences of place/activity labels,
// e.g. home -> work -> market -> home.

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace semitri::analytics {

struct SequencePattern {
  std::vector<std::string> labels;
  uint64_t support = 0;  // number of trajectories containing the pattern

  std::string ToString() const;
};

struct SequenceMinerConfig {
  // Pattern length bounds (contiguous subsequences).
  size_t min_length = 2;
  size_t max_length = 5;
  // Minimum number of distinct input sequences a pattern must occur in.
  uint64_t min_support = 2;
  // Collapse immediate repeats (home, home, work -> home, work) before
  // mining; repeated identical stops usually mean a split dwell.
  bool collapse_repeats = true;
};

class SequenceMiner {
 public:
  explicit SequenceMiner(SequenceMinerConfig config = {})
      : config_(config) {}

  // Mines frequent patterns. `sequences` holds one label sequence per
  // trajectory (e.g. the stop labels of each day). Patterns are
  // returned sorted by support (descending), then by length
  // (descending), then lexicographically.
  std::vector<SequencePattern> Mine(
      const std::vector<std::vector<std::string>>& sequences) const;

  const SequenceMinerConfig& config() const { return config_; }

 private:
  SequenceMinerConfig config_;
};

}  // namespace semitri::analytics

#endif  // SEMITRI_ANALYTICS_SEQUENCE_MINING_H_
