#include "analytics/sequence_mining.h"

#include <algorithm>
#include <set>

#include "common/strings.h"

namespace semitri::analytics {

std::string SequencePattern::ToString() const {
  return common::Join(labels, " -> ");
}

std::vector<SequencePattern> SequenceMiner::Mine(
    const std::vector<std::vector<std::string>>& sequences) const {
  // Support = number of distinct sequences containing the n-gram, so a
  // pattern repeated within one day counts once.
  std::map<std::vector<std::string>, std::set<size_t>> occurrences;
  for (size_t s = 0; s < sequences.size(); ++s) {
    std::vector<std::string> seq = sequences[s];
    if (config_.collapse_repeats) {
      seq.erase(std::unique(seq.begin(), seq.end()), seq.end());
    }
    for (size_t len = config_.min_length;
         len <= config_.max_length && len <= seq.size(); ++len) {
      for (size_t i = 0; i + len <= seq.size(); ++i) {
        std::vector<std::string> gram(seq.begin() + i,
                                      seq.begin() + i + len);
        occurrences[std::move(gram)].insert(s);
      }
    }
  }
  std::vector<SequencePattern> out;
  for (auto& [labels, support_set] : occurrences) {
    if (support_set.size() < config_.min_support) continue;
    SequencePattern pattern;
    pattern.labels = labels;
    pattern.support = support_set.size();
    out.push_back(std::move(pattern));
  }
  std::sort(out.begin(), out.end(),
            [](const SequencePattern& a, const SequencePattern& b) {
              if (a.support != b.support) return a.support > b.support;
              if (a.labels.size() != b.labels.size()) {
                return a.labels.size() > b.labels.size();
              }
              return a.labels < b.labels;
            });
  return out;
}

}  // namespace semitri::analytics
