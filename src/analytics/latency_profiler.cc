#include "analytics/latency_profiler.h"

#include <algorithm>
#include <cmath>

namespace semitri::analytics {

double LatencyProfiler::Percentile(const std::string& stage, double q) const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = samples_.find(stage);
    if (it == samples_.end() || it->second.empty()) return 0.0;
    sorted = it->second;
  }
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

LatencyProfiler::StageSummary LatencyProfiler::Summarize(
    const std::string& stage) const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = samples_.find(stage);
    if (it == samples_.end() || it->second.empty()) return {};
    sorted = it->second;
  }
  std::sort(sorted.begin(), sorted.end());
  StageSummary out;
  out.count = sorted.size();
  for (double s : sorted) out.total += s;
  out.mean = out.total / static_cast<double>(out.count);
  auto nearest_rank = [&sorted](double q) {
    size_t rank = static_cast<size_t>(
        std::ceil(q * static_cast<double>(sorted.size())));
    if (rank == 0) rank = 1;
    return sorted[rank - 1];
  };
  out.p50 = nearest_rank(0.5);
  out.p99 = nearest_rank(0.99);
  return out;
}

}  // namespace semitri::analytics
