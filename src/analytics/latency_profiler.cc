#include "analytics/latency_profiler.h"

#include <algorithm>
#include <cmath>

namespace semitri::analytics {

double LatencyProfiler::Percentile(const std::string& stage, double q) const {
  std::vector<double> sorted;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    auto it = samples_.find(stage);
    if (it == samples_.end() || it->second.empty()) return 0.0;
    sorted = it->second;
  }
  std::sort(sorted.begin(), sorted.end());
  q = std::clamp(q, 0.0, 1.0);
  size_t rank = static_cast<size_t>(
      std::ceil(q * static_cast<double>(sorted.size())));
  if (rank == 0) rank = 1;
  return sorted[rank - 1];
}

}  // namespace semitri::analytics
