#ifndef SEMITRI_ANALYTICS_PERSONAL_PLACES_H_
#define SEMITRI_ANALYTICS_PERSONAL_PLACES_H_

// Personal-place discovery: clusters a moving object's stop episodes
// across days into recurrent places and labels them by their temporal
// signature (overnight dwells -> home, long weekday-daytime dwells ->
// work). This realizes the paper's "semantic places computed from the
// trajectory geometric features" (§4.1) and supplies the `home`/`office`
// labels of the §1.1 example trajectory — which no 3rd-party source can
// provide.
//
// Clustering is agglomerative over stop centers with a distance
// threshold (stops of the same place land within GPS-noise distance of
// each other night after night).

#include <string>
#include <vector>

#include "core/types.h"

namespace semitri::analytics {

struct PersonalPlace {
  geo::Point center;
  // Stop visits merged into this place.
  size_t num_visits = 0;
  double total_dwell_seconds = 0.0;
  double overnight_dwell_seconds = 0.0;  // dwell during 22:00-06:00
  double workhour_dwell_seconds = 0.0;   // weekday dwell during 09:00-17:00
  // "home", "work", or "place-N".
  std::string label;
};

struct PersonalPlacesConfig {
  // Stops whose centers are within this distance merge into one place.
  double merge_radius_meters = 120.0;
  // Minimum visits for a cluster to count as a recurrent place.
  size_t min_visits = 2;
  // Fraction of the total overnight dwell a place must hold to be home.
  double home_share_threshold = 0.5;
  double work_share_threshold = 0.4;
  double day_seconds = 86400.0;
};

// One stop observation: where and when the object dwelled.
struct StopVisit {
  geo::Point center;
  core::Timestamp time_in = 0.0;
  core::Timestamp time_out = 0.0;
};

class PersonalPlaceDetector {
 public:
  explicit PersonalPlaceDetector(PersonalPlacesConfig config = {})
      : config_(config) {}

  // Clusters the visits (typically all stop episodes of one object over
  // many days) and labels home/work. Places are ordered by total dwell,
  // descending.
  std::vector<PersonalPlace> Detect(
      const std::vector<StopVisit>& visits) const;

  // Index of the detected place containing p (within merge radius of
  // its center), or SIZE_MAX.
  static size_t PlaceFor(const std::vector<PersonalPlace>& places,
                         const geo::Point& p, double radius);

  const PersonalPlacesConfig& config() const { return config_; }

 private:
  // Seconds of [time_in, time_out] that fall into the recurring daily
  // window [window_begin_h, window_end_h) (hours; window may wrap
  // midnight). Weekday-only when requested (day 0 = Monday).
  double WindowOverlap(const StopVisit& visit, double window_begin_h,
                       double window_end_h, bool weekdays_only) const;

  PersonalPlacesConfig config_;
};

// Convenience: extracts StopVisits from the stop episodes of processed
// daily trajectories.
std::vector<StopVisit> CollectStopVisits(
    const std::vector<core::Episode>& episodes);

}  // namespace semitri::analytics

#endif  // SEMITRI_ANALYTICS_PERSONAL_PLACES_H_
