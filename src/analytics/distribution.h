#ifndef SEMITRI_ANALYTICS_DISTRIBUTION_H_
#define SEMITRI_ANALYTICS_DISTRIBUTION_H_

// Distribution helpers behind the Semantic Trajectory Analytics Layer:
// labeled count distributions (landuse / POI category shares of Figs. 9,
// 11, 14) and logarithmic histograms (the log–log episode-size plot of
// Fig. 12).

#include <cmath>
#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace semitri::analytics {

// Counts per label with percentage and top-k views.
class LabeledDistribution {
 public:
  void Add(const std::string& label, uint64_t count = 1) {
    counts_[label] += count;
    total_ += count;
  }

  uint64_t CountOf(const std::string& label) const {
    auto it = counts_.find(label);
    return it == counts_.end() ? 0 : it->second;
  }

  // Share of `label` in [0, 1]; 0 when empty.
  double Fraction(const std::string& label) const {
    return total_ == 0 ? 0.0
                       : static_cast<double>(CountOf(label)) /
                             static_cast<double>(total_);
  }

  uint64_t total() const { return total_; }
  const std::map<std::string, uint64_t>& counts() const { return counts_; }

  // Labels with the k largest counts, descending (ties: label order).
  std::vector<std::pair<std::string, double>> TopK(size_t k) const;

 private:
  std::map<std::string, uint64_t> counts_;
  uint64_t total_ = 0;
};

// Histogram over logarithmic bins (fixed bins per decade), for heavy-
// tailed size distributions.
class LogHistogram {
 public:
  explicit LogHistogram(size_t bins_per_decade = 4)
      : bins_per_decade_(bins_per_decade) {}

  void Add(double value) {
    if (value < 1.0) value = 1.0;
    int bin = static_cast<int>(
        std::floor(std::log10(value) * static_cast<double>(bins_per_decade_)));
    ++bins_[bin];
    ++total_;
  }

  struct Bin {
    double lo;
    double hi;
    uint64_t count;
  };

  // Non-empty bins, ascending by range.
  std::vector<Bin> bins() const {
    std::vector<Bin> out;
    for (const auto& [bin, count] : bins_) {
      double lo = std::pow(10.0, static_cast<double>(bin) /
                                     static_cast<double>(bins_per_decade_));
      double hi = std::pow(10.0, static_cast<double>(bin + 1) /
                                     static_cast<double>(bins_per_decade_));
      out.push_back({lo, hi, count});
    }
    return out;
  }

  uint64_t total() const { return total_; }

 private:
  size_t bins_per_decade_;
  std::map<int, uint64_t> bins_;
  uint64_t total_ = 0;
};

}  // namespace semitri::analytics

#endif  // SEMITRI_ANALYTICS_DISTRIBUTION_H_
