#ifndef SEMITRI_ANALYTICS_SIMILARITY_H_
#define SEMITRI_ANALYTICS_SIMILARITY_H_

// Semantic trajectory similarity — one of the applications the paper's
// introduction says semantic trajectories enable ("semantic similarity,
// semantic pattern mining"). Trajectories compare by their label
// sequences (stop activities, place labels, or landuse codes), not by
// geometry, so a Tuesday and a Thursday with the same routine are
// similar even when the geometry differs.

#include <string>
#include <vector>

namespace semitri::analytics {

// Levenshtein distance between two label sequences.
size_t SequenceEditDistance(const std::vector<std::string>& a,
                            const std::vector<std::string>& b);

// 1 - editDistance / max(len); 1.0 for identical, 0.0 for disjoint.
// Two empty sequences are identical (1.0).
double EditSimilarity(const std::vector<std::string>& a,
                      const std::vector<std::string>& b);

// Length of the longest common subsequence.
size_t LongestCommonSubsequence(const std::vector<std::string>& a,
                                const std::vector<std::string>& b);

// LCS length / max(len).
double LcsSimilarity(const std::vector<std::string>& a,
                     const std::vector<std::string>& b);

// Pairwise similarity matrix (EditSimilarity) over many trajectories;
// result[i][j] symmetric with unit diagonal.
std::vector<std::vector<double>> SimilarityMatrix(
    const std::vector<std::vector<std::string>>& sequences);

}  // namespace semitri::analytics

#endif  // SEMITRI_ANALYTICS_SIMILARITY_H_
