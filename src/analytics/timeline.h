#ifndef SEMITRI_ANALYTICS_TIMELINE_H_
#define SEMITRI_ANALYTICS_TIMELINE_H_

// Composes the three annotation layers into the application-facing
// semantic view of paper §1.1:
//
//   (home, -9am, -) -> (road, 9am-10am, on-bus) -> (office, 10am-5pm,
//   work) -> (market, 5:30-6pm, shopping) -> ...
//
// Each stop becomes one entry labeled with (in priority order) the
// named free-form region, the linked POI, or the landuse class; its
// annotation is the decoded activity (POI category). Each move becomes
// one entry labeled "road" annotated with its dominant transportation
// mode(s) by time share.

#include <string>
#include <vector>

#include "analytics/personal_places.h"
#include "core/pipeline.h"
#include "core/types.h"
#include "poi/poi_set.h"
#include "region/region_set.h"

namespace semitri::analytics {

struct TimelineEntry {
  core::EpisodeKind kind = core::EpisodeKind::kStop;
  core::Timestamp time_in = 0.0;
  core::Timestamp time_out = 0.0;
  // Semantic place label ("EPFL campus", "feedings #17", "road",
  // "building areas").
  std::string place;
  // Additional-value annotation ("item sale", "metro+walk", "").
  std::string annotation;
};

// Builds the timeline for one processed trajectory. `regions` / `pois`
// may be null when the corresponding layer was skipped. When
// `personal_places` is given (from PersonalPlaceDetector over the
// object's history), stops at a detected place take its label
// ("home"/"work"/"place-N") — the §1.1 `home`/`office` labels.
std::vector<TimelineEntry> BuildTimeline(
    const core::PipelineResult& result, const region::RegionSet* regions,
    const poi::PoiSet* pois,
    const std::vector<PersonalPlace>* personal_places = nullptr);

// Formats seconds-since-day-start as HH:MM.
std::string FormatClock(core::Timestamp t);

}  // namespace semitri::analytics

#endif  // SEMITRI_ANALYTICS_TIMELINE_H_
