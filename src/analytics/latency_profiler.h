#ifndef SEMITRI_ANALYTICS_LATENCY_PROFILER_H_
#define SEMITRI_ANALYTICS_LATENCY_PROFILER_H_

// Per-stage latency accounting behind paper Fig. 17 (compute episodes /
// store episodes / map match / store match / landuse join, per daily
// trajectory).
//
// Thread-safe: Record and all readers serialize on an internal mutex
// (enforced on Clang via -Wthread-safety), so one profiler can sink
// stage timings from concurrently processed objects.

#include <chrono>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "common/thread_annotations.h"

namespace semitri::analytics {

class LatencyProfiler {
 public:
  // RAII timer: records the elapsed wall time under `stage` at scope
  // exit.
  class Scope {
   public:
    Scope(LatencyProfiler* profiler, std::string stage)
        : profiler_(profiler),
          stage_(std::move(stage)),
          start_(std::chrono::steady_clock::now()) {}
    ~Scope() {
      std::chrono::duration<double> elapsed =
          std::chrono::steady_clock::now() - start_;
      profiler_->Record(stage_, elapsed.count());
    }
    Scope(const Scope&) = delete;
    Scope& operator=(const Scope&) = delete;

   private:
    LatencyProfiler* profiler_;
    std::string stage_;
    std::chrono::steady_clock::time_point start_;
  };

  void Record(const std::string& stage, double seconds)
      SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_[stage].push_back(seconds);
  }

  size_t Count(const std::string& stage) const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return CountLocked(stage);
  }

  double Total(const std::string& stage) const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    return TotalLocked(stage);
  }

  double Mean(const std::string& stage) const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    size_t n = CountLocked(stage);
    return n == 0 ? 0.0 : TotalLocked(stage) / static_cast<double>(n);
  }

  // q in [0, 1]; nearest-rank percentile.
  double Percentile(const std::string& stage, double q) const
      SEMITRI_EXCLUDES(mutex_);

  // One-call stage digest (count / total / mean / p50 / p99, seconds) —
  // the per-episode-annotation-latency view the streaming bench and
  // examples print. All zeros when the stage has no samples.
  struct StageSummary {
    size_t count = 0;
    double total = 0.0;
    double mean = 0.0;
    double p50 = 0.0;
    double p99 = 0.0;
  };
  StageSummary Summarize(const std::string& stage) const
      SEMITRI_EXCLUDES(mutex_);

  std::vector<std::string> Stages() const SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::string> out;
    out.reserve(samples_.size());
    for (const auto& [stage, s] : samples_) out.push_back(stage);
    return out;
  }

  void Clear() SEMITRI_EXCLUDES(mutex_) {
    std::lock_guard<std::mutex> lock(mutex_);
    samples_.clear();
  }

 private:
  size_t CountLocked(const std::string& stage) const
      SEMITRI_REQUIRES(mutex_) {
    auto it = samples_.find(stage);
    return it == samples_.end() ? 0 : it->second.size();
  }

  double TotalLocked(const std::string& stage) const
      SEMITRI_REQUIRES(mutex_) {
    auto it = samples_.find(stage);
    if (it == samples_.end()) return 0.0;
    double total = 0.0;
    for (double s : it->second) total += s;
    return total;
  }

  mutable std::mutex mutex_;
  std::map<std::string, std::vector<double>> samples_
      SEMITRI_GUARDED_BY(mutex_);
};

}  // namespace semitri::analytics

#endif  // SEMITRI_ANALYTICS_LATENCY_PROFILER_H_
