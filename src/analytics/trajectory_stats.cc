#include "analytics/trajectory_stats.h"

#include <cstdint>

#include "common/strings.h"

namespace semitri::analytics {

LanduseBreakdown ComputeLanduseBreakdown(
    const core::RawTrajectory& trajectory,
    const std::vector<core::Episode>& episodes,
    const region::RegionAnnotator& annotator,
    const region::RegionSet& regions) {
  LanduseBreakdown out;
  std::vector<core::PlaceId> point_regions =
      annotator.ClassifyPoints(trajectory);

  // Motion context of each point.
  std::vector<core::EpisodeKind> kind(trajectory.points.size(),
                                      core::EpisodeKind::kMove);
  for (const core::Episode& ep : episodes) {
    for (size_t i = ep.begin; i < ep.end && i < kind.size(); ++i) {
      kind[i] = ep.kind;
    }
  }

  for (size_t i = 0; i < point_regions.size(); ++i) {
    if (point_regions[i] == core::kInvalidPlaceId) {
      ++out.uncovered_points;
      continue;
    }
    const char* code =
        region::LanduseCategoryCode(regions.Get(point_regions[i]).category);
    out.trajectory.Add(code);
    if (kind[i] == core::EpisodeKind::kStop) {
      out.stop.Add(code);
    } else if (kind[i] == core::EpisodeKind::kMove) {
      out.move.Add(code);
    }
  }
  return out;
}

int TrajectoryCategory(const core::StructuredSemanticTrajectory& point_layer,
                       size_t num_categories) {
  std::vector<double> stop_time(num_categories, 0.0);
  bool any = false;
  for (const core::SemanticEpisode& ep : point_layer.episodes) {
    if (ep.kind != core::EpisodeKind::kStop) continue;
    const std::string& id = ep.FindAnnotation("poi_category_id");
    if (id.empty()) continue;
    // Annotations may come from a loaded store; ignore unparseable ids
    // instead of throwing.
    int64_t parsed = 0;
    if (!common::ParseInt64(id, &parsed) || parsed < 0) continue;
    size_t c = static_cast<size_t>(parsed);
    if (c >= num_categories) continue;
    stop_time[c] += ep.DurationSeconds();
    any = true;
  }
  if (!any) return -1;
  size_t best = 0;
  for (size_t c = 1; c < num_categories; ++c) {
    if (stop_time[c] > stop_time[best]) best = c;
  }
  return static_cast<int>(best);
}

void ContextCounts::Accumulate(const core::RawTrajectory& trajectory,
                               const std::vector<core::Episode>& episodes) {
  ++num_trajectories;
  num_gps_records += trajectory.points.size();
  trajectory_sizes.Add(static_cast<double>(trajectory.points.size()));
  for (const core::Episode& ep : episodes) {
    if (ep.kind == core::EpisodeKind::kStop) {
      ++num_stops;
      stop_sizes.Add(static_cast<double>(ep.num_points()));
    } else if (ep.kind == core::EpisodeKind::kMove) {
      ++num_moves;
      move_sizes.Add(static_cast<double>(ep.num_points()));
    }
  }
}

}  // namespace semitri::analytics
