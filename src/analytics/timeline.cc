#include "analytics/timeline.h"

#include <algorithm>
#include <cmath>
#include <map>

#include "common/strings.h"

namespace semitri::analytics {

namespace {

// The semantic episode (if any) of `layer` whose source is episode
// index `e`.
const core::SemanticEpisode* FindLayerEpisode(
    const std::optional<core::StructuredSemanticTrajectory>& layer,
    size_t e) {
  if (!layer.has_value()) return nullptr;
  for (const core::SemanticEpisode& ep : layer->episodes) {
    if (ep.source_episode == e) return &ep;
  }
  return nullptr;
}

// Mode annotation of a move: the modes of its line-layer sub-episodes,
// ordered by total time share, joined with '+', minor shares dropped.
std::string DominantModes(
    const std::optional<core::StructuredSemanticTrajectory>& line_layer,
    size_t e) {
  if (!line_layer.has_value()) return "";
  std::map<std::string, double> mode_time;
  double total = 0.0;
  for (const core::SemanticEpisode& ep : line_layer->episodes) {
    if (ep.source_episode != e) continue;
    const std::string& mode = ep.FindAnnotation("transport_mode");
    if (mode.empty()) continue;
    mode_time[mode] += ep.DurationSeconds();
    total += ep.DurationSeconds();
  }
  if (mode_time.empty()) return "";
  std::vector<std::pair<std::string, double>> ordered(mode_time.begin(),
                                                      mode_time.end());
  std::sort(ordered.begin(), ordered.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  std::vector<std::string> kept;
  for (const auto& [mode, time] : ordered) {
    if (time >= 0.12 * total) kept.push_back(mode);
  }
  return common::Join(kept, "+");
}

}  // namespace

std::string FormatClock(core::Timestamp t) {
  double day_seconds = std::fmod(t, 86400.0);
  int hh = static_cast<int>(day_seconds) / 3600;
  int mm = (static_cast<int>(day_seconds) % 3600) / 60;
  return common::StrFormat("%02d:%02d", hh, mm);
}

std::vector<TimelineEntry> BuildTimeline(
    const core::PipelineResult& result, const region::RegionSet* regions,
    const poi::PoiSet* pois,
    const std::vector<PersonalPlace>* personal_places) {
  std::vector<TimelineEntry> timeline;
  for (size_t e = 0; e < result.episodes.size(); ++e) {
    const core::Episode& episode = result.episodes[e];
    TimelineEntry entry;
    entry.kind = episode.kind;
    entry.time_in = episode.time_in;
    entry.time_out = episode.time_out;

    if (episode.kind == core::EpisodeKind::kMove) {
      entry.place = "road";
      entry.annotation = DominantModes(result.line_layer, e);
    } else {
      // Stop label priority: personal place > named region > POI link >
      // landuse class.
      const core::SemanticEpisode* region_ep =
          FindLayerEpisode(result.region_layer, e);
      const core::SemanticEpisode* point_ep =
          FindLayerEpisode(result.point_layer, e);
      bool at_personal_place = false;
      if (personal_places != nullptr) {
        size_t place = PersonalPlaceDetector::PlaceFor(
            *personal_places, episode.center, /*radius=*/150.0);
        if (place != SIZE_MAX) {
          entry.place = (*personal_places)[place].label;
          at_personal_place = true;
          // At home/work the decoded POI activity is noise from nearby
          // businesses; annotate "work" at the workplace, else nothing
          // (the §1.1 example's "(home, -, -)" / "(office, -, work)").
          if (entry.place == "work") entry.annotation = "work";
        }
      }
      if (entry.place.empty() && region_ep != nullptr) {
        entry.place = region_ep->FindAnnotation("region_name");
        if (entry.place.empty()) {
          entry.place = region_ep->FindAnnotation("landuse_name");
        }
      }
      if (entry.place.empty() && point_ep != nullptr && pois != nullptr &&
          point_ep->place.valid()) {
        entry.place = pois->Get(point_ep->place.id).name;
      }
      if (entry.place.empty()) entry.place = "unknown place";
      // Only claim an activity when the stop actually linked to a POI;
      // a dwell with no nearby POI (home, office) keeps "-" like the
      // §1.1 example.
      if (!at_personal_place && point_ep != nullptr &&
          point_ep->place.valid()) {
        entry.annotation = point_ep->FindAnnotation("poi_category");
      }
    }
    timeline.push_back(std::move(entry));
  }
  (void)regions;
  return timeline;
}

}  // namespace semitri::analytics
