#include "datagen/world.h"

#include <cmath>
#include <map>

#include "common/strings.h"

namespace semitri::datagen {

namespace {

using region::LanduseCategory;
using road::RoadType;

// Street-name fragments in the spirit of the paper's Lausanne examples
// (Fig. 15 lists "Ch. Veilloud", "Rt. du Boi", ...).
constexpr const char* kStreetPrefixes[] = {"Ch.", "Rt. de", "Av.", "Rue"};
constexpr const char* kStreetStems[] = {
    "Veilloud",  "Boi",     "Villar",   "Sorge",   "Barrage", "Diagonale",
    "Lac",       "Gare",    "Moulin",   "Crochy",  "Epenex",  "Bassenges",
    "Tir-Federal", "Colline", "Praz",   "Renges",  "Jura",    "Valmont",
    "Mont",      "Planche", "Cedres",   "Marronniers", "Bourg", "Midi",
    "Source",    "Fontaine", "Vernay",  "Chamberonne", "Dorigny", "Ecublens"};

std::string StreetName(size_t index) {
  size_t num_stems = std::size(kStreetStems);
  size_t num_prefixes = std::size(kStreetPrefixes);
  return common::StrFormat(
      "%s %s", kStreetPrefixes[(index / num_stems) % num_prefixes],
      kStreetStems[index % num_stems]);
}

// A landuse patch overriding the radial zoning.
struct Patch {
  geo::Point center;
  double radius;
  LanduseCategory category;
};

}  // namespace

geo::Point World::RandomCorePoint(common::Rng& rng) const {
  geo::Point c = Center();
  double core = config.urban_core_fraction * config.extent_meters * 0.5;
  return {c.x + rng.Uniform(-core, core), c.y + rng.Uniform(-core, core)};
}

World WorldGenerator::Generate() const {
  World world;
  world.config = config_;
  world.extent = geo::BoundingBox(
      {0.0, 0.0}, {config_.extent_meters, config_.extent_meters});
  common::Rng rng(config_.seed);
  BuildRoads(&world, rng);
  BuildLanduse(&world, rng);
  BuildPois(&world, rng);
  return world;
}

void WorldGenerator::BuildRoads(World* world, common::Rng& rng) const {
  const double extent = config_.extent_meters;
  const double spacing = config_.street_spacing_meters;
  const int lines = static_cast<int>(std::floor(extent / spacing)) + 1;
  const geo::Point center = world->Center();
  const double core_radius = config_.urban_core_fraction * extent * 0.5;

  auto is_arterial_line = [&](int line) {
    return line % config_.arterial_every == 0;
  };
  auto in_core = [&](const geo::Point& p) {
    return std::abs(p.x - center.x) <= core_radius &&
           std::abs(p.y - center.y) <= core_radius;
  };

  // Grid nodes with positional jitter (so segments are not perfectly
  // axis-aligned — the "arbitrary crossings" stress case).
  std::vector<std::vector<road::NodeId>> grid(
      static_cast<size_t>(lines),
      std::vector<road::NodeId>(static_cast<size_t>(lines), -1));
  for (int gy = 0; gy < lines; ++gy) {
    for (int gx = 0; gx < lines; ++gx) {
      geo::Point p{gx * spacing + rng.Gaussian(0.0, spacing * 0.06),
                   gy * spacing + rng.Gaussian(0.0, spacing * 0.06)};
      geo::Point node_pos{std::clamp(p.x, 0.0, extent),
                          std::clamp(p.y, 0.0, extent)};
      grid[static_cast<size_t>(gy)][static_cast<size_t>(gx)] =
          world->roads.AddNode(node_pos);
    }
  }

  // Street segments. Residential streets exist only inside the core;
  // arterial lines cross the whole world. The outermost arterial square
  // around the core is typed highway (the ring road).
  size_t name_counter = 0;
  std::map<int, std::string> horizontal_names, vertical_names;
  auto name_of = [&](std::map<int, std::string>& names, int line) {
    auto it = names.find(line);
    if (it == names.end()) {
      it = names.emplace(line, StreetName(name_counter++)).first;
    }
    return it->second;
  };

  int ring_lo = -1, ring_hi = -1;
  {
    // Arterial lines closest to the core boundary form the ring.
    double lo_coord = center.x - core_radius;
    double hi_coord = center.x + core_radius;
    ring_lo = static_cast<int>(std::round(lo_coord / spacing));
    ring_hi = static_cast<int>(std::round(hi_coord / spacing));
    ring_lo -= ring_lo % config_.arterial_every;
    ring_hi -= ring_hi % config_.arterial_every;
  }

  auto segment_type = [&](int line, const geo::Point& a,
                          const geo::Point& b) -> std::optional<RoadType> {
    bool arterial = is_arterial_line(line);
    bool core_seg = in_core(a) || in_core(b);
    if (line == ring_lo || line == ring_hi) return RoadType::kHighway;
    if (arterial) return RoadType::kArterial;
    if (core_seg) return RoadType::kResidential;
    return std::nullopt;  // no minor streets in the countryside
  };

  for (int gy = 0; gy < lines; ++gy) {
    for (int gx = 0; gx + 1 < lines; ++gx) {
      road::NodeId a = grid[static_cast<size_t>(gy)][static_cast<size_t>(gx)];
      road::NodeId b =
          grid[static_cast<size_t>(gy)][static_cast<size_t>(gx + 1)];
      auto type = segment_type(gy, world->roads.node(a), world->roads.node(b));
      if (type) {
        world->roads.AddSegment(a, b, *type, name_of(horizontal_names, gy));
      }
    }
  }
  for (int gx = 0; gx < lines; ++gx) {
    for (int gy = 0; gy + 1 < lines; ++gy) {
      road::NodeId a = grid[static_cast<size_t>(gy)][static_cast<size_t>(gx)];
      road::NodeId b =
          grid[static_cast<size_t>(gy + 1)][static_cast<size_t>(gx)];
      auto type = segment_type(gx, world->roads.node(a), world->roads.node(b));
      if (type) {
        world->roads.AddSegment(a, b, *type, name_of(vertical_names, gx));
      }
    }
  }

  // Metro lines through the center. Tracks run on their own
  // right-of-way, offset ~30 m from the street row/column (real metros
  // are not collinear with streets — and collinear rail would make
  // street-vs-rail matching a coin flip). Each station node connects to
  // the street grid through a short footway "station entrance".
  int station_step = std::max(
      1, static_cast<int>(std::round(config_.metro_station_spacing_meters /
                                     spacing)));
  // All metro lines sit on grid indices that are multiples of the
  // station step, so crossing lines stop at the same intersection and
  // stay interconnected through their entrances and the street grid.
  int center_line = (lines / 2) / station_step * station_step;
  const double rail_offset = 30.0;
  for (int m = 0; m < config_.num_metro_lines; ++m) {
    bool horizontal = (m % 2 == 0);
    int line = center_line +
               (m / 2) * station_step * 2 * (m % 4 < 2 ? 1 : -1);
    line = std::clamp(line / station_step * station_step, 0, lines - 1);
    std::string metro_name = common::StrFormat("M%d", m + 1);
    road::NodeId prev = -1;
    for (int i = 0; i < lines; i += station_step) {
      road::NodeId street_node =
          horizontal ? grid[static_cast<size_t>(line)][static_cast<size_t>(i)]
                     : grid[static_cast<size_t>(i)][static_cast<size_t>(line)];
      geo::Point pos = world->roads.node(street_node);
      geo::Point rail_pos = horizontal
                                ? geo::Point{pos.x, pos.y + rail_offset}
                                : geo::Point{pos.x + rail_offset, pos.y};
      road::NodeId station = world->roads.AddNode(rail_pos);
      world->roads.AddSegment(station, street_node, RoadType::kFootway,
                              metro_name + " entrance");
      if (prev >= 0) {
        world->roads.AddSegment(prev, station, RoadType::kRailMetro,
                                metro_name);
      }
      prev = station;
    }
  }

  // Cycleways parallel to selected core arterials, offset a few meters —
  // the dense-parallel-roads case the point-segment distance handles.
  int added_cycleways = 0;
  for (int gy = config_.arterial_every;
       gy < lines && added_cycleways < config_.num_cycleway_lines;
       gy += 2 * config_.arterial_every, ++added_cycleways) {
    road::NodeId prev = -1;
    std::string cycle_name =
        common::StrFormat("Piste %d", added_cycleways + 1);
    for (int gx = 0; gx < lines; ++gx) {
      geo::Point base =
          world->roads.node(grid[static_cast<size_t>(gy)][static_cast<size_t>(gx)]);
      if (!in_core(base)) {
        prev = -1;
        continue;
      }
      road::NodeId n = world->roads.AddNode({base.x, base.y + 6.0});
      if (prev >= 0) {
        world->roads.AddSegment(prev, n, RoadType::kCycleway, cycle_name);
      }
      // Short connector to the street grid so the cycleway is reachable
      // (otherwise it would be a disconnected walkable component).
      world->roads.AddSegment(
          n, grid[static_cast<size_t>(gy)][static_cast<size_t>(gx)],
          RoadType::kCycleway, cycle_name);
      prev = n;
    }
  }

  // Footpath shortcuts between nearby core nodes (diagonals through
  // blocks, park paths).
  for (int f = 0; f < config_.num_footpath_shortcuts; ++f) {
    int gx = static_cast<int>(rng.UniformInt(0, lines - 2));
    int gy = static_cast<int>(rng.UniformInt(0, lines - 2));
    road::NodeId a = grid[static_cast<size_t>(gy)][static_cast<size_t>(gx)];
    road::NodeId b =
        grid[static_cast<size_t>(gy + 1)][static_cast<size_t>(gx + 1)];
    if (!in_core(world->roads.node(a)) || !in_core(world->roads.node(b))) {
      continue;
    }
    world->roads.AddSegment(a, b, RoadType::kFootway,
                            common::StrFormat("Sentier %d", f + 1));
  }
}

void WorldGenerator::BuildLanduse(World* world, common::Rng& rng) const {
  const double extent = config_.extent_meters;
  const double cell = config_.landuse_cell_meters;
  const geo::Point center = world->Center();
  const double half = extent * 0.5;

  // Patches override radial zoning: lakes, parks, forests, industrial.
  std::vector<Patch> patches;
  const LanduseCategory patch_categories[] = {
      LanduseCategory::kLakes,        LanduseCategory::kRecreational,
      LanduseCategory::kForest,       LanduseCategory::kIndustrialCommercial,
      LanduseCategory::kWoods,        LanduseCategory::kOrchard,
      LanduseCategory::kSpecialUrban, LanduseCategory::kRivers};
  for (int p = 0; p < config_.num_patches; ++p) {
    Patch patch;
    patch.category =
        patch_categories[rng.UniformInt(0, std::size(patch_categories) - 1)];
    // Lakes/forests sit away from the center (a city core is built-up);
    // industry at mid radius, parks anywhere.
    double r_lo = 0.55, r_hi = 0.95;
    if (patch.category == LanduseCategory::kIndustrialCommercial ||
        patch.category == LanduseCategory::kSpecialUrban) {
      r_lo = 0.25;
      r_hi = 0.6;
    } else if (patch.category == LanduseCategory::kRecreational) {
      r_lo = 0.15;
      r_hi = 0.7;
    }
    double r = rng.Uniform(r_lo, r_hi) * half;
    double theta = rng.Uniform(0.0, 2.0 * M_PI);
    patch.center = {center.x + r * std::cos(theta),
                    center.y + r * std::sin(theta)};
    // Urban patches (parks, industrial estates) are compact; nature
    // patches on the outskirts can sprawl.
    bool urban_patch =
        patch.category == LanduseCategory::kRecreational ||
        patch.category == LanduseCategory::kIndustrialCommercial ||
        patch.category == LanduseCategory::kSpecialUrban;
    patch.radius = urban_patch ? rng.Uniform(100.0, 280.0)
                               : rng.Uniform(200.0, 600.0);
    patches.push_back(patch);
  }

  const int cells = static_cast<int>(std::floor(extent / cell));
  for (int cy = 0; cy < cells; ++cy) {
    for (int cx = 0; cx < cells; ++cx) {
      geo::BoundingBox box({cx * cell, cy * cell},
                           {(cx + 1) * cell, (cy + 1) * cell});
      geo::Point c = box.Center();

      LanduseCategory category;
      // 1) transportation cells along major roads and rail — corridors
      // cut through everything else, as in the Swisstopo data. Highways
      // and rail carve wide corridors; ordinary arterial streets sit
      // within building blocks and only claim the cells they cross.
      bool transport = false;
      for (core::PlaceId id : world->roads.CandidateSegments(c, 60.0)) {
        const road::RoadSegment& seg = world->roads.segment(id);
        double d = seg.shape.DistanceTo(c);
        if ((seg.type == RoadType::kHighway ||
             seg.type == RoadType::kRailMetro) &&
            d <= 60.0) {
          transport = true;
          break;
        }
        if (seg.type == RoadType::kArterial && d <= 22.0) {
          transport = true;
          break;
        }
      }
      // 2) patch override (nearest covering patch wins).
      const Patch* covering = nullptr;
      double best = std::numeric_limits<double>::infinity();
      for (const Patch& p : patches) {
        double d = c.DistanceTo(p.center);
        if (d <= p.radius && d < best) {
          best = d;
          covering = &p;
        }
      }
      if (transport) {
        category = LanduseCategory::kTransportation;
      } else if (covering != nullptr) {
        category = covering->category;
      } else {
        {
          // 3) radial zoning with noise.
          double r_norm = c.DistanceTo(center) / half;
          double u = rng.Uniform(0.0, 1.0);
          if (r_norm < config_.urban_core_fraction) {
            category = u < 0.80 ? LanduseCategory::kBuilding
                       : u < 0.90 ? LanduseCategory::kIndustrialCommercial
                       : u < 0.96 ? LanduseCategory::kRecreational
                                  : LanduseCategory::kSpecialUrban;
          } else if (r_norm < 0.8) {
            category = u < 0.35 ? LanduseCategory::kArable
                       : u < 0.70 ? LanduseCategory::kMeadows
                       : u < 0.80 ? LanduseCategory::kBuilding
                       : u < 0.90 ? LanduseCategory::kOrchard
                                  : LanduseCategory::kForest;
          } else {
            category = u < 0.35 ? LanduseCategory::kForest
                       : u < 0.55 ? LanduseCategory::kMeadows
                       : u < 0.70 ? LanduseCategory::kWoods
                       : u < 0.80 ? LanduseCategory::kAlpineAgricultural
                       : u < 0.88 ? LanduseCategory::kUnproductiveVegetation
                       : u < 0.94 ? LanduseCategory::kBrushForest
                       : u < 0.98 ? LanduseCategory::kBareLand
                                  : LanduseCategory::kGlaciers;
          }
        }
      }
      world->regions.AddCell(box, category);
    }
  }

  // Named free-form regions (the paper's OpenStreetMap examples).
  double campus = 320.0;
  geo::Point campus_center{center.x - half * 0.3, center.y - half * 0.2};
  world->regions.AddPolygon(
      geo::Polygon::FromBox(geo::BoundingBox(
          {campus_center.x - campus, campus_center.y - campus},
          {campus_center.x + campus, campus_center.y + campus})),
      LanduseCategory::kSpecialUrban, "EPFL campus");
  geo::Point pool_center{center.x + half * 0.25, center.y + half * 0.3};
  world->regions.AddPolygon(
      geo::Polygon::FromBox(
          geo::BoundingBox({pool_center.x - 120, pool_center.y - 120},
                           {pool_center.x + 120, pool_center.y + 120})),
      LanduseCategory::kRecreational, "swimming pool");
}

void WorldGenerator::BuildPois(World* world, common::Rng& rng) const {
  const geo::Point center = world->Center();
  const double half = config_.extent_meters * 0.5;

  // Cluster centers concentrated in the urban core (hot spots). Real
  // POI clusters are themed — restaurant streets, shopping malls — so
  // each cluster gets a dominant category that most of its POIs share.
  struct PoiCluster {
    geo::Point center;
    int dominant_category;
  };
  std::vector<PoiCluster> clusters;
  for (int k = 0; k < config_.num_poi_clusters; ++k) {
    double r = std::abs(rng.Gaussian(0.0, 0.35)) * half;
    r = std::min(r, 0.9 * half);
    double theta = rng.Uniform(0.0, 2.0 * M_PI);
    clusters.push_back(
        {{center.x + r * std::cos(theta), center.y + r * std::sin(theta)},
         static_cast<int>(rng.Discrete(config_.poi_category_weights))});
  }

  // Index clusters by dominant category so theming preserves the global
  // category shares: the category is drawn from the Milan weights first,
  // then the POI lands preferentially in a matching themed cluster.
  std::vector<std::vector<size_t>> clusters_by_category(
      config_.poi_category_weights.size());
  for (size_t k = 0; k < clusters.size(); ++k) {
    clusters_by_category[static_cast<size_t>(clusters[k].dominant_category)]
        .push_back(k);
  }

  for (int i = 0; i < config_.num_pois; ++i) {
    int category =
        static_cast<int>(rng.Discrete(config_.poi_category_weights));
    geo::Point pos;
    if (rng.Bernoulli(0.9)) {
      const auto& matching =
          clusters_by_category[static_cast<size_t>(category)];
      size_t cluster_index;
      if (!matching.empty() && rng.Bernoulli(0.75)) {
        cluster_index = matching[static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(matching.size()) - 1))];
      } else {
        cluster_index = static_cast<size_t>(
            rng.UniformInt(0, static_cast<int64_t>(clusters.size()) - 1));
      }
      const geo::Point& c = clusters[cluster_index].center;
      pos = {c.x + rng.Gaussian(0.0, 90.0), c.y + rng.Gaussian(0.0, 90.0)};
    } else {
      pos = {center.x + rng.Uniform(-half, half),
             center.y + rng.Uniform(-half, half)};
    }
    pos.x = std::clamp(pos.x, world->extent.min.x, world->extent.max.x);
    pos.y = std::clamp(pos.y, world->extent.min.y, world->extent.max.y);
    world->pois.Add(pos, category,
                    common::StrFormat(
                        "%s #%d",
                        world->pois.category_names()[static_cast<size_t>(
                            category)].c_str(),
                        i));
  }
}

}  // namespace semitri::datagen
