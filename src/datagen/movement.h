#ifndef SEMITRI_DATAGEN_MOVEMENT_H_
#define SEMITRI_DATAGEN_MOVEMENT_H_

// Movement simulation with ground truth — the stand-in for the paper's
// GPS corpora (Lausanne taxis, Milan private cars, Krumm's Seattle
// drive, Nokia smartphone users).
//
// Agents travel the synthetic road network between activity anchors
// using mode-specific speed/acceleration profiles (walk, bicycle, bus
// with stop-and-go, metro station-to-station, car), dwell at stops, and
// emit noisy GPS fixes at a configurable sampling rate with signal-loss
// gaps and degraded indoor reception. Every emitted fix carries its
// ground truth (true road segment, true transportation mode), and every
// dwell records the true POI and category — enabling the accuracy
// evaluations of Figs. 10/11 that the paper could only run on Krumm's
// benchmark.

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/types.h"
#include "datagen/world.h"
#include "road/router.h"
#include "road/transport_mode.h"

namespace semitri::datagen {

// Ground truth attached to each emitted GPS fix.
struct TruthSample {
  // Road segment the agent was on (kInvalidPlaceId while dwelling).
  core::PlaceId segment = core::kInvalidPlaceId;
  // True mode while moving; nullopt while dwelling.
  std::optional<road::TransportMode> mode;
};

// Ground truth for one dwell.
struct TruthStop {
  core::Timestamp time_in = 0.0;
  core::Timestamp time_out = 0.0;
  geo::Point location;
  core::PlaceId poi = core::kInvalidPlaceId;  // POI visited, if any
  int poi_category = -1;                      // category of that POI
  std::string label;                          // "home", "work", "shop", ...
};

struct SimulatedTrack {
  core::ObjectId object_id = 0;
  std::vector<core::GpsPoint> points;
  std::vector<TruthSample> truth;  // parallel to points
  std::vector<TruthStop> stops;
};

// GPS sensor characteristics (per device class).
struct SensorProfile {
  double sample_interval_seconds = 1.0;
  double gps_sigma_meters = 4.0;
  // Probability, per emitted sample while moving, that a signal gap
  // begins; gap length is exponential with the given mean.
  double p_gap_start = 0.0005;
  double mean_gap_seconds = 45.0;
  // Probability that a sample during a dwell is lost (indoor loss).
  double p_drop_indoor = 0.3;
  // Extra position noise factor while indoors.
  double indoor_noise_factor = 1.8;
  // Dwell sampling slows down by this factor (power-saving modules
  // throttle the sensor when stationary — §5.3 point (2)).
  double indoor_interval_factor = 6.0;
};

SensorProfile VehicleSensor();
SensorProfile SmartphoneSensor();

// Mode kinematics.
struct SpeedProfile {
  double cruise_mps = 1.4;
  double jitter_mps = 0.25;   // OU-style speed wobble
  double stop_spacing_m = 0;  // bus/metro halts every this many meters
  double stop_dwell_s = 0;    // halt duration
};

SpeedProfile SpeedProfileFor(road::TransportMode mode);

class MovementSimulator {
 public:
  // `world` must outlive the simulator.
  MovementSimulator(const World* world, uint64_t seed);

  // --- low-level building blocks --------------------------------------

  // Appends a dwell at `location` from the track's current end time (or
  // `start` for an empty track) lasting `duration` seconds.
  void AppendStop(SimulatedTrack* track, const geo::Point& location,
                  core::Timestamp start, double duration,
                  const SensorProfile& sensor, core::PlaceId poi = -1,
                  int poi_category = -1, std::string label = "");

  // Appends travel along `path` using `mode` kinematics; returns arrival
  // time.
  core::Timestamp AppendTravel(SimulatedTrack* track,
                               const road::RoutePath& path,
                               road::TransportMode mode,
                               core::Timestamp start,
                               const SensorProfile& sensor);

  // Plans and appends a full (possibly multimodal) trip from `from` to
  // `to`: direct path for walk/bicycle/car, walk–ride–walk for bus and
  // metro. Returns arrival time; NotFound when no route exists.
  [[nodiscard]] common::Result<core::Timestamp> AppendTrip(SimulatedTrack* track,
                                             const geo::Point& from,
                                             const geo::Point& to,
                                             road::TransportMode mode,
                                             core::Timestamp start,
                                             const SensorProfile& sensor);

  // Off-network walking between random waypoints around `anchor`
  // (hiking, park strolls — "walking follows unplanned paths through
  // places such as parks", §1.2). Truth carries walk mode but no road
  // segment. Returns the end time.
  core::Timestamp AppendRamble(SimulatedTrack* track,
                               const geo::Point& anchor, double radius,
                               core::Timestamp start, double duration,
                               const SensorProfile& sensor);

  const road::Router& router() const { return router_; }
  common::Rng& rng() { return rng_; }

 private:
  const World* world_;
  road::Router router_;
  common::Rng rng_;
};

}  // namespace semitri::datagen

#endif  // SEMITRI_DATAGEN_MOVEMENT_H_
