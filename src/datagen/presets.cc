#include "datagen/presets.h"

#include <algorithm>
#include <cmath>

namespace semitri::datagen {

using road::TransportMode;

namespace {

constexpr double kDay = 86400.0;
constexpr double kHour = 3600.0;

bool IsWeekend(int day) { return day % 7 >= 5; }

// Milan-car activity weights over the five POI categories: shopping
// (item sale) dominates, then person life — the ground truth behind the
// stop distribution of Fig. 11.
const std::vector<double> kCarActivityWeights = {0.08, 0.10, 0.55, 0.25,
                                                 0.02};
// People run more errands: feeding at lunch is handled separately.
const std::vector<double> kEveningActivityWeights = {0.08, 0.17, 0.45, 0.28,
                                                     0.02};

}  // namespace

size_t Dataset::TotalRecords() const {
  size_t n = 0;
  for (const SimulatedTrack& t : tracks) n += t.points.size();
  return n;
}

size_t Dataset::TotalStops() const {
  size_t n = 0;
  for (const SimulatedTrack& t : tracks) n += t.stops.size();
  return n;
}

DatasetFactory::DatasetFactory(const World* world, uint64_t seed)
    : world_(world), sim_(world, seed ^ 0xabcdef12345ULL), rng_(seed) {}

geo::Point DatasetFactory::FindCategoryAnchor(
    region::LanduseCategory category) {
  // Scan cells of the wanted category; pick one at random. Cells lying
  // under a named free-form region (campus, pool) are skipped — an
  // anchor there would be re-labeled by the named region during
  // annotation.
  std::vector<geo::Point> candidates;
  for (size_t i = 0; i < world_->regions.size(); ++i) {
    const region::SemanticRegion& r =
        world_->regions.Get(static_cast<core::PlaceId>(i));
    if (r.category != category || r.polygon.has_value()) continue;
    geo::Point center = r.bounds.Center();
    bool under_named = false;
    for (core::PlaceId id : world_->regions.FindContaining(center)) {
      if (!world_->regions.Get(id).name.empty()) {
        under_named = true;
        break;
      }
    }
    if (!under_named) candidates.push_back(center);
  }
  if (candidates.empty()) return world_->Center();
  return candidates[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(candidates.size()) - 1))];
}

geo::Point DatasetFactory::FindNamedRegionAnchor(const std::string& name) {
  for (size_t i = 0; i < world_->regions.size(); ++i) {
    const region::SemanticRegion& r =
        world_->regions.Get(static_cast<core::PlaceId>(i));
    if (r.name == name) return r.bounds.Center();
  }
  return world_->Center();
}

TransportMode DatasetFactory::SampleCommuteMode(const PersonSpec& spec) {
  static const TransportMode kModes[] = {TransportMode::kWalk,
                                         TransportMode::kBicycle,
                                         TransportMode::kBus,
                                         TransportMode::kMetro};
  return kModes[rng_.Discrete(spec.mode_weights)];
}

core::PlaceId DatasetFactory::SampleActivityPoi(
    const geo::Point& near, double radius,
    const std::vector<double>& weights) {
  int category = static_cast<int>(rng_.Discrete(weights));
  std::vector<core::PlaceId> nearby = world_->pois.WithinRadius(near, radius);
  std::vector<core::PlaceId> of_category;
  for (core::PlaceId id : nearby) {
    if (world_->pois.Get(id).category == category) of_category.push_back(id);
  }
  if (of_category.empty()) {
    // Fall back to the nearest POI of that category anywhere.
    return world_->pois.NearestOfCategory(near, category);
  }
  return of_category[static_cast<size_t>(
      rng_.UniformInt(0, static_cast<int64_t>(of_category.size()) - 1))];
}

Dataset DatasetFactory::LausanneTaxis(int num_taxis, int num_days,
                                      double shift_hours) {
  Dataset out;
  out.name = "lausanne_taxis";
  SensorProfile sensor = VehicleSensor();
  for (int taxi = 0; taxi < num_taxis; ++taxi) {
    SimulatedTrack track;
    track.object_id = taxi;
    for (int day = 0; day < num_days; ++day) {
      double shift_start = day * kDay + 7.0 * kHour +
                           rng_.Uniform(0.0, 2.0 * kHour);
      double shift_end = shift_start + shift_hours * kHour;
      // Taxi business concentrates in the inner city (the paper's taxi
      // GPS is 83 % building + transportation areas).
      auto random_inner_point = [&]() {
        geo::Point c = world_->Center();
        double inner = 0.58 * world_->config.urban_core_fraction *
                       world_->config.extent_meters * 0.5;
        return geo::Point{c.x + rng_.Uniform(-inner, inner),
                          c.y + rng_.Uniform(-inner, inner)};
      };
      geo::Point pos = random_inner_point();
      double t = shift_start;
      while (t < shift_end) {
        geo::Point dest = random_inner_point();
        common::Result<core::Timestamp> arrival =
            sim_.AppendTrip(&track, pos, dest, TransportMode::kCar, t, sensor);
        if (!arrival.ok()) break;
        t = *arrival;
        pos = dest;
        // Pickup/dropoff dwell; occasionally a longer break at a stand.
        double dwell = rng_.Bernoulli(0.3) ? rng_.Uniform(600.0, 1500.0)
                                           : rng_.Uniform(120.0, 360.0);
        sim_.AppendStop(&track, pos, t, dwell, sensor,
                        /*poi=*/core::kInvalidPlaceId, /*poi_category=*/-1,
                        "taxi_stand");
        t += dwell;
      }
    }
    out.tracks.push_back(std::move(track));
  }
  return out;
}

Dataset DatasetFactory::MilanPrivateCars(int num_cars, int num_days) {
  Dataset out;
  out.name = "milan_private_cars";
  SensorProfile sensor = VehicleSensor();
  sensor.sample_interval_seconds = 40.0;
  sensor.p_drop_indoor = 0.25;
  sensor.indoor_interval_factor = 3.0;
  for (int car = 0; car < num_cars; ++car) {
    SimulatedTrack track;
    track.object_id = car;
    geo::Point home = world_->RandomCorePoint(rng_);
    for (int day = 0; day < num_days; ++day) {
      // 1–3 errand trips per day (the paper's Milan data averages 1.7
      // stops per daily trajectory).
      int num_errands = static_cast<int>(rng_.UniformInt(1, 3));
      double t = day * kDay + 9.0 * kHour + rng_.Uniform(0.0, 3.0 * kHour);
      geo::Point pos = home;
      for (int e = 0; e < num_errands; ++e) {
        core::PlaceId poi_id =
            SampleActivityPoi(world_->Center(),
                              world_->config.extent_meters * 0.4,
                              kCarActivityWeights);
        if (poi_id == core::kInvalidPlaceId) break;
        const poi::Poi& poi = world_->pois.Get(poi_id);
        // Cars park some way from the POI itself — the location
        // ambiguity that motivates the density-based HMM annotation.
        geo::Point parked = poi.position +
                            geo::Point{rng_.Gaussian(0.0, 45.0),
                                       rng_.Gaussian(0.0, 45.0)};
        common::Result<core::Timestamp> arrival = sim_.AppendTrip(
            &track, pos, parked, TransportMode::kCar, t, sensor);
        if (!arrival.ok()) break;
        t = *arrival;
        pos = parked;
        double dwell = rng_.Uniform(1800.0, 5400.0);
        sim_.AppendStop(&track, pos, t, dwell, sensor, poi_id, poi.category,
                        "errand");
        t += dwell;
      }
      // Return home.
      common::Result<core::Timestamp> arrival = sim_.AppendTrip(
          &track, pos, home, TransportMode::kCar, t, sensor);
      if (arrival.ok()) t = *arrival;
    }
    out.tracks.push_back(std::move(track));
  }
  return out;
}

Dataset DatasetFactory::SeattleDrive(double hours, double gps_sigma_meters) {
  Dataset out;
  out.name = "seattle_drive";
  SensorProfile sensor = VehicleSensor();
  sensor.p_gap_start = 0.0;  // the benchmark trace is continuous
  sensor.gps_sigma_meters = gps_sigma_meters;
  SimulatedTrack track;
  track.object_id = 0;
  geo::Point pos = world_->RandomCorePoint(rng_);
  double t = 10.0 * kHour;
  double end = t + hours * kHour;
  while (t < end) {
    geo::Point dest = world_->RandomCorePoint(rng_);
    common::Result<core::Timestamp> arrival =
        sim_.AppendTrip(&track, pos, dest, TransportMode::kCar, t, sensor);
    if (!arrival.ok()) break;
    if (*arrival == t) {  // degenerate (same node); retry elsewhere
      t += 1.0;
      continue;
    }
    t = *arrival;
    pos = dest;
  }
  out.tracks.push_back(std::move(track));
  return out;
}

PersonSpec DatasetFactory::MakePersonSpec(int index) {
  PersonSpec spec;
  spec.work = world_->Center() +
              geo::Point{rng_.Uniform(-600.0, 600.0),
                         rng_.Uniform(-600.0, 600.0)};
  // People live in building areas by default (Fig. 14: 1.2 leads).
  spec.home = FindCategoryAnchor(region::LanduseCategory::kBuilding);
  switch (index) {
    case 0:  // user1: ordinary mixed commuter.
      spec.mode_weights = {0.25, 0.15, 0.35, 0.25};
      break;
    case 1:  // user2: weekend hiker in wooded areas (Fig. 14: 3.10).
      spec.mode_weights = {0.3, 0.1, 0.4, 0.2};
      spec.hiker = true;
      spec.hike_anchor =
          FindCategoryAnchor(region::LanduseCategory::kForest);
      break;
    case 2:  // user3: lives next to the lake (Fig. 14: water categories
             // enter the top-5 through dwell scatter).
      spec.home = FindCategoryAnchor(region::LanduseCategory::kLakes) +
                  geo::Point{95.0, 95.0};
      spec.mode_weights = {0.2, 0.2, 0.4, 0.2};
      break;
    case 3:  // user4: commercial-center home, metro commuter (Fig. 15).
      spec.home =
          FindCategoryAnchor(region::LanduseCategory::kIndustrialCommercial);
      spec.mode_weights = {0.1, 0.1, 0.1, 0.7};
      break;
    case 4:  // user5: bus commuter.
      spec.mode_weights = {0.15, 0.05, 0.65, 0.15};
      break;
    case 5:  // user6: cyclist, weekends at the pool (Fig. 14: 1.5).
      spec.mode_weights = {0.15, 0.6, 0.15, 0.1};
      spec.has_leisure_anchor = true;
      spec.leisure_anchor = FindNamedRegionAnchor("swimming pool");
      break;
    default:
      spec.mode_weights = {rng_.Uniform(0.1, 0.4), rng_.Uniform(0.05, 0.3),
                           rng_.Uniform(0.1, 0.5), rng_.Uniform(0.1, 0.5)};
      spec.hiker = rng_.Bernoulli(0.15);
      if (spec.hiker) {
        spec.hike_anchor =
            FindCategoryAnchor(region::LanduseCategory::kForest);
      }
      break;
  }
  return spec;
}

SimulatedTrack DatasetFactory::SimulatePersonDays(core::ObjectId id,
                                                  const PersonSpec& spec,
                                                  int num_days) {
  SimulatedTrack track;
  track.object_id = id;
  SensorProfile sensor = SmartphoneSensor();

  for (int day = 0; day < num_days; ++day) {
    double day_start = day * kDay;
    double wake = day_start + 7.2 * kHour + rng_.Uniform(0.0, 1.5 * kHour);
    // Night/morning at home.
    sim_.AppendStop(&track, spec.home, day_start + 0.5 * kHour,
                    wake - day_start - 0.5 * kHour, sensor,
                    core::kInvalidPlaceId, -1, "home");
    double t = wake;
    geo::Point pos = spec.home;

    if (!IsWeekend(day)) {
      // Commute to work.
      TransportMode mode = SampleCommuteMode(spec);
      common::Result<core::Timestamp> arrival =
          sim_.AppendTrip(&track, pos, spec.work, mode, t, sensor);
      if (arrival.ok()) {
        t = *arrival;
        pos = spec.work;
      }
      // Work until lunch.
      double lunch = day_start + 12.0 * kHour + rng_.Uniform(0.0, 0.7 * kHour);
      if (lunch > t) {
        sim_.AppendStop(&track, pos, t, lunch - t, sensor,
                        core::kInvalidPlaceId, -1, "work");
        t = lunch;
      }
      // Lunch at a nearby feeding POI.
      if (rng_.Bernoulli(0.7)) {
        core::PlaceId poi_id = world_->pois.NearestOfCategory(
            pos, static_cast<int>(poi::MilanCategory::kFeedings));
        if (poi_id != core::kInvalidPlaceId &&
            world_->pois.Get(poi_id).position.DistanceTo(pos) < 900.0) {
          const poi::Poi& poi = world_->pois.Get(poi_id);
          common::Result<core::Timestamp> there = sim_.AppendTrip(
              &track, pos, poi.position, TransportMode::kWalk, t, sensor);
          if (there.ok()) {
            t = *there;
            double dwell = rng_.Uniform(1800.0, 3000.0);
            sim_.AppendStop(&track, poi.position, t, dwell, sensor, poi_id,
                            poi.category, "lunch");
            t += dwell;
            common::Result<core::Timestamp> back = sim_.AppendTrip(
                &track, poi.position, pos, TransportMode::kWalk, t, sensor);
            if (back.ok()) t = *back;
          }
        }
      }
      // Afternoon work.
      double leave = day_start + 17.3 * kHour + rng_.Uniform(0.0, kHour);
      if (leave > t) {
        sim_.AppendStop(&track, pos, t, leave - t, sensor,
                        core::kInvalidPlaceId, -1, "work");
        t = leave;
      }
      // Evening activity.
      if (rng_.Bernoulli(spec.evening_activity_prob)) {
        core::PlaceId poi_id =
            SampleActivityPoi(spec.home, 2000.0, kEveningActivityWeights);
        if (poi_id != core::kInvalidPlaceId) {
          const poi::Poi& poi = world_->pois.Get(poi_id);
          TransportMode mode = SampleCommuteMode(spec);
          common::Result<core::Timestamp> there =
              sim_.AppendTrip(&track, pos, poi.position, mode, t, sensor);
          if (there.ok()) {
            t = *there;
            pos = poi.position;
            double dwell = rng_.Uniform(2400.0, 5400.0);
            sim_.AppendStop(&track, pos, t, dwell, sensor, poi_id,
                            poi.category, "evening");
            t += dwell;
          }
        }
      }
      // Home.
      TransportMode home_mode = SampleCommuteMode(spec);
      common::Result<core::Timestamp> back =
          sim_.AppendTrip(&track, pos, spec.home, home_mode, t, sensor);
      if (back.ok()) {
        t = *back;
        pos = spec.home;
      }
    } else {
      // Weekend.
      if (spec.hiker && day % 7 == 5) {
        common::Result<core::Timestamp> there = sim_.AppendTrip(
            &track, pos, spec.hike_anchor, TransportMode::kBus, t, sensor);
        if (there.ok()) {
          t = *there;
          t = sim_.AppendRamble(&track, spec.hike_anchor, 700.0, t,
                                rng_.Uniform(2.0, 4.0) * kHour, sensor);
          common::Result<core::Timestamp> back = sim_.AppendTrip(
              &track, spec.hike_anchor, spec.home, TransportMode::kBus, t,
              sensor);
          if (back.ok()) t = *back;
          pos = spec.home;
        }
      } else if (spec.has_leisure_anchor && rng_.Bernoulli(0.7)) {
        TransportMode mode = SampleCommuteMode(spec);
        common::Result<core::Timestamp> there = sim_.AppendTrip(
            &track, pos, spec.leisure_anchor, mode, t, sensor);
        if (there.ok()) {
          t = *there;
          double dwell = rng_.Uniform(1.5, 3.5) * kHour;
          sim_.AppendStop(&track, spec.leisure_anchor, t, dwell, sensor,
                          core::kInvalidPlaceId, -1, "leisure");
          t += dwell;
          common::Result<core::Timestamp> back = sim_.AppendTrip(
              &track, spec.leisure_anchor, spec.home, mode, t, sensor);
          if (back.ok()) t = *back;
          pos = spec.home;
        }
      } else if (rng_.Bernoulli(0.45)) {
        // Weekend stroll in a park / green area (off-network ramble —
        // the "more variation in areas covered" of §5.3).
        geo::Point park =
            FindCategoryAnchor(region::LanduseCategory::kRecreational);
        TransportMode mode = SampleCommuteMode(spec);
        common::Result<core::Timestamp> there =
            sim_.AppendTrip(&track, pos, park, mode, t, sensor);
        if (there.ok()) {
          t = *there;
          t = sim_.AppendRamble(&track, park, 350.0, t,
                                rng_.Uniform(1.0, 2.5) * kHour, sensor);
          common::Result<core::Timestamp> back =
              sim_.AppendTrip(&track, park, spec.home, mode, t, sensor);
          if (back.ok()) t = *back;
          pos = spec.home;
        }
      } else if (rng_.Bernoulli(0.6)) {
        // Weekend shopping.
        core::PlaceId poi_id =
            SampleActivityPoi(spec.home, 2500.0, kEveningActivityWeights);
        if (poi_id != core::kInvalidPlaceId) {
          const poi::Poi& poi = world_->pois.Get(poi_id);
          TransportMode mode = SampleCommuteMode(spec);
          common::Result<core::Timestamp> there =
              sim_.AppendTrip(&track, pos, poi.position, mode, t, sensor);
          if (there.ok()) {
            t = *there;
            double dwell = rng_.Uniform(1.0, 2.5) * kHour;
            sim_.AppendStop(&track, poi.position, t, dwell, sensor, poi_id,
                            poi.category, "weekend_shopping");
            t += dwell;
            common::Result<core::Timestamp> back = sim_.AppendTrip(
                &track, poi.position, spec.home, mode, t, sensor);
            if (back.ok()) t = *back;
            pos = spec.home;
          }
        }
      }
    }
    // Evening at home until midnight.
    double day_end = day_start + kDay - 0.2 * kHour;
    if (day_end > t) {
      sim_.AppendStop(&track, spec.home, t, day_end - t, sensor,
                      core::kInvalidPlaceId, -1, "home");
    }
  }
  return track;
}

Dataset DatasetFactory::NokiaPeople(int num_users, int num_days) {
  Dataset out;
  out.name = "nokia_people";
  for (int u = 0; u < num_users; ++u) {
    PersonSpec spec = MakePersonSpec(u);
    out.tracks.push_back(SimulatePersonDays(u, spec, num_days));
  }
  return out;
}

}  // namespace semitri::datagen
