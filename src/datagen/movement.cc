#include "datagen/movement.h"

#include <algorithm>
#include <cmath>

namespace semitri::datagen {

using road::TransportMode;

SensorProfile VehicleSensor() {
  SensorProfile s;
  s.sample_interval_seconds = 1.0;
  s.gps_sigma_meters = 4.0;
  s.p_gap_start = 0.0003;
  s.mean_gap_seconds = 30.0;
  s.p_drop_indoor = 0.05;  // vehicles park outdoors
  s.indoor_noise_factor = 1.2;
  return s;
}

SensorProfile SmartphoneSensor() {
  SensorProfile s;
  s.sample_interval_seconds = 10.0;
  s.gps_sigma_meters = 8.0;
  s.p_gap_start = 0.004;
  s.mean_gap_seconds = 120.0;
  s.p_drop_indoor = 0.7;   // heavy indoor loss
  s.indoor_noise_factor = 2.0;
  return s;
}

SpeedProfile SpeedProfileFor(TransportMode mode) {
  SpeedProfile p;
  switch (mode) {
    case TransportMode::kWalk:
      p.cruise_mps = 1.35;
      p.jitter_mps = 0.2;
      break;
    case TransportMode::kBicycle:
      p.cruise_mps = 4.3;
      p.jitter_mps = 0.6;
      break;
    case TransportMode::kBus:
      p.cruise_mps = 8.5;
      p.jitter_mps = 1.6;
      p.stop_spacing_m = 320.0;
      p.stop_dwell_s = 18.0;
      break;
    case TransportMode::kMetro:
      p.cruise_mps = 13.0;
      p.jitter_mps = 1.0;
      p.stop_spacing_m = 600.0;
      p.stop_dwell_s = 22.0;
      break;
    case TransportMode::kCar:
      p.cruise_mps = 10.5;
      p.jitter_mps = 2.2;
      break;
    case TransportMode::kUnknown:
      break;
  }
  return p;
}

MovementSimulator::MovementSimulator(const World* world, uint64_t seed)
    : world_(world), router_(&world->roads), rng_(seed) {}

void MovementSimulator::AppendStop(SimulatedTrack* track,
                                   const geo::Point& location,
                                   core::Timestamp start, double duration,
                                   const SensorProfile& sensor,
                                   core::PlaceId poi, int poi_category,
                                   std::string label) {
  TruthStop stop;
  stop.time_in = start;
  stop.time_out = start + duration;
  stop.location = location;
  stop.poi = poi;
  stop.poi_category = poi_category;
  stop.label = std::move(label);
  track->stops.push_back(stop);

  double sigma = sensor.gps_sigma_meters * sensor.indoor_noise_factor;
  double interval =
      sensor.sample_interval_seconds * sensor.indoor_interval_factor;
  for (double t = start; t < start + duration; t += interval) {
    if (rng_.Bernoulli(sensor.p_drop_indoor)) continue;
    core::GpsPoint p;
    p.position = {location.x + rng_.Gaussian(0.0, sigma),
                  location.y + rng_.Gaussian(0.0, sigma)};
    p.time = t;
    track->points.push_back(p);
    track->truth.push_back(TruthSample{});  // dwelling: no segment, no mode
  }
}

core::Timestamp MovementSimulator::AppendTravel(SimulatedTrack* track,
                                                const road::RoutePath& path,
                                                TransportMode mode,
                                                core::Timestamp start,
                                                const SensorProfile& sensor) {
  if (path.nodes.size() < 2) return start;
  const SpeedProfile profile = SpeedProfileFor(mode);
  const road::RoadNetwork& roads = world_->roads;

  // Cumulative arc lengths over the node polyline.
  std::vector<double> cum(path.nodes.size(), 0.0);
  for (size_t i = 1; i < path.nodes.size(); ++i) {
    cum[i] = cum[i - 1] +
             roads.node(path.nodes[i - 1]).DistanceTo(roads.node(path.nodes[i]));
  }
  const double total = cum.back();

  double s = 0.0;
  double v = profile.cruise_mps;
  double t = start;
  double next_emit = start;
  double gap_until = -1.0;
  double halt_until = -1.0;
  double dist_since_halt = rng_.Uniform(0.0, profile.stop_spacing_m);
  size_t edge = 0;
  size_t last_crossed_edge = 0;
  const double dt = 1.0;
  const bool road_vehicle =
      mode == TransportMode::kBus || mode == TransportMode::kCar;

  while (s < total) {
    // Kinematics: OU-style wobble around cruise speed.
    if (t < halt_until) {
      v = 0.0;
    } else {
      if (v <= 0.0) v = 0.5 * profile.cruise_mps;  // pull away
      v += 0.25 * (profile.cruise_mps - v) * dt +
           profile.jitter_mps * rng_.Gaussian(0.0, 1.0) * std::sqrt(dt) * 0.5;
      v = std::clamp(v, 0.25 * profile.cruise_mps, 1.9 * profile.cruise_mps);
    }
    double ds = v * dt;
    s = std::min(total, s + ds);
    dist_since_halt += ds;
    t += dt;

    // Advance the current edge; handle node crossings.
    while (edge + 1 < cum.size() - 1 && s > cum[edge + 1]) ++edge;
    if (edge != last_crossed_edge) {
      last_crossed_edge = edge;
      // Traffic lights for road vehicles at crossings.
      if (road_vehicle && rng_.Bernoulli(0.15)) {
        halt_until = t + rng_.Uniform(4.0, 25.0);
      }
    }
    // Scheduled halts (bus stops / metro stations).
    if (profile.stop_spacing_m > 0.0 &&
        dist_since_halt >= profile.stop_spacing_m && t >= halt_until) {
      halt_until = t + profile.stop_dwell_s;
      dist_since_halt = 0.0;
    }

    // Emission.
    if (t + 1e-9 < next_emit) continue;
    next_emit += sensor.sample_interval_seconds;
    if (gap_until > t) continue;
    if (rng_.Bernoulli(sensor.p_gap_start)) {
      gap_until = t + rng_.Exponential(sensor.mean_gap_seconds);
      continue;
    }
    // True position: interpolate along the current edge.
    double edge_len = cum[edge + 1] - cum[edge];
    double frac = edge_len > 0.0 ? (s - cum[edge]) / edge_len : 0.0;
    frac = std::clamp(frac, 0.0, 1.0);
    geo::Point a = roads.node(path.nodes[edge]);
    geo::Point b = roads.node(path.nodes[edge + 1]);
    geo::Point true_pos = a + (b - a) * frac;

    core::GpsPoint p;
    p.position = {true_pos.x + rng_.Gaussian(0.0, sensor.gps_sigma_meters),
                  true_pos.y + rng_.Gaussian(0.0, sensor.gps_sigma_meters)};
    p.time = t;
    track->points.push_back(p);
    TruthSample truth;
    truth.segment = path.segments[edge];
    truth.mode = mode;
    track->truth.push_back(truth);
  }
  return t;
}

core::Timestamp MovementSimulator::AppendRamble(SimulatedTrack* track,
                                                const geo::Point& anchor,
                                                double radius,
                                                core::Timestamp start,
                                                double duration,
                                                const SensorProfile& sensor) {
  const SpeedProfile profile = SpeedProfileFor(TransportMode::kWalk);
  double t = start;
  double next_emit = start;
  geo::Point pos = anchor;
  geo::Point waypoint{anchor.x + rng_.Uniform(-radius, radius),
                      anchor.y + rng_.Uniform(-radius, radius)};
  const double dt = 1.0;
  while (t < start + duration) {
    t += dt;
    double v = std::max(
        0.4, profile.cruise_mps + rng_.Gaussian(0.0, profile.jitter_mps));
    geo::Point dir = waypoint - pos;
    double dist = dir.Norm();
    if (dist < v * dt) {
      pos = waypoint;
      waypoint = {anchor.x + rng_.Uniform(-radius, radius),
                  anchor.y + rng_.Uniform(-radius, radius)};
    } else {
      pos = pos + dir * (v * dt / dist);
    }
    if (t + 1e-9 < next_emit) continue;
    next_emit += sensor.sample_interval_seconds;
    core::GpsPoint p;
    p.position = {pos.x + rng_.Gaussian(0.0, sensor.gps_sigma_meters),
                  pos.y + rng_.Gaussian(0.0, sensor.gps_sigma_meters)};
    p.time = t;
    track->points.push_back(p);
    TruthSample truth;
    truth.mode = TransportMode::kWalk;  // off-network: no segment
    track->truth.push_back(truth);
  }
  return t;
}

common::Result<core::Timestamp> MovementSimulator::AppendTrip(
    SimulatedTrack* track, const geo::Point& from, const geo::Point& to,
    TransportMode mode, core::Timestamp start, const SensorProfile& sensor) {
  const road::SegmentFilter walk = road::WalkFilter();
  auto filter_for = [&](TransportMode m) -> road::SegmentFilter {
    switch (m) {
      case TransportMode::kWalk: return road::WalkFilter();
      case TransportMode::kBicycle: return road::BicycleFilter();
      case TransportMode::kBus: return road::BusFilter();
      case TransportMode::kMetro: return road::MetroFilter();
      case TransportMode::kCar: return road::CarFilter();
      case TransportMode::kUnknown: return nullptr;
    }
    return nullptr;
  };

  if (mode == TransportMode::kWalk || mode == TransportMode::kBicycle ||
      mode == TransportMode::kCar) {
    road::SegmentFilter filter = filter_for(mode);
    road::NodeId a = router_.NearestNode(from, filter);
    road::NodeId b = router_.NearestNode(to, filter);
    if (a < 0 || b < 0) return common::Status::NotFound("no access node");
    common::Result<road::RoutePath> path = router_.ShortestPath(a, b, filter);
    if (!path.ok()) return path.status();
    return AppendTravel(track, *path, mode, start, sensor);
  }

  // Bus / metro: walk – ride – walk.
  road::SegmentFilter ride_filter = filter_for(mode);
  road::NodeId origin = router_.NearestNode(from, walk);
  road::NodeId dest = router_.NearestNode(to, walk);
  road::NodeId access = router_.NearestNode(from, ride_filter);
  road::NodeId egress = router_.NearestNode(to, ride_filter);
  if (origin < 0 || dest < 0 || access < 0 || egress < 0) {
    return common::Status::NotFound("no access node");
  }
  if (access == egress) {
    // Ride would be empty: walk the whole way.
    common::Result<road::RoutePath> path =
        router_.ShortestPath(origin, dest, walk);
    if (!path.ok()) return path.status();
    return AppendTravel(track, *path, TransportMode::kWalk, start, sensor);
  }
  // Resolve the ride before emitting anything; if the transit network
  // cannot serve this pair, fall back to walking the whole way.
  common::Result<road::RoutePath> ride =
      router_.ShortestPath(access, egress, ride_filter);
  if (!ride.ok()) {
    common::Result<road::RoutePath> path =
        router_.ShortestPath(origin, dest, walk);
    if (!path.ok()) return path.status();
    return AppendTravel(track, *path, TransportMode::kWalk, start, sensor);
  }
  core::Timestamp t = start;
  common::Result<road::RoutePath> walk_in =
      router_.ShortestPath(origin, access, walk);
  if (!walk_in.ok()) return walk_in.status();
  t = AppendTravel(track, *walk_in, TransportMode::kWalk, t, sensor);
  t = AppendTravel(track, *ride, mode, t, sensor);

  common::Result<road::RoutePath> walk_out =
      router_.ShortestPath(egress, dest, walk);
  if (!walk_out.ok()) return walk_out.status();
  t = AppendTravel(track, *walk_out, TransportMode::kWalk, t, sensor);
  return t;
}

}  // namespace semitri::datagen
