#ifndef SEMITRI_DATAGEN_WORLD_H_
#define SEMITRI_DATAGEN_WORLD_H_

// Synthetic geographic world — the stand-in for the paper's 3rd-party
// sources (Swisstopo landuse, OpenStreetMap, Milan POI repository,
// Seattle road network). One deterministic generator produces, from a
// seed:
//
//   * a typed road network: urban grid (arterials + residential
//     streets), a highway ring, metro lines with stations, cycleways
//     running parallel to selected arterials (the "parallel road-ways"
//     stress case of §4.2), and footpath shortcuts;
//   * a 100 m landuse grid in the 17-category Swisstopo ontology with
//     coherent zoning (dense building/transportation core, agricultural
//     belt, wooded/lake outskirts) plus a few named free-form regions
//     (campus, park, pool);
//   * a clustered POI repository in the paper's five Milan categories
//     with the paper's category proportions.
//
// DESIGN.md §2 documents why these substitutions preserve the paper's
// evaluation behaviour.

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "geo/box.h"
#include "poi/poi_set.h"
#include "region/region_set.h"
#include "road/road_network.h"

namespace semitri::datagen {

struct WorldConfig {
  uint64_t seed = 42;
  // Side of the square world, meters.
  double extent_meters = 8000.0;
  double landuse_cell_meters = 100.0;
  // Street grid spacing in the urban core / arterial spacing.
  double street_spacing_meters = 200.0;
  int arterial_every = 4;  // every N-th grid line is an arterial
  // Radius of the dense urban core as a fraction of the half extent.
  double urban_core_fraction = 0.55;
  int num_metro_lines = 2;
  double metro_station_spacing_meters = 600.0;
  int num_cycleway_lines = 3;
  int num_footpath_shortcuts = 120;
  // Landuse patches (lakes, parks, forests, industrial zones).
  int num_patches = 30;
  // POI repository.
  int num_pois = 4000;
  int num_poi_clusters = 25;
  // Category weights in Milan proportions (services, feedings, item
  // sale, person life, unknown).
  std::vector<double> poi_category_weights = {4339.0, 7036.0, 12510.0,
                                              15371.0, 516.0};
};

struct World {
  WorldConfig config;
  geo::BoundingBox extent;
  road::RoadNetwork roads;
  region::RegionSet regions;
  poi::PoiSet pois = poi::PoiSet::MilanCategories();

  geo::Point Center() const { return extent.Center(); }

  // Uniform random point within the urban core.
  geo::Point RandomCorePoint(common::Rng& rng) const;
};

class WorldGenerator {
 public:
  explicit WorldGenerator(WorldConfig config = {}) : config_(config) {}

  // Deterministic for a given config (including seed).
  World Generate() const;

 private:
  void BuildRoads(World* world, common::Rng& rng) const;
  void BuildLanduse(World* world, common::Rng& rng) const;
  void BuildPois(World* world, common::Rng& rng) const;

  WorldConfig config_;
};

}  // namespace semitri::datagen

#endif  // SEMITRI_DATAGEN_WORLD_H_
