#ifndef SEMITRI_DATAGEN_PRESETS_H_
#define SEMITRI_DATAGEN_PRESETS_H_

// Dataset presets mirroring the paper's evaluation corpora (Tables 1
// and 2):
//
//   (1) Lausanne taxis    — few vehicles, 1 s sampling, long tracking;
//   (2) Milan private cars — many vehicles, ~40 s sampling, one week,
//       activity stops at POIs (shopping-heavy);
//   (3) Seattle drive     — a single continuous 2 h drive with ground
//       truth (Krumm's map-matching benchmark);
//   (4) Nokia people      — smartphone users with heterogeneous modes,
//       indoor loss, distinct per-user behaviour (the 6 profiled users
//       of Table 2 / Fig. 14).
//
// Sizes are scaled relative to the paper (multi-million-point corpora
// would dominate bench runtime without changing any distribution shape);
// each preset accepts explicit counts so callers can scale up.

#include <string>
#include <vector>

#include "datagen/movement.h"
#include "datagen/world.h"
#include "road/transport_mode.h"

namespace semitri::datagen {

struct Dataset {
  std::string name;
  // One track per object: a continuous multi-day GPS stream with truth.
  std::vector<SimulatedTrack> tracks;

  size_t TotalRecords() const;
  size_t TotalStops() const;
};

// Distinct behaviour profile for a simulated person (Table 2 users).
struct PersonSpec {
  geo::Point home;
  geo::Point work;
  // Commute mode preference weights: walk, bicycle, bus, metro.
  std::vector<double> mode_weights = {0.2, 0.2, 0.3, 0.3};
  // Probability of an evening activity on a weekday.
  double evening_activity_prob = 0.6;
  // Weekend hiking anchor (off-network ramble); unset if not a hiker.
  bool hiker = false;
  geo::Point hike_anchor;
  // Weekend leisure anchor (e.g. the swimming pool).
  bool has_leisure_anchor = false;
  geo::Point leisure_anchor;
};

class DatasetFactory {
 public:
  // `world` must outlive the factory.
  DatasetFactory(const World* world, uint64_t seed);

  // Table 1 row (1): taxis on 1 s sampling doing pickup/dropoff cycles.
  Dataset LausanneTaxis(int num_taxis = 2, int num_days = 10,
                        double shift_hours = 6.0);

  // Table 1 row (2): private cars, ~40 s sampling, POI activity stops
  // with the shopping-heavy weights behind Fig. 11.
  Dataset MilanPrivateCars(int num_cars = 120, int num_days = 7);

  // Table 1 row (3): one continuous drive with ground-truth path.
  // `gps_sigma_meters` controls trace noise (Fig. 10 sensitivity).
  Dataset SeattleDrive(double hours = 2.0, double gps_sigma_meters = 4.0);

  // Table 2: smartphone users. The first six users receive the
  // hand-crafted specs of Fig. 14 (lake-side home, hiker, commercial-
  // center home with metro commute, ...); further users get randomized
  // specs.
  Dataset NokiaPeople(int num_users = 6, int num_days = 14);

  // The behaviour spec used for user `index` (0-based).
  PersonSpec MakePersonSpec(int index);

  // One person's multi-day stream.
  SimulatedTrack SimulatePersonDays(core::ObjectId id, const PersonSpec& spec,
                                    int num_days);

  // A cell center of the wanted landuse category (not shadowed by a
  // named region; falls back to the world center when absent).
  geo::Point FindCategoryAnchor(region::LanduseCategory category);

  // Center of the named free-form region (e.g. "swimming pool").
  geo::Point FindNamedRegionAnchor(const std::string& name);

 private:
  road::TransportMode SampleCommuteMode(const PersonSpec& spec);
  core::PlaceId SampleActivityPoi(const geo::Point& near, double radius,
                                  const std::vector<double>& weights);

  const World* world_;
  MovementSimulator sim_;
  common::Rng rng_;
};

}  // namespace semitri::datagen

#endif  // SEMITRI_DATAGEN_PRESETS_H_
