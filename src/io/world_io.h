#ifndef SEMITRI_IO_WORLD_IO_H_
#define SEMITRI_IO_WORLD_IO_H_

// CSV serialization of the semantic place sources (regions, road
// networks, POIs). This is the ingestion boundary for real 3rd-party
// data: export a synthetic world to see the schemas, or load your own
// files in the same format:
//
//   regions.csv : id,category,name,min_x,min_y,max_x,max_y,ring
//                 (ring = "x1 y1;x2 y2;..." for free-form polygons,
//                 empty for rectangular cells)
//   roads.csv   : id,from,to,type,name,ax,ay,bx,by
//                 (node positions embedded; node ids are dense ints)
//   pois.csv    : id,category,name,x,y
//   poi_categories.csv : id,name
//
// All file I/O goes through common::Env (`env` null = the real
// filesystem); write errors — including ENOSPC on the final flush —
// surface as IoError, never silently.

#include <string>

#include "common/env.h"
#include "common/status.h"
#include "poi/poi_set.h"
#include "region/region_set.h"
#include "road/road_network.h"

namespace semitri::io {

[[nodiscard]] common::Status SaveRegions(const region::RegionSet& regions,
                           const std::string& path,
                           common::Env* env = nullptr);
[[nodiscard]] common::Result<region::RegionSet> LoadRegions(
    const std::string& path, common::Env* env = nullptr);

[[nodiscard]] common::Status SaveRoadNetwork(const road::RoadNetwork& roads,
                               const std::string& path,
                               common::Env* env = nullptr);
[[nodiscard]] common::Result<road::RoadNetwork> LoadRoadNetwork(
    const std::string& path, common::Env* env = nullptr);

// POIs serialize as two files: `path` (the POIs) and the category list
// at `categories_path`.
[[nodiscard]] common::Status SavePois(const poi::PoiSet& pois, const std::string& path,
                        const std::string& categories_path,
                        common::Env* env = nullptr);
[[nodiscard]] common::Result<poi::PoiSet> LoadPois(const std::string& path,
                                     const std::string& categories_path,
                                     common::Env* env = nullptr);

}  // namespace semitri::io

#endif  // SEMITRI_IO_WORLD_IO_H_
