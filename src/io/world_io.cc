#include "io/world_io.h"

#include <cmath>
#include <cstdint>
#include <map>
#include <vector>

#include "common/fault_injection.h"
#include "common/strings.h"

namespace semitri::io {

namespace {

// Loaded files are untrusted 3rd-party data: every numeric field goes
// through the no-throw common::Parse* helpers (which also reject
// nan/inf) and bad fields surface as Corruption, never as exceptions
// or out-of-range UB downstream.

common::Status CheckFinitePoint(const geo::Point& p, const char* what) {
  if (!std::isfinite(p.x) || !std::isfinite(p.y)) {
    return common::Status::InvalidArgument(
        common::StrFormat("%s has non-finite coordinates (%f, %f)", what,
                          p.x, p.y));
  }
  return common::Status::OK();
}

// Whole-file write through Env: the content is composed in memory and
// lands in one WriteStringToFile, so an ENOSPC/EIO partial write is
// reported instead of leaving a silently truncated world file behind.
common::Status WriteWorldFile(common::Env* env, const std::string& path,
                              const std::string& content) {
  if (SEMITRI_FAULT_FIRE("world_save") != common::FaultAction::kNone) {
    return common::Status::IoError("injected fault: world_save " + path);
  }
  common::Status wrote =
      env->WriteStringToFile(path, content, /*sync=*/false);
  if (!wrote.ok()) {
    return common::Status::IoError("write failed for " + path + ": " +
                                   wrote.message());
  }
  return common::Status::OK();
}

common::Result<std::vector<std::string>> ReadWorldLines(
    common::Env* env, const std::string& path) {
  if (SEMITRI_FAULT_FIRE("world_load") != common::FaultAction::kNone) {
    return common::Status::IoError("injected fault: world_load " + path);
  }
  std::string data;
  common::Status read = env->ReadFileToString(path, &data);
  if (!read.ok()) {
    return common::Status::IoError("cannot open " + path + ": " +
                                   read.message());
  }
  return common::Split(data, '\n');
}

std::string EncodeRing(const geo::Polygon& polygon) {
  std::vector<std::string> parts;
  for (const geo::Point& p : polygon.ring()) {
    parts.push_back(common::StrFormat("%.6f %.6f", p.x, p.y));
  }
  return common::Join(parts, ";");
}

common::Result<geo::Polygon> DecodeRing(const std::string& encoded) {
  std::vector<geo::Point> ring;
  for (const std::string& pair : common::Split(encoded, ';')) {
    std::vector<std::string> xy = common::Split(pair, ' ');
    geo::Point p;
    if (xy.size() != 2 || !common::ParseDouble(xy[0], &p.x) ||
        !common::ParseDouble(xy[1], &p.y)) {
      return common::Status::Corruption("bad ring fragment: " + pair);
    }
    ring.push_back(p);
  }
  return geo::Polygon(std::move(ring));
}

}  // namespace

common::Status SaveRegions(const region::RegionSet& regions,
                           const std::string& path, common::Env* env) {
  std::string out = "id,category,name,min_x,min_y,max_x,max_y,ring\n";
  for (size_t i = 0; i < regions.size(); ++i) {
    const region::SemanticRegion& r =
        regions.Get(static_cast<core::PlaceId>(i));
    SEMITRI_RETURN_IF_ERROR(CheckFinitePoint(r.bounds.min, "region bounds"));
    SEMITRI_RETURN_IF_ERROR(CheckFinitePoint(r.bounds.max, "region bounds"));
    out += common::StrFormat(
        "%lld,%d,%s,%.6f,%.6f,%.6f,%.6f,%s\n",
        static_cast<long long>(r.id), static_cast<int>(r.category),
        common::CsvEscape(r.name).c_str(), r.bounds.min.x, r.bounds.min.y,
        r.bounds.max.x, r.bounds.max.y,
        r.polygon.has_value()
            ? common::CsvEscape(EncodeRing(*r.polygon)).c_str()
            : "");
  }
  return WriteWorldFile(common::ResolveEnv(env), path, out);
}

common::Result<region::RegionSet> LoadRegions(const std::string& path,
                                              common::Env* env) {
  auto lines = ReadWorldLines(common::ResolveEnv(env), path);
  SEMITRI_RETURN_IF_ERROR(lines.status());
  region::RegionSet regions;
  for (size_t i = 1; i < lines->size(); ++i) {  // lines[0] is the header
    const std::string& line = (*lines)[i];
    if (line.empty()) continue;
    std::vector<std::string> f = common::CsvParseLine(line);
    int64_t category_raw = 0;
    if (f.size() != 8 || !common::ParseInt64(f[1], &category_raw)) {
      return common::Status::Corruption("bad regions row: " + line);
    }
    auto category = static_cast<region::LanduseCategory>(category_raw);
    if (f[7].empty()) {
      geo::BoundingBox box;
      if (!common::ParseDouble(f[3], &box.min.x) ||
          !common::ParseDouble(f[4], &box.min.y) ||
          !common::ParseDouble(f[5], &box.max.x) ||
          !common::ParseDouble(f[6], &box.max.y)) {
        return common::Status::Corruption("bad regions row: " + line);
      }
      regions.AddCell(box, category, f[2]);
    } else {
      common::Result<geo::Polygon> ring = DecodeRing(f[7]);
      if (!ring.ok()) return ring.status();
      regions.AddPolygon(std::move(*ring), category, f[2]);
    }
  }
  return regions;
}

common::Status SaveRoadNetwork(const road::RoadNetwork& roads,
                               const std::string& path, common::Env* env) {
  std::string out = "id,from,to,type,name,ax,ay,bx,by\n";
  for (const road::RoadSegment& s : roads.segments()) {
    SEMITRI_RETURN_IF_ERROR(CheckFinitePoint(s.shape.a, "road endpoint"));
    SEMITRI_RETURN_IF_ERROR(CheckFinitePoint(s.shape.b, "road endpoint"));
    out += common::StrFormat(
        "%lld,%lld,%lld,%d,%s,%.6f,%.6f,%.6f,%.6f\n",
        static_cast<long long>(s.id), static_cast<long long>(s.from),
        static_cast<long long>(s.to), static_cast<int>(s.type),
        common::CsvEscape(s.name).c_str(), s.shape.a.x, s.shape.a.y,
        s.shape.b.x, s.shape.b.y);
  }
  return WriteWorldFile(common::ResolveEnv(env), path, out);
}

common::Result<road::RoadNetwork> LoadRoadNetwork(const std::string& path,
                                                  common::Env* env) {
  auto lines = ReadWorldLines(common::ResolveEnv(env), path);
  SEMITRI_RETURN_IF_ERROR(lines.status());
  road::RoadNetwork roads;
  // Node ids in the file are dense but may appear in any order; map
  // original id -> created id (positions come with each segment row).
  std::map<road::NodeId, road::NodeId> node_map;
  auto intern_node = [&](road::NodeId original,
                         const geo::Point& position) {
    auto it = node_map.find(original);
    if (it != node_map.end()) return it->second;
    road::NodeId created = roads.AddNode(position);
    node_map.emplace(original, created);
    return created;
  };
  for (size_t i = 1; i < lines->size(); ++i) {  // lines[0] is the header
    const std::string& line = (*lines)[i];
    if (line.empty()) continue;
    std::vector<std::string> f = common::CsvParseLine(line);
    int64_t from_raw = 0;
    int64_t to_raw = 0;
    int64_t type_raw = 0;
    geo::Point a;
    geo::Point b;
    if (f.size() != 9 || !common::ParseInt64(f[1], &from_raw) ||
        !common::ParseInt64(f[2], &to_raw) ||
        !common::ParseInt64(f[3], &type_raw) ||
        !common::ParseDouble(f[5], &a.x) ||
        !common::ParseDouble(f[6], &a.y) ||
        !common::ParseDouble(f[7], &b.x) ||
        !common::ParseDouble(f[8], &b.y)) {
      return common::Status::Corruption("bad roads row: " + line);
    }
    road::NodeId from = intern_node(from_raw, a);
    road::NodeId to = intern_node(to_raw, b);
    roads.AddSegment(from, to, static_cast<road::RoadType>(type_raw),
                     f[4]);
  }
  return roads;
}

common::Status SavePois(const poi::PoiSet& pois, const std::string& path,
                        const std::string& categories_path,
                        common::Env* env) {
  common::Env* e = common::ResolveEnv(env);
  {
    std::string out = "id,name\n";
    for (size_t c = 0; c < pois.num_categories(); ++c) {
      out += common::StrFormat(
          "%zu,%s\n", c, common::CsvEscape(pois.category_names()[c]).c_str());
    }
    SEMITRI_RETURN_IF_ERROR(WriteWorldFile(e, categories_path, out));
  }
  std::string out = "id,category,name,x,y\n";
  for (const poi::Poi& p : pois.pois()) {
    SEMITRI_RETURN_IF_ERROR(CheckFinitePoint(p.position, "POI position"));
    out += common::StrFormat("%lld,%d,%s,%.6f,%.6f\n",
                             static_cast<long long>(p.id), p.category,
                             common::CsvEscape(p.name).c_str(),
                             p.position.x, p.position.y);
  }
  return WriteWorldFile(e, path, out);
}

common::Result<poi::PoiSet> LoadPois(const std::string& path,
                                     const std::string& categories_path,
                                     common::Env* env) {
  common::Env* e = common::ResolveEnv(env);
  std::vector<std::string> names;
  {
    auto lines = ReadWorldLines(e, categories_path);
    SEMITRI_RETURN_IF_ERROR(lines.status());
    for (size_t i = 1; i < lines->size(); ++i) {  // lines[0] is the header
      const std::string& line = (*lines)[i];
      if (line.empty()) continue;
      std::vector<std::string> f = common::CsvParseLine(line);
      if (f.size() != 2) {
        return common::Status::Corruption("bad categories row: " + line);
      }
      names.push_back(f[1]);
    }
  }
  if (names.empty()) {
    return common::Status::Corruption("no POI categories in " +
                                      categories_path);
  }
  poi::PoiSet pois(std::move(names));
  auto lines = ReadWorldLines(e, path);
  SEMITRI_RETURN_IF_ERROR(lines.status());
  for (size_t i = 1; i < lines->size(); ++i) {  // lines[0] is the header
    const std::string& line = (*lines)[i];
    if (line.empty()) continue;
    std::vector<std::string> f = common::CsvParseLine(line);
    int64_t category = 0;
    geo::Point position;
    if (f.size() != 5 || !common::ParseInt64(f[1], &category) ||
        !common::ParseDouble(f[3], &position.x) ||
        !common::ParseDouble(f[4], &position.y)) {
      return common::Status::Corruption("bad pois row: " + line);
    }
    if (category < 0 ||
        static_cast<size_t>(category) >= pois.num_categories()) {
      return common::Status::Corruption("POI category out of range: " +
                                        line);
    }
    pois.Add(position, static_cast<int>(category), f[2]);
  }
  return pois;
}

}  // namespace semitri::io
