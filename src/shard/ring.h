#ifndef SEMITRI_SHARD_RING_H_
#define SEMITRI_SHARD_RING_H_

// Consistent-hash ring with virtual nodes: the object -> shard
// placement function of the sharded serving runtime (shard/cluster.h).
//
// Each member shard contributes `vnodes_per_shard` points on a 64-bit
// ring; an object hashes to a ring position and is owned by the shard
// of the next point clockwise. Placement is a pure function of
// (seed, member set) — two processes configured identically route
// identically without coordination, which is what lets tools/shardd
// partition a feed among worker processes up front. Adding or removing
// one shard only moves the keys whose successor point changed
// (~1/num_shards of them); everything else stays put, which is what
// keeps rebalancing migrations proportional instead of total.
//
// Not internally synchronized: shard::ShardCluster mutates the ring
// under its own lock, and read-only concurrent use is safe.

#include <cstdint>
#include <set>
#include <utility>
#include <vector>

#include "core/types.h"

namespace semitri::shard {

// Index into ShardCluster's runtime table (dense, small).
using ShardId = size_t;

struct RingConfig {
  // Ring points per member. More points -> smoother balance, slower
  // membership changes (lookup stays O(log points)).
  size_t vnodes_per_shard = 64;
  // Placement seed; every process of one deployment must agree on it.
  uint64_t seed = 0x5EED1E55u;
};

class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(RingConfig config = {});

  // Idempotent membership changes.
  void AddShard(ShardId shard);
  void RemoveShard(ShardId shard);

  bool empty() const { return members_.empty(); }
  size_t num_shards() const { return members_.size(); }
  bool Contains(ShardId shard) const { return members_.count(shard) > 0; }
  // Ascending member list.
  std::vector<ShardId> Shards() const;

  // The owning shard. The ring must be non-empty (checked).
  ShardId ShardForKey(uint64_t key) const;
  ShardId ShardForObject(core::ObjectId object_id) const;

 private:
  RingConfig config_;
  std::set<ShardId> members_;
  // (ring position, shard), sorted; rebuilt on membership change.
  std::vector<std::pair<uint64_t, ShardId>> points_;
};

}  // namespace semitri::shard

#endif  // SEMITRI_SHARD_RING_H_
