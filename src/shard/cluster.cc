#include "shard/cluster.h"

#include <string>
#include <utility>

#include "common/check.h"
#include "common/env.h"
#include "common/fault_injection.h"
#include "common/serial.h"

namespace semitri::shard {

namespace {

// What a promotion abandons with the old primary directory: sealed
// segments the standby never (fully) received, and the active WAL
// tail. This is the bounded loss the self-healing ledger reports.
struct AbandonedLoss {
  size_t segments = 0;
  size_t tail_bytes = 0;
};

AbandonedLoss ScanAbandonedLoss(common::Env* env,
                                const std::string& primary_dir,
                                const std::string& standby_dir) {
  AbandonedLoss loss;
  for (const std::string& name :
       store::SemanticTrajectoryStore::ListSealedWalSegments(primary_dir,
                                                             env)) {
    auto src_size = env->FileSize(primary_dir + "/" + name);
    auto dst_size = env->FileSize(standby_dir + "/" + name);
    bool shipped = src_size.ok() && dst_size.ok() && *dst_size == *src_size;
    if (!shipped) ++loss.segments;
  }
  auto tail = env->FileSize(primary_dir + "/wal.log");
  if (tail.ok()) loss.tail_bytes = static_cast<size_t>(*tail);
  return loss;
}

ShardRuntimeConfig MakeShardConfig(const ShardClusterConfig& cluster,
                                   ShardId shard) {
  ShardRuntimeConfig config;
  config.shard_id = shard;
  config.durable_dir = cluster.base_dir + "/shard-" + std::to_string(shard);
  if (cluster.ship_wal) {
    config.standby_dir =
        cluster.base_dir + "/standby-" + std::to_string(shard);
  }
  config.manager = cluster.manager;
  config.pipeline = cluster.pipeline;
  config.sync_every_put = cluster.sync_every_put;
  config.env = cluster.env;
  config.scrub_files_per_cycle = cluster.scrub_files_per_cycle;
  return config;
}

}  // namespace

ShardCluster::ShardCluster(const region::RegionSet* regions,
                           const road::RoadNetwork* roads,
                           const poi::PoiSet* pois, ShardClusterConfig config,
                           const common::Clock* clock)
    : regions_(regions),
      roads_(roads),
      pois_(pois),
      clock_(clock),
      config_(std::move(config)),
      ring_(config_.ring) {
  detector_ = std::make_unique<FailureDetector>(config_.detector, clock_);
  feed_retry_policy_ = common::RetryPolicy(config_.feed_retry, clock_);
  retry_feeds_enabled_ = config_.retry_feeds;
}

common::Result<std::unique_ptr<ShardCluster>> ShardCluster::Open(
    const region::RegionSet* regions, const road::RoadNetwork* roads,
    const poi::PoiSet* pois, ShardClusterConfig config,
    const common::Clock* clock) {
  SEMITRI_CHECK(config.num_shards > 0) << "a cluster needs at least one shard";
  SEMITRI_CHECK(!config.base_dir.empty()) << "a cluster needs a base_dir";
  std::unique_ptr<ShardCluster> cluster(
      new ShardCluster(regions, roads, pois, std::move(config), clock));
  std::lock_guard<std::mutex> lock(cluster->mutex_);
  for (size_t i = 0; i < cluster->config_.num_shards; ++i) {
    ShardRuntimeConfig shard_config = MakeShardConfig(cluster->config_, i);
    auto runtime =
        ShardRuntime::Open(regions, roads, pois, shard_config, clock);
    SEMITRI_RETURN_IF_ERROR(runtime.status());
    cluster->shard_configs_.push_back(std::move(shard_config));
    cluster->runtimes_.emplace_back(std::move(runtime.value()));
    cluster->failover_epochs_.push_back(0);
    cluster->ring_.AddShard(i);
  }
  return cluster;
}

ShardId ShardCluster::OwnerLocked(core::ObjectId object_id) const {
  auto it = placement_.find(object_id);
  if (it != placement_.end()) return it->second;
  return ring_.ShardForObject(object_id);
}

std::shared_ptr<ShardRuntime> ShardCluster::RouteLocked(
    core::ObjectId object_id) {
  ShardId owner = OwnerLocked(object_id);
  auto [it, inserted] = placement_.try_emplace(object_id, owner);
  if (inserted) history_[object_id].push_back(owner);
  return runtimes_[it->second];
}

common::Result<stream::AnnotationSession::FeedResult> ShardCluster::Feed(
    core::ObjectId object_id, const core::GpsPoint& fix,
    const common::ExecControl* exec) {
  common::Result<stream::AnnotationSession::FeedResult> result =
      common::Status::Unavailable("feed not attempted");
  auto attempt = [&]() -> common::Status {
    std::shared_ptr<ShardRuntime> runtime;
    {
      std::lock_guard<std::mutex> lock(mutex_);
      runtime = RouteLocked(object_id);
      if (runtime == nullptr) {
        ++feeds_rejected_dead_shard_;
        result = common::Status::Unavailable("owning shard is down");
        return result.status();
      }
    }
    // Outside the cluster lock: feeds for objects on other shards (and
    // other objects of this shard) proceed in parallel; the runtime's
    // own manager/store synchronize internally. An in-flight feed
    // keeps the runtime alive across a concurrent KillShard/Failover
    // via the shared_ptr.
    result = runtime->Feed(object_id, fix);
    return result.status();
  };
  if (!retry_feeds_enabled_) {
    // semitri-lint: allow(unchecked-status) — `result` carries the
    // attempt's status to the caller.
    (void)attempt();
    return result;
  }
  common::RetryPolicy::Outcome outcome = feed_retry_policy_.Run(
      attempt, exec, static_cast<uint64_t>(object_id),
      // A feed waiting out a backoff is the cluster's idle moment:
      // drive detection (and auto-failover) forward so the next
      // attempt has a promoted runtime to land on. Under a FakeClock
      // the backoff sleep advances time, which is what schedules the
      // next probe — one retrying feed walks the whole
      // detect -> declare -> promote -> recover chain.
      [this]() {
        // semitri-lint: allow(unchecked-status) — best-effort tick;
        // the retry outcome carries the feed's own status.
        (void)Tick();
      });
  if (outcome.attempts > 1) {
    std::lock_guard<std::mutex> lock(mutex_);
    ++feeds_retried_;
    if (outcome.recovered) ++feeds_recovered_;
  }
  SEMITRI_RETURN_IF_ERROR(outcome.status);
  return result;
}

common::Status ShardCluster::CloseObject(core::ObjectId object_id) {
  std::shared_ptr<ShardRuntime> runtime;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    runtime = runtimes_[OwnerLocked(object_id)];
    if (runtime == nullptr) {
      return common::Status::Unavailable("owning shard is down");
    }
  }
  return runtime->CloseObject(object_id);
}

common::Status ShardCluster::CloseAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  common::Status first = common::Status::OK();
  for (const std::shared_ptr<ShardRuntime>& runtime : runtimes_) {
    if (runtime == nullptr) continue;
    common::Status status = runtime->CloseAll();
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

ShardId ShardCluster::OwnerOf(core::ObjectId object_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return OwnerLocked(object_id);
}

common::Status ShardCluster::MigrateObject(core::ObjectId object_id,
                                           ShardId dest) {
  std::lock_guard<std::mutex> lock(mutex_);
  return MigrateLocked(object_id, dest);
}

common::Status ShardCluster::MigrateLocked(core::ObjectId object_id,
                                           ShardId dest) {
  if (dest >= runtimes_.size()) {
    return common::Status::InvalidArgument("no such destination shard");
  }
  ShardId src_id = OwnerLocked(object_id);
  if (src_id == dest) return common::Status::OK();
  std::shared_ptr<ShardRuntime> src = runtimes_[src_id];
  std::shared_ptr<ShardRuntime> dst = runtimes_[dest];
  if (src == nullptr || dst == nullptr) {
    ++migrations_aborted_;
    return common::Status::Unavailable(
        "source or destination shard is down");
  }

  // 1. pack — on failure the source still owns the session, untouched.
  common::Result<std::string> packed = src->PackForMigration(object_id);
  if (!packed.ok()) {
    if (packed.status().code() == common::StatusCode::kNotFound) {
      // The object has no state on the source (never fed or fully
      // merged away): a pure routing flip.
      placement_[object_id] = dest;
      history_[object_id].push_back(dest);
      ++migrations_completed_;
      return common::Status::OK();
    }
    ++migrations_aborted_;
    return packed.status();
  }

  // 2. drain: the source finalizes its open trajectory into its own
  // durable store (truncated rows the destination's completed
  // trajectory overwrites at merge time) and advances its resume
  // cursor. From here the packed bytes are the only live copy; the
  // routing still points at the source, and rollback re-adopts there.
  // Even a failed flush retires the session (counted on the source as
  // a data-loss eviction) and the packed copy supersedes it either
  // way, so the drain status is deliberately dropped.
  (void)src->CloseObject(object_id);

  // Rollback bypasses the migration_unpack fault site: undoing an
  // injected handoff failure must not cascade through a second
  // injection. If the re-adopt itself fails the object is still
  // recoverable on the source alone — the drain landed its rows
  // durably and left a resume cursor there.
  auto rollback = [&]() {
    common::StateReader reader(*packed);
    // semitri-lint: allow(unchecked-status) — best-effort rollback;
    // the source's durable rows + resume cursor already guarantee
    // single-shard recoverability.
    (void)src->manager()->AdoptSession(object_id, &reader);
  };

  // 3. handoff — the packed bytes cross shard boundaries.
  if (SEMITRI_FAULT_FIRE("migration_handoff") != common::FaultAction::kNone) {
    rollback();
    ++migrations_aborted_;
    return common::Status::Unavailable("injected migration handoff failure");
  }

  // 4. adopt — on failure nothing was installed on the destination.
  common::Status adopted = dst->AdoptFromMigration(object_id, *packed);
  if (!adopted.ok()) {
    rollback();
    ++migrations_aborted_;
    return adopted;
  }

  // Commit: the destination owns; reconnects route there.
  placement_[object_id] = dest;
  history_[object_id].push_back(dest);
  ++migrations_completed_;
  return common::Status::OK();
}

common::Result<size_t> ShardCluster::AddShard() {
  std::lock_guard<std::mutex> lock(mutex_);
  ShardId id = shard_configs_.size();
  ShardRuntimeConfig shard_config = MakeShardConfig(config_, id);
  auto runtime =
      ShardRuntime::Open(regions_, roads_, pois_, shard_config, clock_);
  SEMITRI_RETURN_IF_ERROR(runtime.status());
  shard_configs_.push_back(std::move(shard_config));
  runtimes_.emplace_back(std::move(runtime.value()));
  failover_epochs_.push_back(0);
  ring_.AddShard(id);
  return RebalanceLocked();
}

common::Result<size_t> ShardCluster::RemoveShard(ShardId shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shard >= runtimes_.size()) {
    return common::Status::InvalidArgument("no such shard");
  }
  if (!ring_.Contains(shard)) {
    return common::Status::FailedPrecondition("shard already removed");
  }
  if (ring_.num_shards() <= 1) {
    return common::Status::FailedPrecondition("cannot remove the last shard");
  }
  if (runtimes_[shard] == nullptr) {
    return common::Status::Unavailable(
        "shard is down; restart it before draining");
  }
  ring_.RemoveShard(shard);
  // The drained runtime stays open: its store keeps the rows earlier
  // ownership stints produced, which MergeStores still needs.
  return RebalanceLocked();
}

common::Result<size_t> ShardCluster::Rebalance() {
  std::lock_guard<std::mutex> lock(mutex_);
  return RebalanceLocked();
}

common::Result<size_t> ShardCluster::RebalanceLocked() {
  // Snapshot the disagreement set first: migrations mutate placement_.
  std::vector<std::pair<core::ObjectId, ShardId>> moves;
  for (const auto& [object, owner] : placement_) {
    ShardId want = ring_.ShardForObject(object);
    if (want != owner) moves.emplace_back(object, want);
  }
  size_t moved = 0;
  for (const auto& [object, want] : moves) {
    SEMITRI_RETURN_IF_ERROR(MigrateLocked(object, want));
    ++moved;
  }
  return moved;
}

common::Status ShardCluster::KillShard(ShardId shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shard >= runtimes_.size()) {
    return common::Status::InvalidArgument("no such shard");
  }
  if (runtimes_[shard] == nullptr) {
    return common::Status::FailedPrecondition("shard already down");
  }
  // No flush, no close: dropping the runtime is the in-process SIGKILL.
  // In-flight feeds holding the shared_ptr complete against the dying
  // instance; new feeds route Unavailable.
  runtimes_[shard].reset();
  ++shard_kills_;
  return common::Status::OK();
}

common::Status ShardCluster::RestartShard(ShardId shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shard >= runtimes_.size()) {
    return common::Status::InvalidArgument("no such shard");
  }
  if (runtimes_[shard] != nullptr) {
    return common::Status::FailedPrecondition("shard is not down");
  }
  auto runtime = ShardRuntime::Open(regions_, roads_, pois_,
                                    shard_configs_[shard], clock_);
  SEMITRI_RETURN_IF_ERROR(runtime.status());
  runtimes_[shard] = std::move(runtime.value());
  ++shard_restarts_;
  // The replacement starts with a clean probe streak: a restart is an
  // operator-visible recovery just like a promotion.
  detector_->Forget(shard);
  return common::Status::OK();
}

common::Result<size_t> ShardCluster::Tick() {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<bool> probe_ok(runtimes_.size(), false);
  for (ShardId id = 0; id < runtimes_.size(); ++id) {
    // The in-process probe: is the runtime slot occupied? (Process
    // isolation makes this "did the worker answer" in tools/shardd;
    // richer signals arrive via ObserveHealth.)
    probe_ok[id] = runtimes_[id] != nullptr;
  }
  return TickLocked(probe_ok);
}

common::Result<size_t> ShardCluster::ObserveHealth(
    const core::HealthSnapshot& snapshot) {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<bool> probe_ok(runtimes_.size(), false);
  for (const core::ShardHealth& s : snapshot.shards) {
    if (s.shard_id < probe_ok.size()) probe_ok[s.shard_id] = s.alive;
  }
  return TickLocked(probe_ok);
}

common::Result<size_t> ShardCluster::TickLocked(
    const std::vector<bool>& probe_ok) {
  size_t failovers = 0;
  common::Status first = common::Status::OK();
  // One integrity-scrub increment per live shard per tick: the tick
  // loop is the cluster's idle heartbeat, so corruption is found in
  // steady state, not at the next failover. Scrub I/O trouble is
  // best-effort — it never blocks failure detection.
  for (const std::shared_ptr<ShardRuntime>& runtime : runtimes_) {
    if (runtime != nullptr) (void)runtime->ScrubTick();
  }
  for (ShardId id = 0; id < runtimes_.size(); ++id) {
    if (!detector_->ProbeDue(id)) continue;
    bool ok = id < probe_ok.size() && probe_ok[id];
    bool was_dead = detector_->StateOf(id) == Liveness::kDead;
    Liveness state = detector_->Observe(id, ok);
    if (state != Liveness::kDead) continue;
    bool newly_dead = !was_dead;
    if (newly_dead) {
      time_to_detect_seconds_.push_back(
          detector_->observation(id).last_time_to_detect_seconds);
    }
    if (!config_.auto_failover) continue;
    // Promote on the declaration edge, and keep re-trying on later
    // ticks while the shard stays declared dead with no runtime (a
    // failed promotion must not wedge the slot forever).
    if (!newly_dead && runtimes_[id] != nullptr) continue;
    common::Status promoted = FailoverLocked(id);
    if (promoted.ok()) {
      ++failovers;
    } else if (first.ok()) {
      first = promoted;
    }
  }
  SEMITRI_RETURN_IF_ERROR(first);
  return failovers;
}

common::Status ShardCluster::FailoverShard(ShardId shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  return FailoverLocked(shard);
}

common::Status ShardCluster::FailoverLocked(ShardId shard) {
  if (shard >= runtimes_.size()) {
    return common::Status::InvalidArgument("no such shard");
  }
  const ShardRuntimeConfig& current = shard_configs_[shard];
  if (current.standby_dir.empty()) {
    return common::Status::FailedPrecondition(
        "shard has no standby to promote (ship_wal disabled)");
  }
  int64_t started_nanos = cluster_clock()->NowNanos();
  if (runtimes_[shard] != nullptr) {
    // Fence: a promotion must never leave two writers for one
    // placement. A false-positive detection drops a live runtime here
    // — its unflushed work joins the ledgered loss, and the durable
    // directory it abandons stays on disk untouched.
    runtimes_[shard].reset();
    ++shards_fenced_;
  }
  if (SEMITRI_FAULT_FIRE("failover_promote") != common::FaultAction::kNone) {
    // Crash between fence and promote: the shard is down with both
    // directories intact — retry the failover, or RestartShard from
    // the old primary. Either path leaves exactly one recoverable
    // owner per object.
    ++failovers_aborted_;
    return common::Status::Unavailable("injected failover promote failure");
  }
  AbandonedLoss loss = ScanAbandonedLoss(common::ResolveEnv(config_.env),
                                         current.durable_dir,
                                         current.standby_dir);
  ShardRuntimeConfig promoted = current;
  promoted.durable_dir = current.standby_dir;
  size_t epoch = failover_epochs_[shard] + 1;
  promoted.standby_dir = config_.base_dir + "/standby-" +
                         std::to_string(shard) + "-e" + std::to_string(epoch);
  // Opening the promoted runtime recovers the shipped segments and
  // restores the shipped manager checkpoint: sessions resume
  // mid-stream at the replication point, rejecting re-fed fixes they
  // already consumed.
  auto runtime = ShardRuntime::Open(regions_, roads_, pois_, promoted, clock_);
  if (!runtime.ok()) {
    // Directories unchanged; the failover can be retried.
    ++failovers_aborted_;
    return runtime.status();
  }
  shard_configs_[shard] = std::move(promoted);
  runtimes_[shard] = std::move(runtime.value());
  failover_epochs_[shard] = epoch;
  ++failovers_completed_;
  failover_lost_segments_ += loss.segments;
  failover_lost_tail_bytes_ += loss.tail_bytes;
  time_to_failover_seconds_.push_back(
      static_cast<double>(cluster_clock()->NowNanos() - started_nanos) *
      1e-9);
  detector_->Forget(shard);
  return common::Status::OK();
}

Liveness ShardCluster::ShardLiveness(ShardId shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return detector_->StateOf(shard);
}

common::Status ShardCluster::CheckpointShard(ShardId shard) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (shard >= runtimes_.size() || runtimes_[shard] == nullptr) {
    return common::Status::Unavailable("shard is down");
  }
  return runtimes_[shard]->Checkpoint();
}

common::Status ShardCluster::CheckpointAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  common::Status first = common::Status::OK();
  for (const std::shared_ptr<ShardRuntime>& runtime : runtimes_) {
    if (runtime == nullptr) continue;
    common::Status status = runtime->Checkpoint();
    if (!status.ok() && first.ok()) first = status;
  }
  return first;
}

common::Result<WalShipper::ShipStats> ShardCluster::SealAndShipAll() {
  std::lock_guard<std::mutex> lock(mutex_);
  WalShipper::ShipStats total;
  for (const std::shared_ptr<ShardRuntime>& runtime : runtimes_) {
    if (runtime == nullptr) continue;
    auto shipped = runtime->SealAndShip();
    SEMITRI_RETURN_IF_ERROR(shipped.status());
    total.segments_shipped += shipped->segments_shipped;
    total.bytes_shipped += shipped->bytes_shipped;
    total.reshipped_corrupt_segments += shipped->reshipped_corrupt_segments;
  }
  return total;
}

core::HealthSnapshot ShardCluster::Health() const {
  std::lock_guard<std::mutex> lock(mutex_);
  core::HealthSnapshot out;
  out.failovers_completed = failovers_completed_;
  out.failovers_aborted = failovers_aborted_;
  out.feeds_retried = feeds_retried_;
  out.feeds_recovered = feeds_recovered_;
  for (ShardId id = 0; id < runtimes_.size(); ++id) {
    if (runtimes_[id] == nullptr) {
      core::ShardHealth dead;
      dead.shard_id = id;
      dead.alive = false;
      FillDetectorHealth(id, &dead);
      out.shards.push_back(dead);
      continue;
    }
    out.shards.push_back(runtimes_[id]->ShardHealthInfo());
    FillDetectorHealth(id, &out.shards.back());
    core::HealthSnapshot shard = runtimes_[id]->Health();
    out.sessions.used += shard.sessions.used;
    out.sessions.limit += shard.sessions.limit;
    out.buffered_fixes.used += shard.buffered_fixes.used;
    out.buffered_fixes.limit += shard.buffered_fixes.limit;
    out.buffered_bytes.used += shard.buffered_bytes.used;
    out.buffered_bytes.limit += shard.buffered_bytes.limit;
    out.sessions_shed += shard.sessions_shed;
    out.admission_rejected_sessions += shard.admission_rejected_sessions;
    out.rate_limited_fixes += shard.rate_limited_fixes;
    out.overload_rejected_fixes += shard.overload_rejected_fixes;
    out.admission_deferred += shard.admission_deferred;
    out.admission_timeouts += shard.admission_timeouts;
    out.evictions_with_data_loss += shard.evictions_with_data_loss;
    out.watchdog_force_cancels += shard.watchdog_force_cancels;
    if (shard.storage_degraded && !out.storage_degraded) {
      out.storage_degraded = true;
      out.storage_fault = shard.storage_fault;
    }
    out.scrub_files_scanned += shard.scrub_files_scanned;
    out.scrub_corrupt_detected += shard.scrub_corrupt_detected;
    out.scrub_repaired += shard.scrub_repaired;
    out.scrub_quarantined += shard.scrub_quarantined;
    out.scrub_cycles_completed += shard.scrub_cycles_completed;
  }
  return out;
}

void ShardCluster::FillDetectorHealth(ShardId shard,
                                      core::ShardHealth* health) const {
  FailureDetector::ShardObservation obs = detector_->observation(shard);
  health->suspect = obs.state == Liveness::kSuspect;
  health->consecutive_probe_failures = obs.consecutive_failures;
  health->failover_epoch =
      shard < failover_epochs_.size() ? failover_epochs_[shard] : 0;
}

ShardCluster::Stats ShardCluster::stats() const {
  std::lock_guard<std::mutex> lock(mutex_);
  Stats out;
  out.migrations_completed = migrations_completed_;
  out.migrations_aborted = migrations_aborted_;
  out.shard_kills = shard_kills_;
  out.shard_restarts = shard_restarts_;
  out.feeds_rejected_dead_shard = feeds_rejected_dead_shard_;
  out.failovers_completed = failovers_completed_;
  out.failovers_aborted = failovers_aborted_;
  out.shards_fenced = shards_fenced_;
  out.detector_deaths_declared = detector_->deaths_declared();
  out.feeds_retried = feeds_retried_;
  out.feeds_recovered = feeds_recovered_;
  out.failover_lost_segments = failover_lost_segments_;
  out.failover_lost_tail_bytes = failover_lost_tail_bytes_;
  out.time_to_detect_seconds = time_to_detect_seconds_;
  out.time_to_failover_seconds = time_to_failover_seconds_;
  return out;
}

std::vector<ShardId> ShardCluster::LiveSessionShards(
    core::ObjectId object_id) const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<ShardId> owners;
  for (ShardId id = 0; id < runtimes_.size(); ++id) {
    if (runtimes_[id] != nullptr &&
        runtimes_[id]->manager()->HasLiveSession(object_id)) {
      owners.push_back(id);
    }
  }
  return owners;
}

common::Status ShardCluster::MergeStores(
    store::SemanticTrajectoryStore* out) const {
  std::lock_guard<std::mutex> lock(mutex_);
  const core::TrajectoryId block = config_.manager.ids_per_object;
  // Killed shards are read by recovering scratch stores from their
  // durable directories (read-only: no Put ever touches them).
  std::map<ShardId, std::unique_ptr<store::SemanticTrajectoryStore>> scratch;
  for (const auto& [object, owners] : history_) {
    for (ShardId owner : owners) {
      const store::SemanticTrajectoryStore* src = nullptr;
      if (runtimes_[owner] != nullptr) {
        src = runtimes_[owner]->store();
      } else {
        auto it = scratch.find(owner);
        if (it == scratch.end()) {
          auto recovered_store =
              std::make_unique<store::SemanticTrajectoryStore>();
          auto recovered =
              recovered_store->Recover(shard_configs_[owner].durable_dir);
          SEMITRI_RETURN_IF_ERROR(recovered.status());
          it = scratch.emplace(owner, std::move(recovered_store)).first;
        }
        src = it->second.get();
      }
      // Copy this object's id-block rows; keyed overwrites make later
      // owners authoritative for trajectories both touched.
      for (core::TrajectoryId id : src->ListTrajectories()) {
        if (id / block != object) continue;
        auto raw = src->GetRawTrajectory(id);
        if (raw.ok()) {
          SEMITRI_RETURN_IF_ERROR(out->PutRawTrajectory(*raw));
        }
        auto episodes = src->GetEpisodes(id);
        if (episodes.ok()) {
          SEMITRI_RETURN_IF_ERROR(out->PutEpisodes(id, *episodes));
        }
        for (const std::string& interp : src->ListInterpretations(id)) {
          auto annotated = src->GetInterpretation(id, interp);
          if (annotated.ok()) {
            SEMITRI_RETURN_IF_ERROR(out->PutInterpretation(*annotated));
          }
        }
      }
    }
  }
  return common::Status::OK();
}

size_t ShardCluster::num_shards() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return runtimes_.size();
}

std::shared_ptr<ShardRuntime> ShardCluster::runtime(ShardId shard) const {
  std::lock_guard<std::mutex> lock(mutex_);
  return shard < runtimes_.size() ? runtimes_[shard] : nullptr;
}

}  // namespace semitri::shard
