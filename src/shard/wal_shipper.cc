#include "shard/wal_shipper.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <utility>

#include "common/fault_injection.h"
#include "store/semantic_trajectory_store.h"
#include "store/wal.h"

namespace semitri::shard {

namespace {

namespace fs = std::filesystem;

common::Status CopyAtomic(const std::string& from, const std::string& to) {
  std::string data;
  {
    std::ifstream in(from, std::ios::binary);
    if (!in) return common::Status::IoError("cannot read " + from);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    data = buffer.str();
  }
  std::string tmp = to + ".tmp";
  int fd = ::open(tmp.c_str(), O_WRONLY | O_CREAT | O_TRUNC, 0644);
  if (fd < 0) {
    return common::Status::IoError("cannot open " + tmp + ": " +
                                   std::strerror(errno));
  }
  size_t written = 0;
  while (written < data.size()) {
    ssize_t n = ::write(fd, data.data() + written, data.size() - written);
    if (n < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      return common::Status::IoError("write failed for " + tmp);
    }
    written += static_cast<size_t>(n);
  }
  if (::fsync(fd) != 0) {
    ::close(fd);
    return common::Status::IoError("fsync failed for " + tmp);
  }
  ::close(fd);
  std::error_code ec;
  fs::rename(tmp, to, ec);
  if (ec) return common::Status::IoError("cannot commit " + to);
  return common::Status::OK();
}

size_t FileSize(const std::string& path) {
  std::error_code ec;
  uintmax_t size = fs::file_size(path, ec);
  return ec ? 0 : static_cast<size_t>(size);
}

// CRC frame scan: true iff every frame in the copy is intact to the
// end of the file. A sealed segment is a cleanly closed WAL, so any
// torn tail in the *copy* means the copy is corrupt.
bool SegmentIntact(const std::string& path) {
  auto scanned = store::ReplayWal(
      path,
      [](store::WalRecordType, std::string_view) {
        return common::Status::OK();
      },
      /*truncate_torn_tail=*/false);
  return scanned.ok() && scanned->torn_bytes_truncated == 0;
}

}  // namespace

WalShipper::WalShipper(std::string source_dir, std::string standby_dir)
    : source_dir_(std::move(source_dir)),
      standby_dir_(std::move(standby_dir)) {}

common::Result<WalShipper::ShipStats> WalShipper::ShipSealedSegments() {
  if (dead_) {
    return common::Status::IoError("wal shipper dead after simulated crash");
  }
  common::FaultAction action = SEMITRI_FAULT_FIRE("wal_ship");
  if (action == common::FaultAction::kCrash) {
    dead_ = true;
    return common::Status::IoError("simulated crash during wal ship");
  }
  if (action == common::FaultAction::kFail) {
    return common::Status::IoError("injected wal ship failure");
  }

  std::error_code ec;
  fs::create_directories(standby_dir_, ec);
  if (ec) {
    return common::Status::IoError("cannot create standby " + standby_dir_);
  }

  ShipStats stats;
  for (const std::string& name :
       store::SemanticTrajectoryStore::ListSealedWalSegments(source_dir_)) {
    std::string src = source_dir_ + "/" + name;
    std::string dst = standby_dir_ + "/" + name;
    size_t size = FileSize(src);
    // Sealed segments are immutable, so same-name-same-size means
    // already shipped — but only once the copy's CRC frames check out
    // (a prior crash or bit rot can leave a same-size corrupt copy).
    if (fs::exists(dst, ec) && FileSize(dst) == size) {
      if (verified_.count(name) != 0) continue;
      if (SegmentIntact(dst)) {
        verified_.insert(name);
        continue;
      }
      ++stats.reshipped_corrupt_segments;
      // Fall through and ship over the corrupt copy.
    }
    SEMITRI_RETURN_IF_ERROR(CopyAtomic(src, dst));
    verified_.insert(name);
    ++stats.segments_shipped;
    stats.bytes_shipped += size;
  }
  total_segments_ += stats.segments_shipped;
  total_bytes_ += stats.bytes_shipped;
  total_reshipped_ += stats.reshipped_corrupt_segments;
  return stats;
}

common::Status WalShipper::ShipSidecarFile(const std::string& filename) {
  if (dead_) {
    return common::Status::IoError("wal shipper dead after simulated crash");
  }
  std::string src = source_dir_ + "/" + filename;
  std::error_code ec;
  if (!fs::exists(src, ec)) {
    return common::Status::NotFound("no sidecar " + src);
  }
  fs::create_directories(standby_dir_, ec);
  if (ec) {
    return common::Status::IoError("cannot create standby " + standby_dir_);
  }
  // Sidecars mutate in place (the manager checkpoint is rewritten every
  // Checkpoint()), so no skip check: always copy.
  SEMITRI_RETURN_IF_ERROR(CopyAtomic(src, standby_dir_ + "/" + filename));
  ++total_sidecars_;
  return common::Status::OK();
}

WalShipper::Lag WalShipper::CurrentLag() const {
  Lag lag;
  std::error_code ec;
  for (const std::string& name :
       store::SemanticTrajectoryStore::ListSealedWalSegments(source_dir_)) {
    std::string src = source_dir_ + "/" + name;
    std::string dst = standby_dir_ + "/" + name;
    size_t size = FileSize(src);
    if (fs::exists(dst, ec) && FileSize(dst) == size) continue;
    ++lag.segments;
    lag.bytes += size;
  }
  return lag;
}

}  // namespace semitri::shard
