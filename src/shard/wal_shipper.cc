#include "shard/wal_shipper.h"

#include <utility>

#include "common/fault_injection.h"
#include "store/semantic_trajectory_store.h"
#include "store/wal.h"

namespace semitri::shard {

namespace {

constexpr char kTmpSuffix[] = ".tmp";

bool HasTmpSuffix(const std::string& name) {
  constexpr size_t kLen = sizeof(kTmpSuffix) - 1;
  return name.size() > kLen &&
         name.compare(name.size() - kLen, kLen, kTmpSuffix) == 0;
}

size_t FileSizeOrZero(common::Env* env, const std::string& path) {
  auto size = env->FileSize(path);
  return size.ok() ? static_cast<size_t>(*size) : 0;
}

// CRC frame scan: true iff every frame in the copy is intact to the
// end of the file. A sealed segment is a cleanly closed WAL, so any
// torn tail in the *copy* means the copy is corrupt.
bool SegmentIntact(common::Env* env, const std::string& path) {
  auto scanned = store::ReplayWal(
      path,
      [](store::WalRecordType, std::string_view) {
        return common::Status::OK();
      },
      /*truncate_torn_tail=*/false, env);
  return scanned.ok() && scanned->torn_bytes_truncated == 0;
}

}  // namespace

WalShipper::WalShipper(std::string source_dir, std::string standby_dir,
                       common::Env* env)
    : env_(common::ResolveEnv(env)),
      source_dir_(std::move(source_dir)),
      standby_dir_(std::move(standby_dir)) {}

void WalShipper::SweepTmpOrphans() {
  if (swept_orphans_) return;
  swept_orphans_ = true;
  auto names = env_->ListDir(standby_dir_);
  if (!names.ok()) return;
  for (const std::string& name : *names) {
    if (!HasTmpSuffix(name)) continue;
    if (env_->RemoveFile(standby_dir_ + "/" + name).ok()) {
      ++total_tmp_orphans_;
    }
  }
}

common::Status WalShipper::CopyAtomic(const std::string& from,
                                      const std::string& to) {
  std::string data;
  {
    common::Status read = env_->ReadFileToString(from, &data);
    if (!read.ok()) {
      return common::Status::IoError("cannot read " + from + ": " +
                                     read.message());
    }
  }
  std::string tmp = to + kTmpSuffix;
  common::Status wrote = env_->WriteStringToFile(tmp, data, /*sync=*/true);
  if (wrote.ok()) {
    wrote = env_->RenameFile(tmp, to);
    if (!wrote.ok()) {
      wrote = common::Status::IoError("cannot commit " + to + ": " +
                                      wrote.message());
    }
  }
  if (!wrote.ok()) {
    // A failed copy must not leave its staging file behind — an
    // accumulation of orphaned tmps under ENOSPC makes the full disk
    // worse, and a later same-name ship must start clean. Best-effort:
    // a failed remove is caught by the next startup sweep.
    if (env_->FileExists(tmp) && env_->RemoveFile(tmp).ok()) {
      ++total_tmp_orphans_;
    }
    return wrote;
  }
  return common::Status::OK();
}

common::Result<WalShipper::ShipStats> WalShipper::ShipSealedSegments() {
  if (dead_) {
    return common::Status::IoError("wal shipper dead after simulated crash");
  }
  common::FaultAction action = SEMITRI_FAULT_FIRE("wal_ship");
  if (action == common::FaultAction::kCrash) {
    dead_ = true;
    return common::Status::IoError("simulated crash during wal ship");
  }
  if (action == common::FaultAction::kFail) {
    return common::Status::IoError("injected wal ship failure");
  }

  common::Status created = env_->CreateDirs(standby_dir_);
  if (!created.ok()) {
    return common::Status::IoError("cannot create standby " + standby_dir_);
  }
  SweepTmpOrphans();

  ShipStats stats;
  for (const std::string& name :
       store::SemanticTrajectoryStore::ListSealedWalSegments(source_dir_,
                                                             env_)) {
    std::string src = source_dir_ + "/" + name;
    std::string dst = standby_dir_ + "/" + name;
    size_t size = FileSizeOrZero(env_, src);
    // Sealed segments are immutable, so same-name-same-size means
    // already shipped — but only once the copy's CRC frames check out
    // (a prior crash or bit rot can leave a same-size corrupt copy).
    if (env_->FileExists(dst) && FileSizeOrZero(env_, dst) == size) {
      if (verified_.count(name) != 0) continue;
      if (SegmentIntact(env_, dst)) {
        verified_.insert(name);
        continue;
      }
      ++stats.reshipped_corrupt_segments;
      // Fall through and ship over the corrupt copy.
    }
    SEMITRI_RETURN_IF_ERROR(CopyAtomic(src, dst));
    verified_.insert(name);
    ++stats.segments_shipped;
    stats.bytes_shipped += size;
  }
  total_segments_ += stats.segments_shipped;
  total_bytes_ += stats.bytes_shipped;
  total_reshipped_ += stats.reshipped_corrupt_segments;
  return stats;
}

common::Status WalShipper::ShipSidecarFile(const std::string& filename) {
  if (dead_) {
    return common::Status::IoError("wal shipper dead after simulated crash");
  }
  std::string src = source_dir_ + "/" + filename;
  if (!env_->FileExists(src)) {
    return common::Status::NotFound("no sidecar " + src);
  }
  common::Status created = env_->CreateDirs(standby_dir_);
  if (!created.ok()) {
    return common::Status::IoError("cannot create standby " + standby_dir_);
  }
  SweepTmpOrphans();
  // Sidecars mutate in place (the manager checkpoint is rewritten every
  // Checkpoint()), so no skip check: always copy.
  SEMITRI_RETURN_IF_ERROR(CopyAtomic(src, standby_dir_ + "/" + filename));
  ++total_sidecars_;
  return common::Status::OK();
}

WalShipper::Lag WalShipper::CurrentLag() const {
  Lag lag;
  for (const std::string& name :
       store::SemanticTrajectoryStore::ListSealedWalSegments(source_dir_,
                                                             env_)) {
    std::string src = source_dir_ + "/" + name;
    std::string dst = standby_dir_ + "/" + name;
    size_t size = FileSizeOrZero(env_, src);
    if (env_->FileExists(dst) && FileSizeOrZero(env_, dst) == size) continue;
    ++lag.segments;
    lag.bytes += size;
  }
  return lag;
}

}  // namespace semitri::shard
