#include "shard/ring.h"

#include <algorithm>

#include "common/check.h"

namespace semitri::shard {

namespace {

// splitmix64 finalizer: full-avalanche mixing so consecutive shard ids
// and replica indices land uniformly on the ring.
uint64_t Mix64(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t VnodePosition(uint64_t seed, ShardId shard, size_t replica) {
  uint64_t h = Mix64(seed ^ Mix64(static_cast<uint64_t>(shard)));
  return Mix64(h ^ Mix64(static_cast<uint64_t>(replica)));
}

}  // namespace

ConsistentHashRing::ConsistentHashRing(RingConfig config) : config_(config) {
  SEMITRI_CHECK(config_.vnodes_per_shard > 0)
      << "vnodes_per_shard must be positive";
}

void ConsistentHashRing::AddShard(ShardId shard) {
  if (!members_.insert(shard).second) return;
  for (size_t replica = 0; replica < config_.vnodes_per_shard; ++replica) {
    points_.emplace_back(VnodePosition(config_.seed, shard, replica), shard);
  }
  // Position ties (vanishingly rare) break on shard id, so every
  // process sorts the ring identically.
  std::sort(points_.begin(), points_.end());
}

void ConsistentHashRing::RemoveShard(ShardId shard) {
  if (members_.erase(shard) == 0) return;
  points_.erase(std::remove_if(points_.begin(), points_.end(),
                               [shard](const std::pair<uint64_t, ShardId>& p) {
                                 return p.second == shard;
                               }),
                points_.end());
}

std::vector<ShardId> ConsistentHashRing::Shards() const {
  return std::vector<ShardId>(members_.begin(), members_.end());
}

ShardId ConsistentHashRing::ShardForKey(uint64_t key) const {
  SEMITRI_CHECK(!points_.empty()) << "lookup on an empty ring";
  // First ring point clockwise of the key, wrapping at the top.
  auto it = std::upper_bound(
      points_.begin(), points_.end(), key,
      [](uint64_t k, const std::pair<uint64_t, ShardId>& p) {
        return k < p.first;
      });
  if (it == points_.end()) it = points_.begin();
  return it->second;
}

ShardId ConsistentHashRing::ShardForObject(core::ObjectId object_id) const {
  return ShardForKey(Mix64(static_cast<uint64_t>(object_id)));
}

}  // namespace semitri::shard
