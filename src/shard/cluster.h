#ifndef SEMITRI_SHARD_CLUSTER_H_
#define SEMITRI_SHARD_CLUSTER_H_

// In-process N-shard deployment harness: ShardRuntimes behind a
// consistent-hash router, with live session migration, ring
// rebalancing, and kill/restart — the deterministic (FakeClock-driven,
// TSan-able) twin of the tools/shardd process supervisor. Tests and
// the shard soak bench drive this façade; production-shaped process
// isolation is shardd's job.
//
// --- routing ----------------------------------------------------------
// An object's first feed pins it to its ring placement; afterwards the
// recorded placement is authoritative (migrations move it, ring
// changes alone do not — Rebalance() reconciles the two by migrating).
//
// --- live migration protocol -----------------------------------------
// MigrateObject(o, dest) runs a four-step handoff; ownership ( = who
// has the live session / who a reconnect must reach) at each step:
//
//   1. pack     (site migration_pack)    source serializes the session
//                                        mid-stream; SOURCE owns.
//   2. drain    (flushing Close)         source finalizes its open
//                                        trajectory into its own
//                                        durable store (truncated rows
//                                        — superseded later); the
//                                        packed bytes are now the only
//                                        live copy, held by the
//                                        router, which still routes to
//                                        SOURCE.
//   3. handoff  (site migration_handoff) bytes travel; on failure the
//                                        router re-adopts them into
//                                        SOURCE (rollback) — exactly
//                                        one owner either way.
//   4. adopt    (site migration_unpack)  destination installs the
//                                        session; on success the
//                                        routing flips and DEST owns;
//                                        on failure rollback to SOURCE.
//
// A fault fired at any site aborts the migration with the session
// recoverable on exactly one shard, and the convergence proof
// (MergeStores vs. the uninterrupted single-shard run, ContentEquals)
// still holds: the destination's completed trajectory rows overwrite
// the source's drain-truncated rows for the same trajectory ids.
//
// --- convergence accounting ------------------------------------------
// Each shard writes to its own store, so the cluster-wide state is the
// per-object merge of every owner's id-block rows in chronological
// ownership order (later owners hold the more complete version of the
// trajectory that was open at handoff). MergeStores materializes that
// merge; tests compare it ContentEquals against an uninterrupted
// single-process run.
//
// --- self-healing -----------------------------------------------------
// A FailureDetector (probed from Tick() or an external HealthSnapshot
// via ObserveHealth) walks dead runtime slots through alive -> suspect
// -> dead; with auto_failover, a death declaration triggers
// FailoverShard: the standby directory — shipped sealed segments plus
// the shipped manager-checkpoint sidecar — is promoted to the shard's
// new durable directory, a replacement runtime opens on it (sessions
// resume mid-stream from the shipped checkpoint), and the old primary
// directory is abandoned. Placements are untouched (the same ShardId
// keeps serving), so routing heals the moment promotion completes.
// What promotion loses is bounded and ledgered in stats(): sealed-but-
// unshipped segments and the active WAL tail, i.e. everything after
// the last successful Checkpoint() ship. Drivers recover it exactly
// like after RestartShard — re-feed from the last acked checkpoint;
// restored sessions reject the already-consumed prefix per-fix, so
// at-least-once re-delivery is idempotent.
//
// With retry_feeds, Feed() consults a common::RetryPolicy instead of
// hard-failing on a dead shard: each backoff first drives Tick() (the
// waiting feed is the cluster's idle moment), so under a FakeClock a
// single retrying Feed deterministically advances detection, triggers
// the auto-failover, and recovers — the rejected-vs-retried-vs-
// recovered split lands in stats().
//
// Thread safety: Feed() may be called from many threads (objects on
// different shards proceed in parallel; the cluster lock is held only
// to route). Control-plane calls (migrate, rebalance, kill, restart,
// failover, tick, checkpoint) serialize on the cluster lock. Feeds for
// an object must be quiesced while that object migrates — the standard
// drain contract, enforced by callers.

#include <cstddef>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/clock.h"
#include "common/env.h"
#include "common/retry.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/health.h"
#include "core/types.h"
#include "shard/failure_detector.h"
#include "shard/ring.h"
#include "shard/shard_runtime.h"

namespace semitri::shard {

struct ShardClusterConfig {
  size_t num_shards = 4;
  // Per-shard directories live under here: <base_dir>/shard-<i> and
  // (when ship_wal) <base_dir>/standby-<i>.
  std::string base_dir;
  bool ship_wal = true;
  RingConfig ring;
  // Applied to every shard's SessionManager (admission budgets are
  // per-shard).
  stream::SessionManagerConfig manager;
  core::PipelineConfig pipeline;
  bool sync_every_put = false;
  // Filesystem for every shard's durable paths (null = the real one);
  // tests pass a common::FaultFs to inject disk faults cluster-wide.
  common::Env* env = nullptr;
  // Per-shard integrity-scrubber increment driven from Tick(); 0
  // disables scrubbing (shard/shard_runtime.h).
  size_t scrub_files_per_cycle = 4;

  // --- self-healing ---------------------------------------------------
  FailureDetectorConfig detector;
  // Tick() / ObserveHealth promote the standby automatically once the
  // detector declares a shard dead (requires ship_wal for a standby to
  // exist). Off by default: tests of manual kill/restart semantics
  // keep their dead shards dead.
  bool auto_failover = false;
  // Feed() retries transient failures per feed_retry (ticking the
  // detector before each backoff) instead of failing fast.
  bool retry_feeds = false;
  common::RetryPolicyConfig feed_retry;
};

class ShardCluster {
 public:
  // Opens num_shards runtimes (recovering any pre-existing durable
  // state under base_dir). Pointers must outlive the cluster; `clock`
  // drives every shard's idle/eviction time (null = real clock).
  [[nodiscard]] static common::Result<std::unique_ptr<ShardCluster>> Open(
      const region::RegionSet* regions, const road::RoadNetwork* roads,
      const poi::PoiSet* pois, ShardClusterConfig config,
      const common::Clock* clock = nullptr);

  // --- data plane -----------------------------------------------------

  // Routes one fix to the owning shard. Without retry_feeds:
  // Unavailable when that shard is killed and not yet restarted
  // (counted in stats). With retry_feeds: transient failures back off
  // and retry per feed_retry — each backoff ticks the detector, so a
  // feed caught in a failover rides it out and recovers. `exec` bounds
  // the retries (deadline/cancel); null = unbounded.
  [[nodiscard]] common::Result<stream::AnnotationSession::FeedResult> Feed(
      core::ObjectId object_id, const core::GpsPoint& fix,
      const common::ExecControl* exec = nullptr);

  // Flushing close on the owning shard (stream end for one object).
  [[nodiscard]] common::Status CloseObject(core::ObjectId object_id);

  // Closes every session on every live shard.
  [[nodiscard]] common::Status CloseAll();

  // --- placement & migration ------------------------------------------

  // Where the object is (or would be) served.
  ShardId OwnerOf(core::ObjectId object_id) const SEMITRI_EXCLUDES(mutex_);

  // Live session migration (see protocol above). OK and a routing flip
  // on success; on any failure the object stays recoverable on exactly
  // one shard (the source) and the routing is unchanged.
  [[nodiscard]] common::Status MigrateObject(core::ObjectId object_id,
                                             ShardId dest)
      SEMITRI_EXCLUDES(mutex_);

  // Adds a new shard to the ring and migrates every object whose ring
  // placement moved onto it. Returns the number migrated.
  [[nodiscard]] common::Result<size_t> AddShard() SEMITRI_EXCLUDES(mutex_);

  // Removes the shard from the ring and migrates everything it owns to
  // the survivors. The drained runtime stays open (its store still
  // holds rows that MergeStores needs). Returns the number migrated.
  [[nodiscard]] common::Result<size_t> RemoveShard(ShardId shard)
      SEMITRI_EXCLUDES(mutex_);

  // Migrates every object whose recorded placement disagrees with the
  // current ring (after AddShard this is a no-op; exposed for churn
  // tests). Returns the number migrated.
  [[nodiscard]] common::Result<size_t> Rebalance() SEMITRI_EXCLUDES(mutex_);

  // --- failure injection (process-level) ------------------------------

  // Drops the runtime without any flush — sessions, admission state
  // and un-checkpointed progress vanish, exactly like SIGKILL. The
  // durable directory survives; feeds route Unavailable until restart.
  [[nodiscard]] common::Status KillShard(ShardId shard)
      SEMITRI_EXCLUDES(mutex_);

  // Re-opens the killed shard from its durable directory (store
  // recovery + manager checkpoint restore). Sessions resume from the
  // shard's last Checkpoint(); the driver re-feeds from its last acked
  // position, as any client of an at-least-once ingest would.
  [[nodiscard]] common::Status RestartShard(ShardId shard)
      SEMITRI_EXCLUDES(mutex_);

  // --- self-healing ---------------------------------------------------

  // One detector pass: probes every shard slot that is due
  // (FailureDetectorConfig::probe_interval_seconds), walks suspicion
  // state, and — with auto_failover — promotes the standby of every
  // shard newly declared dead. Returns failovers performed this tick.
  [[nodiscard]] common::Result<size_t> Tick() SEMITRI_EXCLUDES(mutex_);

  // Same pass, but probe results come from an externally produced
  // rollup (e.g. a supervisor probing worker processes): each
  // ShardHealth row's alive bit is one observation for that shard.
  [[nodiscard]] common::Result<size_t> ObserveHealth(
      const core::HealthSnapshot& snapshot) SEMITRI_EXCLUDES(mutex_);

  // Promotes the shard's standby directory (shipped sealed segments +
  // shipped manager checkpoint) to its new durable directory and opens
  // a replacement runtime on it; a fresh epoch-suffixed standby
  // directory takes over as the ship target. Any still-live runtime is
  // fenced first (a false-positive detection must not leave two
  // writers). The loss is bounded by replication lag — sealed-but-
  // unshipped segments plus the active WAL tail — and ledgered in
  // stats(); drivers re-feed from their last acked checkpoint exactly
  // as after RestartShard. FailedPrecondition without a standby
  // (ship_wal=false). Fault site `failover_promote`; on any failure
  // the shard stays down with its pre-failover directories intact, so
  // the failover (or a restart) can be retried.
  [[nodiscard]] common::Status FailoverShard(ShardId shard)
      SEMITRI_EXCLUDES(mutex_);

  // Detector state for one shard (kAlive for unknown ids).
  Liveness ShardLiveness(ShardId shard) const SEMITRI_EXCLUDES(mutex_);

  // --- durability -----------------------------------------------------

  [[nodiscard]] common::Status CheckpointShard(ShardId shard)
      SEMITRI_EXCLUDES(mutex_);
  [[nodiscard]] common::Status CheckpointAll() SEMITRI_EXCLUDES(mutex_);
  // Seal + ship every live shard's WAL; returns totals.
  [[nodiscard]] common::Result<WalShipper::ShipStats> SealAndShipAll()
      SEMITRI_EXCLUDES(mutex_);

  // --- observability --------------------------------------------------

  // Cluster snapshot: per-shard rollup (core::HealthSnapshot::shards)
  // plus summed budget gauges; dead shards report alive=false.
  core::HealthSnapshot Health() const SEMITRI_EXCLUDES(mutex_);

  struct Stats {
    size_t migrations_completed = 0;
    size_t migrations_aborted = 0;
    size_t shard_kills = 0;
    size_t shard_restarts = 0;
    // Feed attempts turned away because the owning shard was down.
    // With retry_feeds every failed attempt counts, so this reads as
    // attempt pressure; feeds_recovered below says how many of those
    // feeds ultimately landed anyway.
    size_t feeds_rejected_dead_shard = 0;
    // --- self-healing ledger ------------------------------------------
    size_t failovers_completed = 0;
    size_t failovers_aborted = 0;
    // Live runtimes dropped by a (false-positive) failover's fence.
    size_t shards_fenced = 0;
    size_t detector_deaths_declared = 0;
    // Feeds that performed at least one retry / that then succeeded.
    size_t feeds_retried = 0;
    size_t feeds_recovered = 0;
    // Bounded loss accepted by promotions: sealed-but-unshipped
    // segments and active-tail bytes abandoned with the old primary
    // directory — the replication-lag budget that
    // `lost_acknowledged_fixes` convergence accounting charges re-fed
    // drivers against.
    size_t failover_lost_segments = 0;
    size_t failover_lost_tail_bytes = 0;
    // Per-event latency samples (seconds): first failed probe ->
    // death declaration, and failover start -> promoted runtime open.
    std::vector<double> time_to_detect_seconds;
    std::vector<double> time_to_failover_seconds;
  };
  Stats stats() const SEMITRI_EXCLUDES(mutex_);

  // Shards that currently hold a LIVE session for the object (the
  // exactly-one-owner invariant check for migration fault tests).
  std::vector<ShardId> LiveSessionShards(core::ObjectId object_id) const
      SEMITRI_EXCLUDES(mutex_);

  // Materializes the cluster-wide store state: every owner's id-block
  // rows per object, merged in chronological ownership order (see
  // convergence accounting above). Killed shards are read by
  // recovering a scratch store from their durable directory.
  [[nodiscard]] common::Status MergeStores(
      store::SemanticTrajectoryStore* out) const SEMITRI_EXCLUDES(mutex_);

  size_t num_shards() const SEMITRI_EXCLUDES(mutex_);
  // The runtime slot (null while killed).
  std::shared_ptr<ShardRuntime> runtime(ShardId shard) const
      SEMITRI_EXCLUDES(mutex_);

 private:
  ShardCluster(const region::RegionSet* regions,
               const road::RoadNetwork* roads, const poi::PoiSet* pois,
               ShardClusterConfig config, const common::Clock* clock);

  ShardId OwnerLocked(core::ObjectId object_id) const
      SEMITRI_REQUIRES(mutex_);
  // Records first-touch placement; returns the owning runtime (null =
  // dead shard).
  std::shared_ptr<ShardRuntime> RouteLocked(core::ObjectId object_id)
      SEMITRI_REQUIRES(mutex_);
  [[nodiscard]] common::Status MigrateLocked(core::ObjectId object_id,
                                             ShardId dest)
      SEMITRI_REQUIRES(mutex_);
  [[nodiscard]] common::Result<size_t> RebalanceLocked()
      SEMITRI_REQUIRES(mutex_);
  [[nodiscard]] common::Status FailoverLocked(ShardId shard)
      SEMITRI_REQUIRES(mutex_);
  // Observes one probe result per due shard (probe_ok[i] for shard i;
  // ids beyond the vector probe as dead) and auto-fails-over newly
  // declared deaths. Returns failovers performed.
  [[nodiscard]] common::Result<size_t> TickLocked(
      const std::vector<bool>& probe_ok) SEMITRI_REQUIRES(mutex_);
  const common::Clock* cluster_clock() const {
    return clock_ != nullptr ? clock_ : common::Clock::Real();
  }
  void FillDetectorHealth(ShardId shard, core::ShardHealth* health) const
      SEMITRI_REQUIRES(mutex_);

  const region::RegionSet* regions_;
  const road::RoadNetwork* roads_;
  const poi::PoiSet* pois_;
  const common::Clock* clock_;

  mutable std::mutex mutex_;
  ShardClusterConfig config_ SEMITRI_GUARDED_BY(mutex_);
  ConsistentHashRing ring_ SEMITRI_GUARDED_BY(mutex_);
  std::vector<ShardRuntimeConfig> shard_configs_ SEMITRI_GUARDED_BY(mutex_);
  std::vector<std::shared_ptr<ShardRuntime>> runtimes_
      SEMITRI_GUARDED_BY(mutex_);
  // Authoritative placement of every object ever fed (ring placement
  // at first touch, then wherever migrations moved it).
  std::map<core::ObjectId, ShardId> placement_ SEMITRI_GUARDED_BY(mutex_);
  // Chronological owners per object — the MergeStores merge order.
  std::map<core::ObjectId, std::vector<ShardId>> history_
      SEMITRI_GUARDED_BY(mutex_);
  size_t migrations_completed_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t migrations_aborted_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t shard_kills_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t shard_restarts_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t feeds_rejected_dead_shard_ SEMITRI_GUARDED_BY(mutex_) = 0;

  // --- self-healing state ---------------------------------------------
  std::unique_ptr<FailureDetector> detector_ SEMITRI_GUARDED_BY(mutex_);
  // Promotions per shard slot — names each epoch's standby directory.
  std::vector<size_t> failover_epochs_ SEMITRI_GUARDED_BY(mutex_);
  size_t failovers_completed_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t failovers_aborted_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t shards_fenced_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t feeds_retried_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t feeds_recovered_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t failover_lost_segments_ SEMITRI_GUARDED_BY(mutex_) = 0;
  size_t failover_lost_tail_bytes_ SEMITRI_GUARDED_BY(mutex_) = 0;
  std::vector<double> time_to_detect_seconds_ SEMITRI_GUARDED_BY(mutex_);
  std::vector<double> time_to_failover_seconds_ SEMITRI_GUARDED_BY(mutex_);
  // Immutable after construction: the retrying Feed path reads it
  // without the cluster lock because backoff sleeps must not hold it.
  // semitri-lint: allow(guarded-by-completeness) — written only in the
  // constructor, then read-only; Run() sleeps outside the lock.
  common::RetryPolicy feed_retry_policy_;
  // Also immutable after construction; the lock-free Feed fast path
  // branches on it before deciding whether to take the retry loop.
  // semitri-lint: allow(guarded-by-completeness) — set once in the
  // constructor from config_, never written again.
  bool retry_feeds_enabled_ = false;
};

}  // namespace semitri::shard

#endif  // SEMITRI_SHARD_CLUSTER_H_
