#include "shard/shard_runtime.h"

#include <utility>

#include "common/check.h"
#include "common/fault_injection.h"
#include "common/serial.h"

namespace semitri::shard {

ShardRuntime::ShardRuntime(const region::RegionSet* regions,
                           const road::RoadNetwork* roads,
                           const poi::PoiSet* pois, ShardRuntimeConfig config,
                           const common::Clock* clock)
    : config_(std::move(config)), env_(common::ResolveEnv(config_.env)) {
  store::StoreConfig store_config;
  store_config.sync_every_put = config_.sync_every_put;
  store_config.env = env_;
  store_ = std::make_unique<store::SemanticTrajectoryStore>(store_config);
  pipeline_ = std::make_unique<core::SemiTriPipeline>(
      regions, roads, pois, config_.pipeline, store_.get());
  config_.manager.env = env_;
  manager_ = std::make_unique<stream::SessionManager>(pipeline_.get(),
                                                      config_.manager, clock);
  if (!config_.standby_dir.empty()) {
    shipper_ = std::make_unique<WalShipper>(config_.durable_dir,
                                            config_.standby_dir, env_);
  }
  if (config_.scrub_files_per_cycle > 0) {
    store::ScrubberConfig scrub;
    scrub.dir = config_.durable_dir;
    // The standby's shipped copies are the repair source; without a
    // standby corrupt files can only be quarantined.
    scrub.repair_dir = config_.standby_dir;
    scrub.files_per_cycle = config_.scrub_files_per_cycle;
    scrub.env = env_;
    scrubber_ = std::make_unique<store::IntegrityScrubber>(std::move(scrub));
  }
}

common::Result<std::unique_ptr<ShardRuntime>> ShardRuntime::Open(
    const region::RegionSet* regions, const road::RoadNetwork* roads,
    const poi::PoiSet* pois, ShardRuntimeConfig config,
    const common::Clock* clock) {
  SEMITRI_CHECK(!config.durable_dir.empty()) << "a shard needs a durable_dir";
  std::unique_ptr<ShardRuntime> runtime(
      new ShardRuntime(regions, roads, pois, std::move(config), clock));
  // Recover switches the store into durable mode on the shard's
  // directory — a fresh directory recovers to empty, a re-opened one
  // to the pre-crash tables.
  auto recovered = runtime->store_->Recover(runtime->config_.durable_dir);
  SEMITRI_RETURN_IF_ERROR(recovered.status());
  runtime->recovery_stats_ = *recovered;
  std::string ckpt = ManagerCheckpointPath(runtime->config_.durable_dir);
  if (runtime->env_->FileExists(ckpt)) {
    SEMITRI_RETURN_IF_ERROR(runtime->manager_->Restore(ckpt));
    runtime->manager_restored_ = true;
  }
  return runtime;
}

common::Status ShardRuntime::ScrubTick() {
  if (scrubber_ == nullptr) return common::Status::OK();
  return scrubber_->Tick();
}

common::Status ShardRuntime::Checkpoint() {
  // The manager checkpoint lands before the seal so that what ships is
  // ordered "ckpt <= WAL": the standby's store always holds at least
  // every row the shipped session state says was consumed. (The
  // reverse order could ship cursors pointing past rows stranded in
  // the unsealed tail — a silent loss a promotion would inherit.)
  SEMITRI_RETURN_IF_ERROR(
      manager_->Checkpoint(ManagerCheckpointPath(config_.durable_dir)));
  if (shipper_ != nullptr) {
    // Seal + ship before a later CompactStore() garbage-collects the
    // segments. A ship failure is replication lag (surfaced via
    // ShardHealthInfo), not a failed ack — the primary's own
    // durability does not depend on the standby.
    auto sealed = store_->SealWalSegment();
    SEMITRI_RETURN_IF_ERROR(sealed.status());
    if (auto shipped = shipper_->ShipSealedSegments(); shipped.ok()) {
      // Replicate the session/resume-cursor sidecar so a promoted
      // standby resumes its streams mid-flight. Same contract as
      // segments: failure is lag, not a failed ack.
      // semitri-lint: allow(unchecked-status) — sidecar ship failure
      // is replication lag by design; the primary's ack stands.
      (void)shipper_->ShipSidecarFile(kManagerCheckpointFile);
    }
  }
  return store_->Sync();
}

common::Result<WalShipper::ShipStats> ShardRuntime::SealAndShip() {
  auto sealed = store_->SealWalSegment();
  SEMITRI_RETURN_IF_ERROR(sealed.status());
  if (shipper_ == nullptr) return WalShipper::ShipStats{};
  return shipper_->ShipSealedSegments();
}

common::Result<std::string> ShardRuntime::PackForMigration(
    core::ObjectId object_id) const {
  common::FaultAction action = SEMITRI_FAULT_FIRE("migration_pack");
  if (action != common::FaultAction::kNone) {
    // Nothing was serialized or removed: the source still owns the
    // session, untouched.
    return common::Status::Unavailable("injected migration pack failure");
  }
  common::StateWriter packed;
  SEMITRI_RETURN_IF_ERROR(manager_->PackSession(object_id, &packed));
  return packed.Release();
}

common::Status ShardRuntime::AdoptFromMigration(core::ObjectId object_id,
                                                const std::string& packed) {
  common::FaultAction action = SEMITRI_FAULT_FIRE("migration_unpack");
  if (action != common::FaultAction::kNone) {
    // Nothing was installed: the destination does not own the session.
    return common::Status::Unavailable("injected migration unpack failure");
  }
  common::StateReader reader(packed);
  SEMITRI_RETURN_IF_ERROR(manager_->AdoptSession(object_id, &reader));
  if (!reader.AtEnd()) {
    return common::Status::Corruption("trailing bytes in packed session");
  }
  return common::Status::OK();
}

core::HealthSnapshot ShardRuntime::Health() const {
  core::HealthSnapshot snapshot = manager_->Health();
  if (store_->storage_degraded()) {
    snapshot.storage_degraded = true;
    snapshot.storage_fault = store_->degraded_reason();
  }
  if (scrubber_ != nullptr) {
    const store::IntegrityScrubber::Counters& c = scrubber_->counters();
    snapshot.scrub_files_scanned = c.files_scanned;
    snapshot.scrub_corrupt_detected = c.corrupt_detected;
    snapshot.scrub_repaired = c.repaired;
    snapshot.scrub_quarantined = c.quarantined;
    snapshot.scrub_cycles_completed = c.cycles_completed;
  }
  return snapshot;
}

core::ShardHealth ShardRuntime::ShardHealthInfo() const {
  core::HealthSnapshot snapshot = Health();
  core::ShardHealth info;
  info.shard_id = config_.shard_id;
  info.alive = true;
  info.live_sessions = snapshot.sessions.used;
  info.buffered_bytes = snapshot.buffered_bytes.used;
  if (shipper_ != nullptr) {
    WalShipper::Lag lag = shipper_->CurrentLag();
    info.wal_ship_lag_segments = lag.segments;
    info.wal_ship_lag_bytes = lag.bytes;
  }
  for (const core::StageHealth& stage : snapshot.stages) {
    if (stage.breaker_present &&
        stage.breaker.state != core::BreakerState::kClosed) {
      ++info.breakers_open;
    }
  }
  info.storage_degraded = snapshot.storage_degraded;
  info.storage_fault = snapshot.storage_fault;
  info.scrub_files_scanned = snapshot.scrub_files_scanned;
  info.scrub_corrupt_detected = snapshot.scrub_corrupt_detected;
  info.scrub_repaired = snapshot.scrub_repaired;
  info.scrub_quarantined = snapshot.scrub_quarantined;
  info.scrub_cycles_completed = snapshot.scrub_cycles_completed;
  info.degraded = snapshot.degraded();
  return info;
}

}  // namespace semitri::shard
