#ifndef SEMITRI_SHARD_CHAOS_H_
#define SEMITRI_SHARD_CHAOS_H_

// Seeded fault schedule for the shard soak: a deterministic list of
// (step, event) pairs — shard kills healed by detection + auto
// failover, live migrations, seal-and-ship waves, and (in fault
// injection builds) injected WAL-ship failures — that the driver
// replays while streaming fixes. The schedule is pure data: generation
// draws from one common::Rng, so the same seed always produces the
// same storm, and the soak's convergence proof (MergeStores vs the
// uninterrupted run, ContentEquals) stays reproducible bit-for-bit.
//
// Kills are spaced at least min_kill_spacing steps apart and never
// scheduled in the first or last tenth of the run: each incident needs
// room for detect -> promote -> re-feed to complete before the next
// one (and before the final convergence check), which is also what
// keeps "zero lost acknowledged fixes beyond replication lag"
// assertable — overlapping unhealed incidents would make loss
// attribution ambiguous.

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "shard/ring.h"

namespace semitri::shard {

enum class ChaosKind {
  // SIGKILL the victim shard; the cluster's detector + auto failover
  // heal it. The driver checkpoints (acks) just before, and re-feeds
  // the victim's objects from that ack once promotion completes.
  kKill,
  // Live-migrate one object to the following shard on the ring.
  kMigrate,
  // Seal + ship every shard's WAL (drains replication lag).
  kSealShip,
  // Arm a one-shot `wal_ship` failure (fault-injection builds only):
  // the next ship attempt fails, leaving lag for a later retry.
  kShipFault,
};

const char* ChaosKindName(ChaosKind kind);

struct ChaosEvent {
  ChaosKind kind = ChaosKind::kKill;
  size_t at_step = 0;
  // Victim shard (kKill) — kMigrate routes by object instead.
  ShardId shard = 0;
  // Index into the driver's object list (kMigrate).
  size_t object_index = 0;
};

struct ChaosScheduleConfig {
  uint64_t seed = 1234;
  // Driver steps (feed rounds) in the soak.
  size_t num_steps = 0;
  size_t num_shards = 1;
  size_t num_objects = 1;
  // Event counts; kills are capped by what spacing allows.
  size_t kills = 2;
  size_t migrations = 2;
  size_t seal_ships = 1;
  size_t ship_faults = 0;
  // Minimum steps between consecutive kills (detection + re-feed room).
  size_t min_kill_spacing = 8;
};

class ChaosSchedule {
 public:
  static ChaosSchedule Generate(const ChaosScheduleConfig& config);

  // All events, sorted by step (stable on ties).
  const std::vector<ChaosEvent>& events() const { return events_; }
  // Events scheduled for exactly `step`.
  std::vector<ChaosEvent> EventsAt(size_t step) const;
  size_t CountOf(ChaosKind kind) const;

  // One line per event — logged by the soak so a failing seed's storm
  // is reconstructible from the output alone.
  std::string ToString() const;

 private:
  std::vector<ChaosEvent> events_;
};

}  // namespace semitri::shard

#endif  // SEMITRI_SHARD_CHAOS_H_
