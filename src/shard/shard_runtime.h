#ifndef SEMITRI_SHARD_SHARD_RUNTIME_H_
#define SEMITRI_SHARD_SHARD_RUNTIME_H_

// One shard of the sharded serving runtime: a private durable store
// (own WAL + checkpoint generations under ShardRuntimeConfig::
// durable_dir), its own SemiTriPipeline over that store, its own
// SessionManager (admission budgets included), and a WalShipper
// replicating sealed WAL segments to a standby directory. The cluster
// façade (shard/cluster.h) and the process supervisor (tools/shardd)
// both compose these; a ShardRuntime itself never talks to another
// shard.
//
// Lifecycle: Open() recovers the durable directory (checkpoint + sealed
// segments + active WAL) and restores the manager checkpoint when one
// exists, so a re-opened shard resumes its sessions mid-stream.
// Checkpoint() is the durability point the supervisor acks against:
// sealed segments are shipped first (they are garbage-collected by a
// later store compaction), then the manager state lands atomically,
// then the store WAL is fsynced.
//
// Migration hooks: PackForMigration / AdoptFromMigration wrap the
// SessionManager pack/adopt seam with the `migration_pack` /
// `migration_unpack` fault sites; the in-between `migration_handoff`
// site fires in ShardCluster. See DESIGN.md "Shard deployment model"
// for the protocol's ownership semantics at each step.
//
// Feed() is thread-safe (the manager and store are internally
// synchronized); control-plane calls (Checkpoint, SealAndShip,
// migration hooks, CloseAll) must be serialized by the owner, feeds
// for an object being migrated quiesced from pack to adopt.

#include <memory>
#include <string>

#include "common/clock.h"
#include "common/env.h"
#include "common/status.h"
#include "core/health.h"
#include "core/pipeline.h"
#include "core/types.h"
#include "shard/ring.h"
#include "shard/wal_shipper.h"
#include "store/integrity_scrubber.h"
#include "store/semantic_trajectory_store.h"
#include "stream/session_manager.h"

namespace semitri::shard {

struct ShardRuntimeConfig {
  ShardId shard_id = 0;
  // Private WAL/checkpoint directory (store::StoreConfig::durable_dir).
  std::string durable_dir;
  // Sealed-segment ship target; "" disables shipping.
  std::string standby_dir;
  // Per-shard session/admission configuration.
  stream::SessionManagerConfig manager;
  core::PipelineConfig pipeline;
  // fsync the shard WAL on every Put (store::StoreConfig).
  bool sync_every_put = false;
  // Filesystem for every durable-path component (store, shipper,
  // scrubber, manager checkpoints); null = the real filesystem. Tests
  // pass a common::FaultFs to inject disk faults shard-wide.
  common::Env* env = nullptr;
  // Files the integrity scrubber verifies per ScrubTick(); 0 disables
  // the scrubber.
  size_t scrub_files_per_cycle = 4;
};

class ShardRuntime {
 public:
  // Opens (or re-opens after a crash) the shard: recovers the durable
  // store, builds the pipeline + manager over it, restores the manager
  // checkpoint when present. `regions`/`roads`/`pois` may be null
  // (partial annotation) and must outlive the runtime; `clock` drives
  // idle/eviction time (null = real clock).
  [[nodiscard]] static common::Result<std::unique_ptr<ShardRuntime>> Open(
      const region::RegionSet* regions, const road::RoadNetwork* roads,
      const poi::PoiSet* pois, ShardRuntimeConfig config,
      const common::Clock* clock = nullptr);

  // --- data plane -----------------------------------------------------

  [[nodiscard]] common::Result<stream::AnnotationSession::FeedResult> Feed(
      core::ObjectId object_id, const core::GpsPoint& fix) {
    return manager_->Feed(object_id, fix);
  }
  [[nodiscard]] common::Status CloseObject(core::ObjectId object_id) {
    return manager_->Close(object_id);
  }
  [[nodiscard]] common::Status CloseAll() { return manager_->CloseAll(); }
  [[nodiscard]] common::Result<size_t> EvictIdle(double max_idle_seconds) {
    return manager_->EvictIdle(max_idle_seconds);
  }

  // --- durability -----------------------------------------------------

  // The shard's ack point: ship sealed segments (best effort — lag is
  // health, not failure), write the manager checkpoint atomically,
  // fsync the store WAL. After a successful Checkpoint, every fix fed
  // before it survives a kill of this runtime.
  [[nodiscard]] common::Status Checkpoint();

  // Seals the active WAL and ships all pending sealed segments to the
  // standby (no-op stats without a standby).
  [[nodiscard]] common::Result<WalShipper::ShipStats> SealAndShip();

  // Compacts the store into a fresh checkpoint generation (also GCs
  // shipped-or-not sealed segments — call SealAndShip first).
  [[nodiscard]] common::Status CompactStore() { return store_->Checkpoint(); }

  // One increment of background integrity scrubbing: re-verifies a few
  // sealed segments / checkpoint CSVs against their CRCs, repairing
  // from the standby or quarantining (store/integrity_scrubber.h).
  // No-op without a scrubber (scrub_files_per_cycle == 0).
  [[nodiscard]] common::Status ScrubTick();

  // --- migration hooks ------------------------------------------------

  // Source side: serializes the object's session (or idle resume
  // cursor) for handoff. Fault site `migration_pack`; on any failure
  // the session is untouched and this shard still owns it.
  [[nodiscard]] common::Result<std::string> PackForMigration(
      core::ObjectId object_id) const;

  // Destination side: installs a packed session; it resumes mid-stream
  // here. Fault site `migration_unpack`; on failure nothing was
  // installed.
  [[nodiscard]] common::Status AdoptFromMigration(core::ObjectId object_id,
                                                  const std::string& packed);

  // --- observability --------------------------------------------------

  // The manager's snapshot overlaid with this shard's storage view:
  // read-only degraded state + triggering fault and the scrubber's
  // counters.
  core::HealthSnapshot Health() const;
  // This shard's row of the cluster rollup (core::HealthSnapshot::
  // shards).
  core::ShardHealth ShardHealthInfo() const;

  ShardId shard_id() const { return config_.shard_id; }
  const ShardRuntimeConfig& config() const { return config_; }
  store::SemanticTrajectoryStore* store() { return store_.get(); }
  const store::SemanticTrajectoryStore* store() const { return store_.get(); }
  stream::SessionManager* manager() { return manager_.get(); }
  // Null when the shard runs without a standby (ship_wal=false).
  const WalShipper* shipper() const { return shipper_.get(); }
  // Null when scrubbing is disabled (scrub_files_per_cycle == 0).
  const store::IntegrityScrubber* scrubber() const { return scrubber_.get(); }
  // What Open() found on disk.
  const store::SemanticTrajectoryStore::RecoveryStats& recovery_stats()
      const {
    return recovery_stats_;
  }
  bool manager_restored() const { return manager_restored_; }

  static constexpr const char* kManagerCheckpointFile = "manager.ckpt";
  static std::string ManagerCheckpointPath(const std::string& durable_dir) {
    return durable_dir + "/" + kManagerCheckpointFile;
  }

 private:
  ShardRuntime(const region::RegionSet* regions,
               const road::RoadNetwork* roads, const poi::PoiSet* pois,
               ShardRuntimeConfig config, const common::Clock* clock);

  ShardRuntimeConfig config_;
  common::Env* env_ = nullptr;  // resolved from config_.env, never null
  std::unique_ptr<store::SemanticTrajectoryStore> store_;
  std::unique_ptr<core::SemiTriPipeline> pipeline_;
  std::unique_ptr<stream::SessionManager> manager_;
  std::unique_ptr<WalShipper> shipper_;
  std::unique_ptr<store::IntegrityScrubber> scrubber_;
  store::SemanticTrajectoryStore::RecoveryStats recovery_stats_;
  bool manager_restored_ = false;
};

}  // namespace semitri::shard

#endif  // SEMITRI_SHARD_SHARD_RUNTIME_H_
