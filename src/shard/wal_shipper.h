#ifndef SEMITRI_SHARD_WAL_SHIPPER_H_
#define SEMITRI_SHARD_WAL_SHIPPER_H_

// Log shipping for a shard's private durable directory: copies sealed
// WAL segments (SemanticTrajectoryStore::SealWalSegment) to a standby
// directory. A standby rebuilt purely from shipped segments via
// SemanticTrajectoryStore::Recover converges to the primary's state as
// of the last shipped seal — the replication point
// ShardCluster::FailoverShard promotes. Shipping is pull-free and
// idempotent: a segment already present in the standby (same name,
// same size, CRC frame scan intact) is skipped, and each copy lands
// via write-to-tmp + fsync + rename, so a crash mid-ship never leaves
// a torn segment under a sealed name.
//
// Same-name-same-size alone is not proof of a good copy — a prior ship
// interrupted after rename, bit rot, or a hostile test can leave a
// same-size corrupt standby file that a pure metadata check would
// accept forever. Every standby segment is therefore verified once per
// shipper lifetime by replaying its CRC frames (store::ReplayWal with
// a no-op apply); a corrupt copy is re-shipped and counted in
// reshipped_corrupt_segments. Verified names are cached in memory, so
// steady-state re-ships stay metadata-cheap; a re-opened shipper
// (post-crash) re-verifies once.
//
// Beyond segments, the shipper also replicates the manager checkpoint
// sidecar (ShipManagerCheckpoint): the session/resume-cursor state a
// promoted standby needs to resume streams mid-flight. The sidecar
// mutates in place, so it is always copied, never skip-checked.
//
// Failed ships clean up after themselves: a fsync or rename failure
// removes the `.tmp` staging file (best-effort), and any orphaned
// `.tmp` from a *crashed* prior shipper is swept on the first ship and
// counted in tmp_orphans_removed — a tmp is never promoted, so
// sweeping is always safe.
//
// What the standby can lose: the active (unsealed) log tail, any
// sealed-but-unshipped segments, and manager state newer than the last
// shipped checkpoint — exactly what CurrentLag() reports and
// core::ShardHealth surfaces as WAL-ship lag. The primary's
// Checkpoint() garbage-collects sealed segments, so runtimes ship
// *before* compacting (shard::ShardRuntime does) or accept the gap.
//
// All file I/O goes through common::Env; pass a FaultFs to exercise
// the cleanup paths with injected fsync/rename faults.
//
// Fault site (SEMITRI_FAULT_INJECTION=ON): `wal_ship` — kFail: the
// ship reports an error and no segment is renamed into place (retry
// later); kCrash: the shipper goes dead like a crashed process (the
// sidecar ship shares the dead state).
//
// Not internally synchronized; the owning ShardRuntime serializes
// control-plane calls.

#include <cstddef>
#include <set>
#include <string>

#include "common/env.h"
#include "common/status.h"

namespace semitri::shard {

class WalShipper {
 public:
  // Neither directory needs to exist yet; the standby is created on
  // first ship. `env` null means the real filesystem.
  WalShipper(std::string source_dir, std::string standby_dir,
             common::Env* env = nullptr);

  struct ShipStats {
    size_t segments_shipped = 0;
    size_t bytes_shipped = 0;
    // Standby copies that matched by name+size but failed the CRC
    // frame scan and were shipped again.
    size_t reshipped_corrupt_segments = 0;
  };

  // Copies every sealed segment the standby is missing (or holds a
  // corrupt copy of), ascending by sequence. On error, segments
  // already renamed into place stay — re-shipping resumes where it
  // stopped — and the failed copy's `.tmp` is removed.
  [[nodiscard]] common::Result<ShipStats> ShipSealedSegments();

  // Copies `filename` (relative to the source dir, e.g. the manager
  // checkpoint) into the standby atomically. NotFound when the source
  // file does not exist yet.
  [[nodiscard]] common::Status ShipSidecarFile(const std::string& filename);

  struct Lag {
    size_t segments = 0;
    size_t bytes = 0;
  };
  // Sealed segments (and bytes) present at the source but absent from
  // the standby.
  Lag CurrentLag() const;

  size_t total_segments_shipped() const { return total_segments_; }
  size_t total_bytes_shipped() const { return total_bytes_; }
  size_t total_reshipped_corrupt() const { return total_reshipped_; }
  size_t total_sidecars_shipped() const { return total_sidecars_; }
  // Orphaned `.tmp` staging files removed from the standby — left by a
  // prior shipper that crashed mid-copy (swept once, on the first
  // ship) or by this shipper's own failed copies.
  size_t tmp_orphans_removed() const { return total_tmp_orphans_; }
  // True after an injected crash; later ships fail like writes to a
  // dead process.
  bool dead() const { return dead_; }

  const std::string& standby_dir() const { return standby_dir_; }

 private:
  // Removes every `*.tmp` under the standby dir (once per shipper):
  // staging leftovers from a crashed predecessor. Never fails the
  // ship — a missing or sweep-resistant tmp only wastes space.
  void SweepTmpOrphans();

  // write-to-tmp + fsync + rename; removes the tmp on any failure.
  [[nodiscard]] common::Status CopyAtomic(const std::string& from,
                                          const std::string& to);

  common::Env* const env_;
  std::string source_dir_;
  std::string standby_dir_;
  size_t total_segments_ = 0;
  size_t total_bytes_ = 0;
  size_t total_reshipped_ = 0;
  size_t total_sidecars_ = 0;
  size_t total_tmp_orphans_ = 0;
  bool swept_orphans_ = false;
  // Standby segment names whose CRC scan passed (or that this shipper
  // itself wrote) — immutable once verified.
  std::set<std::string> verified_;
  bool dead_ = false;
};

}  // namespace semitri::shard

#endif  // SEMITRI_SHARD_WAL_SHIPPER_H_
