#ifndef SEMITRI_SHARD_WAL_SHIPPER_H_
#define SEMITRI_SHARD_WAL_SHIPPER_H_

// Log shipping for a shard's private durable directory: copies sealed
// WAL segments (SemanticTrajectoryStore::SealWalSegment) to a standby
// directory. A standby rebuilt purely from shipped segments via
// SemanticTrajectoryStore::Recover converges to the primary's state as
// of the last shipped seal — the replication point a failover restores
// from. Shipping is pull-free and idempotent: a segment already
// present in the standby (same name, same size) is skipped, and each
// copy lands via write-to-tmp + fsync + rename, so a crash mid-ship
// never leaves a torn segment under a sealed name.
//
// What the standby can lose: the active (unsealed) log tail and any
// sealed-but-unshipped segments — exactly what CurrentLag() reports
// and core::ShardHealth surfaces as WAL-ship lag. The primary's
// Checkpoint() garbage-collects sealed segments, so runtimes ship
// *before* checkpointing (shard::ShardRuntime does) or accept the gap.
//
// Fault site (SEMITRI_FAULT_INJECTION=ON): `wal_ship` — kFail: the
// ship reports an error and no segment is renamed into place (retry
// later); kCrash: the shipper goes dead like a crashed process.
//
// Not internally synchronized; the owning ShardRuntime serializes
// control-plane calls.

#include <cstddef>
#include <string>

#include "common/status.h"

namespace semitri::shard {

class WalShipper {
 public:
  // Neither directory needs to exist yet; the standby is created on
  // first ship.
  WalShipper(std::string source_dir, std::string standby_dir);

  struct ShipStats {
    size_t segments_shipped = 0;
    size_t bytes_shipped = 0;
  };

  // Copies every sealed segment the standby is missing, ascending by
  // sequence. On error, segments already renamed into place stay —
  // re-shipping resumes where it stopped.
  [[nodiscard]] common::Result<ShipStats> ShipSealedSegments();

  struct Lag {
    size_t segments = 0;
    size_t bytes = 0;
  };
  // Sealed segments (and bytes) present at the source but absent from
  // the standby.
  Lag CurrentLag() const;

  size_t total_segments_shipped() const { return total_segments_; }
  size_t total_bytes_shipped() const { return total_bytes_; }
  // True after an injected crash; later ships fail like writes to a
  // dead process.
  bool dead() const { return dead_; }

  const std::string& standby_dir() const { return standby_dir_; }

 private:
  std::string source_dir_;
  std::string standby_dir_;
  size_t total_segments_ = 0;
  size_t total_bytes_ = 0;
  bool dead_ = false;
};

}  // namespace semitri::shard

#endif  // SEMITRI_SHARD_WAL_SHIPPER_H_
