#include "shard/failure_detector.h"

#include "common/check.h"
#include "common/fault_injection.h"

namespace semitri::shard {

const char* LivenessName(Liveness state) {
  switch (state) {
    case Liveness::kAlive:
      return "alive";
    case Liveness::kSuspect:
      return "suspect";
    case Liveness::kDead:
      return "dead";
  }
  return "unknown";
}

FailureDetector::FailureDetector(FailureDetectorConfig config,
                                 const common::Clock* clock)
    : config_(config),
      clock_(clock != nullptr ? clock : common::Clock::Real()) {
  SEMITRI_CHECK(config_.suspect_after >= 1) << "suspect_after must be >= 1";
  SEMITRI_CHECK(config_.dead_after >= config_.suspect_after)
      << "dead_after must be >= suspect_after";
}

const FailureDetector::Slot* FailureDetector::FindSlot(ShardId shard) const {
  if (shard >= slots_.size()) return nullptr;
  return &slots_[shard];
}

FailureDetector::Slot* FailureDetector::EnsureSlot(ShardId shard) {
  if (shard >= slots_.size()) slots_.resize(shard + 1);
  return &slots_[shard];
}

bool FailureDetector::ProbeDue(ShardId shard) const {
  const Slot* slot = FindSlot(shard);
  if (slot == nullptr || !slot->probed) return true;
  if (config_.probe_interval_seconds <= 0.0) return true;
  int64_t elapsed = clock_->NowNanos() - slot->last_probe_nanos;
  return static_cast<double>(elapsed) * 1e-9 >=
         config_.probe_interval_seconds;
}

Liveness FailureDetector::Observe(ShardId shard, bool probe_ok) {
  if (SEMITRI_FAULT_FIRE("detector_probe") != common::FaultAction::kNone) {
    // An injected probe fault is indistinguishable from the shard not
    // answering: the streak advances even when the runtime is healthy.
    probe_ok = false;
  }
  Slot* slot = EnsureSlot(shard);
  slot->probed = true;
  slot->last_probe_nanos = clock_->NowNanos();
  ++slot->obs.probes;
  if (probe_ok) {
    slot->obs.consecutive_failures = 0;
    slot->obs.first_failure_nanos = 0;
    // A dead declaration stands until Forget(): one successful probe
    // must not cancel a failover already in flight.
    if (slot->obs.state != Liveness::kDead) {
      slot->obs.state = Liveness::kAlive;
    }
    return slot->obs.state;
  }
  ++slot->obs.consecutive_failures;
  // Keyed off the streak, not a zero-timestamp sentinel: a FakeClock
  // legitimately reads 0 at the first failed probe.
  if (slot->obs.consecutive_failures == 1) {
    slot->obs.first_failure_nanos = slot->last_probe_nanos;
  }
  if (slot->obs.state != Liveness::kDead &&
      slot->obs.consecutive_failures >= config_.dead_after) {
    slot->obs.state = Liveness::kDead;
    slot->obs.declared_dead_nanos = slot->last_probe_nanos;
    slot->obs.last_time_to_detect_seconds =
        static_cast<double>(slot->last_probe_nanos -
                            slot->obs.first_failure_nanos) *
        1e-9;
    ++slot->obs.deaths_declared;
    ++total_deaths_declared_;
  } else if (slot->obs.state == Liveness::kAlive &&
             slot->obs.consecutive_failures >= config_.suspect_after) {
    slot->obs.state = Liveness::kSuspect;
  }
  return slot->obs.state;
}

Liveness FailureDetector::StateOf(ShardId shard) const {
  const Slot* slot = FindSlot(shard);
  return slot == nullptr ? Liveness::kAlive : slot->obs.state;
}

void FailureDetector::Forget(ShardId shard) {
  Slot* slot = EnsureSlot(shard);
  size_t deaths = slot->obs.deaths_declared;
  size_t probes = slot->obs.probes;
  *slot = Slot{};
  // Lifetime counters survive the reset; only streak state clears.
  slot->obs.deaths_declared = deaths;
  slot->obs.probes = probes;
}

FailureDetector::ShardObservation FailureDetector::observation(
    ShardId shard) const {
  const Slot* slot = FindSlot(shard);
  return slot == nullptr ? ShardObservation{} : slot->obs;
}

}  // namespace semitri::shard
