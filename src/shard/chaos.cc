#include "shard/chaos.h"

#include <algorithm>
#include <cstdio>

#include "common/rng.h"

namespace semitri::shard {

const char* ChaosKindName(ChaosKind kind) {
  switch (kind) {
    case ChaosKind::kKill:
      return "kill";
    case ChaosKind::kMigrate:
      return "migrate";
    case ChaosKind::kSealShip:
      return "seal_ship";
    case ChaosKind::kShipFault:
      return "ship_fault";
  }
  return "unknown";
}

ChaosSchedule ChaosSchedule::Generate(const ChaosScheduleConfig& config) {
  ChaosSchedule schedule;
  if (config.num_steps < 4 || config.num_shards == 0 ||
      config.num_objects == 0) {
    return schedule;
  }
  common::Rng rng(config.seed);
  // Kills live in the middle 80% of the run, spaced so each incident
  // heals before the next begins.
  size_t lo = std::max<size_t>(1, config.num_steps / 10);
  size_t hi = config.num_steps - std::max<size_t>(1, config.num_steps / 10);
  size_t spacing = std::max<size_t>(1, config.min_kill_spacing);
  size_t step = lo;
  for (size_t k = 0; k < config.kills && step < hi; ++k) {
    // Jitter within the slot keeps different seeds genuinely different
    // while preserving the spacing guarantee.
    size_t jitter =
        static_cast<size_t>(rng.UniformInt(0, static_cast<int64_t>(
                                                  spacing / 2)));
    size_t at = std::min(step + jitter, hi - 1);
    ChaosEvent event;
    event.kind = ChaosKind::kKill;
    event.at_step = at;
    event.shard = static_cast<ShardId>(
        rng.UniformInt(0, static_cast<int64_t>(config.num_shards) - 1));
    schedule.events_.push_back(event);
    step = at + spacing;
  }
  auto sprinkle = [&](ChaosKind kind, size_t count) {
    for (size_t i = 0; i < count; ++i) {
      ChaosEvent event;
      event.kind = kind;
      event.at_step = static_cast<size_t>(
          rng.UniformInt(static_cast<int64_t>(lo),
                         static_cast<int64_t>(hi) - 1));
      event.shard = static_cast<ShardId>(
          rng.UniformInt(0, static_cast<int64_t>(config.num_shards) - 1));
      event.object_index = static_cast<size_t>(
          rng.UniformInt(0, static_cast<int64_t>(config.num_objects) - 1));
      schedule.events_.push_back(event);
    }
  };
  sprinkle(ChaosKind::kMigrate, config.migrations);
  sprinkle(ChaosKind::kSealShip, config.seal_ships);
  sprinkle(ChaosKind::kShipFault, config.ship_faults);
  std::stable_sort(schedule.events_.begin(), schedule.events_.end(),
                   [](const ChaosEvent& a, const ChaosEvent& b) {
                     return a.at_step < b.at_step;
                   });
  return schedule;
}

std::vector<ChaosEvent> ChaosSchedule::EventsAt(size_t step) const {
  std::vector<ChaosEvent> due;
  for (const ChaosEvent& event : events_) {
    if (event.at_step == step) due.push_back(event);
    if (event.at_step > step) break;
  }
  return due;
}

size_t ChaosSchedule::CountOf(ChaosKind kind) const {
  size_t n = 0;
  for (const ChaosEvent& event : events_) {
    if (event.kind == kind) ++n;
  }
  return n;
}

std::string ChaosSchedule::ToString() const {
  std::string out;
  for (const ChaosEvent& event : events_) {
    char line[128];
    std::snprintf(line, sizeof(line),
                  "  step %-5zu %-10s shard=%zu object_index=%zu\n",
                  event.at_step, ChaosKindName(event.kind), event.shard,
                  event.object_index);
    out += line;
  }
  return out;
}

}  // namespace semitri::shard
