#ifndef SEMITRI_SHARD_FAILURE_DETECTOR_H_
#define SEMITRI_SHARD_FAILURE_DETECTOR_H_

// Per-shard liveness detection for the self-healing cluster. The
// detector is a pure accumulator: ShardCluster::Tick() probes each
// runtime slot (a probe is a cheap "is the runtime present and its
// manager responsive" check, not an RPC) and feeds the result in via
// Observe(); consecutive failures walk the shard through
// kAlive -> kSuspect -> kDead. Crossing dead_after is the failover
// trigger — the cluster promotes the standby and calls Forget() so the
// replacement starts with a clean streak.
//
// Two thresholds instead of one keep the router honest about the
// difference between "might be slow" (suspect: health turns degraded,
// traffic keeps flowing) and "declared dead" (failover fences the
// runtime). Time-to-detect — first failed probe to death declaration —
// is recorded per declaration so the soak bench can report percentiles.
//
// Probes are paced by probe_interval_seconds on the injected Clock, so
// a FakeClock test advances time to schedule the next probe and the
// whole detect->failover window is deterministic.
//
// Fault site (SEMITRI_FAULT_INJECTION=ON): `detector_probe` — an
// injected fault flips a successful probe to failed, which is how the
// false-positive-failover tests drive a *live* shard through death
// declaration without killing it.
//
// Not internally synchronized: the owning ShardCluster calls it under
// the cluster lock.

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/clock.h"
#include "shard/ring.h"

namespace semitri::shard {

enum class Liveness { kAlive, kSuspect, kDead };

const char* LivenessName(Liveness state);

struct FailureDetectorConfig {
  // Minimum spacing between probes of one shard; 0 probes every tick.
  double probe_interval_seconds = 0.5;
  // Consecutive probe failures before kSuspect / kDead.
  size_t suspect_after = 1;
  size_t dead_after = 3;
};

class FailureDetector {
 public:
  explicit FailureDetector(FailureDetectorConfig config,
                           const common::Clock* clock = nullptr);

  // True when probe_interval has elapsed since the shard's last
  // recorded probe (always true for a never-probed shard).
  bool ProbeDue(ShardId shard) const;

  // Records one probe result (fires `detector_probe`, which may flip
  // probe_ok to false) and returns the state after. The kSuspect ->
  // kDead transition is edge-triggered: DeathsDeclared() counts them
  // and the caller reads the transition off the return value.
  Liveness Observe(ShardId shard, bool probe_ok);

  Liveness StateOf(ShardId shard) const;

  // Clears the shard's streak and state (after failover or restart the
  // replacement runtime starts alive).
  void Forget(ShardId shard);

  struct ShardObservation {
    Liveness state = Liveness::kAlive;
    size_t consecutive_failures = 0;
    size_t probes = 0;
    size_t deaths_declared = 0;
    // Clock timestamps (nanos) of the current streak's first failure
    // and of the last death declaration; 0 when not applicable.
    int64_t first_failure_nanos = 0;
    int64_t declared_dead_nanos = 0;
    // First failed probe -> death declaration, for the most recent
    // declaration; the cluster folds these into time-to-detect stats.
    double last_time_to_detect_seconds = 0.0;
  };
  ShardObservation observation(ShardId shard) const;

  size_t deaths_declared() const { return total_deaths_declared_; }
  const FailureDetectorConfig& config() const { return config_; }

 private:
  struct Slot {
    ShardObservation obs;
    int64_t last_probe_nanos = 0;
    bool probed = false;
  };

  const Slot* FindSlot(ShardId shard) const;
  Slot* EnsureSlot(ShardId shard);

  FailureDetectorConfig config_;
  const common::Clock* clock_;  // never null after construction
  std::vector<Slot> slots_;     // indexed by ShardId, grown on demand
  size_t total_deaths_declared_ = 0;
};

}  // namespace semitri::shard

#endif  // SEMITRI_SHARD_FAILURE_DETECTOR_H_
