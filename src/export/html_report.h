#ifndef SEMITRI_EXPORT_HTML_REPORT_H_
#define SEMITRI_EXPORT_HTML_REPORT_H_

// Self-contained HTML/SVG reports — the stand-in for the paper's Web
// Interface [31] (trajectory querying & visualization). A report holds
// any number of panels: SVG trajectory maps with mode-colored moves and
// stop markers, semantic timeline tables, and distribution bar charts.
// Everything inlines into a single .html file; no server required.

#include <string>
#include <vector>

#include "analytics/distribution.h"
#include "analytics/timeline.h"
#include "common/env.h"
#include "common/status.h"
#include "core/pipeline.h"
#include "core/types.h"

namespace semitri::export_ {

class HtmlReportWriter {
 public:
  explicit HtmlReportWriter(std::string title) : title_(std::move(title)) {}

  // SVG map of a processed trajectory: the trace polyline (moves colored
  // by inferred transport mode where the line layer provides one), stop
  // episodes as labeled circles.
  void AddTrajectoryMap(const core::PipelineResult& result,
                        const std::string& caption);

  // The §1.1 triple view as a table.
  void AddTimelineTable(const std::vector<analytics::TimelineEntry>& timeline,
                        const std::string& caption);

  // Horizontal bar chart of a labeled distribution.
  void AddDistributionChart(const analytics::LabeledDistribution& dist,
                            const std::string& caption);

  std::string ToString() const;
  // Write errors (ENOSPC included) surface as IoError. `env` null =
  // the real filesystem.
  [[nodiscard]] common::Status WriteFile(const std::string& path,
                                         common::Env* env = nullptr) const;

 private:
  std::string title_;
  std::vector<std::string> panels_;
};

// Display color for a transport mode name ("walk", "metro", ...).
const char* ModeColor(const std::string& mode);

}  // namespace semitri::export_

#endif  // SEMITRI_EXPORT_HTML_REPORT_H_
