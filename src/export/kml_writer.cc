#include "export/kml_writer.h"

#include <cmath>

#include "common/strings.h"
#include "geo/simplify.h"

namespace semitri::export_ {

namespace {

bool IsFinitePoint(const geo::Point& p) {
  return std::isfinite(p.x) && std::isfinite(p.y);
}

std::string XmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

}  // namespace

std::string KmlWriter::CoordinateOf(const geo::Point& p) const {
  geo::LatLon ll = projection_.ToLatLon(p);
  return common::StrFormat("%.7f,%.7f,0", ll.lon, ll.lat);
}

void KmlWriter::AddTrajectory(const core::RawTrajectory& trajectory,
                              const std::string& name,
                              double simplify_tolerance_meters) {
  std::vector<geo::Point> positions;
  positions.reserve(trajectory.points.size());
  for (const core::GpsPoint& p : trajectory.points) {
    if (!IsFinitePoint(p.position)) {
      NoteError(common::Status::InvalidArgument(
          "trajectory '" + name + "' has a non-finite GPS position"));
      return;
    }
    positions.push_back(p.position);
  }
  std::string coords;
  if (simplify_tolerance_meters > 0.0) {
    for (size_t i :
         geo::DouglasPeuckerIndices(positions, simplify_tolerance_meters)) {
      coords += CoordinateOf(positions[i]);
      coords += ' ';
    }
  } else {
    for (const geo::Point& p : positions) {
      coords += CoordinateOf(p);
      coords += ' ';
    }
  }
  placemarks_.push_back(common::StrFormat(
      "  <Placemark>\n"
      "    <name>%s</name>\n"
      "    <LineString><tessellate>1</tessellate>"
      "<coordinates>%s</coordinates></LineString>\n"
      "  </Placemark>",
      XmlEscape(name).c_str(), coords.c_str()));
}

void KmlWriter::AddStops(const core::RawTrajectory& trajectory,
                         const std::vector<core::Episode>& episodes) {
  size_t stop_index = 0;
  for (const core::Episode& ep : episodes) {
    if (ep.kind != core::EpisodeKind::kStop) continue;
    if (!IsFinitePoint(ep.center)) {
      NoteError(common::Status::InvalidArgument(common::StrFormat(
          "stop episode %zu has a non-finite center", stop_index)));
      ++stop_index;
      continue;
    }
    placemarks_.push_back(common::StrFormat(
        "  <Placemark>\n"
        "    <name>stop %zu</name>\n"
        "    <description>t=[%.0f, %.0f] points=%zu</description>\n"
        "    <Point><coordinates>%s</coordinates></Point>\n"
        "  </Placemark>",
        stop_index, ep.time_in, ep.time_out, ep.num_points(),
        CoordinateOf(ep.center).c_str()));
    ++stop_index;
  }
  (void)trajectory;
}

void KmlWriter::AddSemanticEpisodes(
    const core::StructuredSemanticTrajectory& t,
    const std::vector<geo::Point>& episode_anchors) {
  for (size_t i = 0; i < t.episodes.size(); ++i) {
    const core::SemanticEpisode& ep = t.episodes[i];
    std::string description;
    for (const core::Annotation& a : ep.annotations) {
      description += XmlEscape(a.key) + "=" + XmlEscape(a.value) + "; ";
    }
    geo::Point anchor =
        i < episode_anchors.size() ? episode_anchors[i] : geo::Point{};
    if (!IsFinitePoint(anchor)) {
      NoteError(common::Status::InvalidArgument(common::StrFormat(
          "semantic episode %zu has a non-finite anchor", i)));
      continue;
    }
    placemarks_.push_back(common::StrFormat(
        "  <Placemark>\n"
        "    <name>%s/%s %zu</name>\n"
        "    <description>t=[%.0f, %.0f] %s</description>\n"
        "    <Point><coordinates>%s</coordinates></Point>\n"
        "  </Placemark>",
        XmlEscape(t.interpretation).c_str(),
        core::EpisodeKindName(ep.kind), i, ep.time_in, ep.time_out,
        description.c_str(), CoordinateOf(anchor).c_str()));
  }
}

std::string KmlWriter::ToString() const {
  std::string out =
      "<?xml version=\"1.0\" encoding=\"UTF-8\"?>\n"
      "<kml xmlns=\"http://www.opengis.net/kml/2.2\">\n"
      "<Document>\n";
  for (const std::string& p : placemarks_) {
    out += p;
    out += '\n';
  }
  out += "</Document>\n</kml>\n";
  return out;
}

void KmlWriter::NoteError(common::Status status) {
  if (first_error_.ok()) first_error_ = std::move(status);
}

common::Status KmlWriter::WriteFile(const std::string& path,
                                    common::Env* env) const {
  if (!first_error_.ok()) return first_error_;
  common::Status wrote = common::ResolveEnv(env)->WriteStringToFile(
      path, ToString(), /*sync=*/false);
  if (!wrote.ok()) {
    return common::Status::IoError("write failed for " + path + ": " +
                                   wrote.message());
  }
  return common::Status::OK();
}

}  // namespace semitri::export_
