#include "export/html_report.h"

#include <algorithm>

#include "common/strings.h"

namespace semitri::export_ {

namespace {

constexpr double kMapWidth = 760.0;
constexpr double kMapHeight = 520.0;
constexpr double kMapPadding = 20.0;

std::string HtmlEscape(const std::string& text) {
  std::string out;
  out.reserve(text.size());
  for (char c : text) {
    switch (c) {
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '&': out += "&amp;"; break;
      case '"': out += "&quot;"; break;
      default: out += c;
    }
  }
  return out;
}

// Maps world coordinates into the SVG viewport (y flipped).
class MapScale {
 public:
  explicit MapScale(const geo::BoundingBox& bounds) : bounds_(bounds) {
    double w = std::max(bounds.Width(), 1.0);
    double h = std::max(bounds.Height(), 1.0);
    scale_ = std::min((kMapWidth - 2 * kMapPadding) / w,
                      (kMapHeight - 2 * kMapPadding) / h);
  }

  double X(double x) const {
    return kMapPadding + (x - bounds_.min.x) * scale_;
  }
  double Y(double y) const {
    return kMapHeight - kMapPadding - (y - bounds_.min.y) * scale_;
  }

 private:
  geo::BoundingBox bounds_;
  double scale_;
};

// Transport mode of the line-layer episode covering time t, or "".
std::string ModeAt(const core::PipelineResult& result, double t) {
  if (!result.line_layer.has_value()) return "";
  for (const core::SemanticEpisode& ep : result.line_layer->episodes) {
    if (t >= ep.time_in - 1e-9 && t <= ep.time_out + 1e-9) {
      return ep.FindAnnotation("transport_mode");
    }
  }
  return "";
}

}  // namespace

const char* ModeColor(const std::string& mode) {
  if (mode == "walk") return "#2e7d32";
  if (mode == "bicycle") return "#f9a825";
  if (mode == "bus") return "#c62828";
  if (mode == "metro") return "#6a1b9a";
  if (mode == "car") return "#1565c0";
  return "#78909c";
}

void HtmlReportWriter::AddTrajectoryMap(const core::PipelineResult& result,
                                        const std::string& caption) {
  const auto& points = result.cleaned.points;
  std::string svg = common::StrFormat(
      "<svg width=\"%.0f\" height=\"%.0f\" "
      "style=\"background:#fafafa;border:1px solid #ddd\">\n",
      kMapWidth, kMapHeight);
  if (!points.empty()) {
    MapScale scale(result.cleaned.Bounds());
    // Mode-colored polyline: one <polyline> per run of equal color.
    size_t run_start = 0;
    std::string run_color = ModeColor(ModeAt(result, points[0].time));
    auto flush_run = [&](size_t end) {
      if (end <= run_start) return;
      std::string coords;
      for (size_t i = run_start; i <= end && i < points.size(); ++i) {
        coords += common::StrFormat("%.1f,%.1f ", scale.X(points[i].position.x),
                                    scale.Y(points[i].position.y));
      }
      svg += common::StrFormat(
          "  <polyline points=\"%s\" fill=\"none\" stroke=\"%s\" "
          "stroke-width=\"1.5\"/>\n",
          coords.c_str(), run_color.c_str());
    };
    for (size_t i = 1; i < points.size(); ++i) {
      std::string color = ModeColor(ModeAt(result, points[i].time));
      if (color != run_color) {
        flush_run(i);
        run_start = i;
        run_color = color;
      }
    }
    flush_run(points.size() - 1);
    // Stops as circles.
    size_t stop_index = 0;
    for (const core::Episode& ep : result.episodes) {
      if (ep.kind != core::EpisodeKind::kStop) continue;
      svg += common::StrFormat(
          "  <circle cx=\"%.1f\" cy=\"%.1f\" r=\"5\" fill=\"#e53935\" "
          "fill-opacity=\"0.8\"><title>stop %zu: %.0f s</title></circle>\n",
          scale.X(ep.center.x), scale.Y(ep.center.y), stop_index,
          ep.DurationSeconds());
      ++stop_index;
    }
  }
  svg += "</svg>";
  panels_.push_back(common::StrFormat(
      "<div class=\"panel\"><h2>%s</h2>%s</div>",
      HtmlEscape(caption).c_str(), svg.c_str()));
}

void HtmlReportWriter::AddTimelineTable(
    const std::vector<analytics::TimelineEntry>& timeline,
    const std::string& caption) {
  std::string rows;
  for (const auto& entry : timeline) {
    rows += common::StrFormat(
        "<tr><td>%s</td><td>%s - %s</td><td>%s</td><td>%s</td></tr>\n",
        core::EpisodeKindName(entry.kind),
        analytics::FormatClock(entry.time_in).c_str(),
        analytics::FormatClock(entry.time_out).c_str(),
        HtmlEscape(entry.place).c_str(),
        HtmlEscape(entry.annotation.empty() ? "-" : entry.annotation)
            .c_str());
  }
  panels_.push_back(common::StrFormat(
      "<div class=\"panel\"><h2>%s</h2><table>"
      "<tr><th>kind</th><th>time</th><th>place</th><th>annotation</th></tr>"
      "%s</table></div>",
      HtmlEscape(caption).c_str(), rows.c_str()));
}

void HtmlReportWriter::AddDistributionChart(
    const analytics::LabeledDistribution& dist, const std::string& caption) {
  std::string bars;
  for (const auto& [label, count] : dist.counts()) {
    double fraction = dist.Fraction(label);
    bars += common::StrFormat(
        "<div class=\"bar-row\"><span class=\"bar-label\">%s</span>"
        "<span class=\"bar\" style=\"width:%.1fpx\"></span>"
        "<span class=\"bar-value\">%.1f%%</span></div>\n",
        HtmlEscape(label).c_str(), fraction * 400.0, fraction * 100.0);
  }
  panels_.push_back(common::StrFormat(
      "<div class=\"panel\"><h2>%s</h2>%s</div>",
      HtmlEscape(caption).c_str(), bars.c_str()));
}

std::string HtmlReportWriter::ToString() const {
  std::string out = common::StrFormat(
      "<!DOCTYPE html>\n<html><head><meta charset=\"utf-8\">"
      "<title>%s</title>\n<style>\n"
      "body{font-family:sans-serif;margin:24px;background:#fff;}\n"
      ".panel{margin-bottom:28px;}\n"
      "h1{font-size:22px;} h2{font-size:16px;color:#333;}\n"
      "table{border-collapse:collapse;} td,th{border:1px solid #ccc;"
      "padding:4px 10px;font-size:13px;text-align:left;}\n"
      ".bar-row{display:flex;align-items:center;margin:2px 0;}\n"
      ".bar-label{width:160px;font-size:13px;}\n"
      ".bar{background:#1565c0;height:12px;display:inline-block;}\n"
      ".bar-value{margin-left:6px;font-size:12px;color:#555;}\n"
      "</style></head><body>\n<h1>%s</h1>\n",
      HtmlEscape(title_).c_str(), HtmlEscape(title_).c_str());
  for (const std::string& panel : panels_) {
    out += panel;
    out += '\n';
  }
  out +=
      "<p style=\"color:#888;font-size:12px\">generated by SeMiTri "
      "(EDBT 2011 reproduction)</p>\n</body></html>\n";
  return out;
}

common::Status HtmlReportWriter::WriteFile(const std::string& path,
                                           common::Env* env) const {
  common::Status wrote = common::ResolveEnv(env)->WriteStringToFile(
      path, ToString(), /*sync=*/false);
  if (!wrote.ok()) {
    return common::Status::IoError("write failed for " + path + ": " +
                                   wrote.message());
  }
  return common::Status::OK();
}

}  // namespace semitri::export_
