#ifndef SEMITRI_EXPORT_KML_WRITER_H_
#define SEMITRI_EXPORT_KML_WRITER_H_

// KML export — the data product behind the paper's Web Interface [31]
// (trajectory querying & visualization through Google Earth plugins,
// Figs. 15/16). Raw traces become LineStrings, stop episodes become
// labeled Point placemarks, and semantic episodes carry their
// annotations in the placemark description.

#include <string>
#include <vector>

#include "common/env.h"
#include "common/status.h"
#include "core/types.h"
#include "geo/latlon.h"

namespace semitri::export_ {

class KmlWriter {
 public:
  // `projection` maps the local metric frame back to WGS-84.
  explicit KmlWriter(geo::LocalProjection projection)
      : projection_(projection) {}

  // Adds the raw trace as a LineString placemark. A positive
  // `simplify_tolerance_meters` thins the geometry with Douglas-Peucker
  // before export (multi-day exports shrink by an order of magnitude
  // with no visible change).
  void AddTrajectory(const core::RawTrajectory& trajectory,
                     const std::string& name,
                     double simplify_tolerance_meters = 0.0);

  // Adds stop episodes as Point placemarks named by their index.
  void AddStops(const core::RawTrajectory& trajectory,
                const std::vector<core::Episode>& episodes);

  // Adds semantic episodes; annotations render into the description.
  // Episodes without a time span still appear, holding their metadata.
  void AddSemanticEpisodes(const core::StructuredSemanticTrajectory& t,
                           const std::vector<geo::Point>& episode_anchors);

  // Serializes the accumulated document.
  std::string ToString() const;

  // Fails with the first accumulated error (e.g. a placemark rejected
  // for non-finite coordinates) before touching the filesystem, so a
  // bad geometry can never produce a silently corrupt KML file. Write
  // errors (ENOSPC included) surface as IoError. `env` null = the
  // real filesystem.
  [[nodiscard]] common::Status WriteFile(const std::string& path,
                                         common::Env* env = nullptr) const;

  // First error noted by any Add* call (OK when the document is clean).
  // Add* methods skip offending placemarks instead of emitting
  // "nan,nan" coordinates.
  const common::Status& status() const { return first_error_; }

 private:
  std::string CoordinateOf(const geo::Point& p) const;

  // Records the first Add* failure; later errors keep the first.
  void NoteError(common::Status status);

  geo::LocalProjection projection_;
  std::vector<std::string> placemarks_;
  common::Status first_error_;
};

}  // namespace semitri::export_

#endif  // SEMITRI_EXPORT_KML_WRITER_H_
